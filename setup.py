"""Packaging entry point.

Metadata lives in setup.cfg; pyproject.toml carries tool configuration
only, so that editable installs work without the `wheel` package (this
environment is offline and cannot fetch PEP 517 build dependencies).
"""

from setuptools import setup

setup()
