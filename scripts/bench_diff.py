#!/usr/bin/env python
"""Compare a fresh BENCH_RESULTS.json against the committed baseline.

Both files use the ``repro.obs.bench/1`` schema (``{name, value,
unit}`` records; see ``repro.obs.report``).  For every record present
in both, the relative change is judged against a direction heuristic —
whether a larger value is better (speedups, hit rates, throughput) or
worse (slowdowns, overheads, wall-clock, misses) — inferred from the
record's name and unit.  A change that is *worse* by more than the
threshold (default 25%) is a regression and fails the run; metrics
whose direction cannot be inferred are reported but never fail.

Usage::

    python scripts/bench_diff.py \
        [--fresh benchmarks/BENCH_RESULTS.json] \
        [--baseline benchmarks/BENCH_BASELINE.json] \
        [--threshold 0.25]

Records present on only one side are listed as informational (bench
coverage changes with the benchmark set that ran), not failed.
"""

import argparse
import json
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Substring markers, checked against the record name (most specific
# signal first) and then the unit.  "x" alone is ambiguous: a slowdown
# of 1.3x and a speedup of 5x both carry unit "x", so the name decides.
HIGHER_IS_BETTER = ("speedup", "hit_rate", "hits", "throughput",
                    "per_second", "ops", "coverage", "resolved")
LOWER_IS_BETTER = ("slowdown", "overhead", "latency", "time", "misses",
                   "wall", "elapsed", "bytes", "size", "growth",
                   "spill", "fallback")
LOWER_IS_BETTER_UNITS = ("s", "ms", "us", "seconds", "bytes", "kb", "mb")


def direction(name, unit):
    """+1 when larger is better, -1 when smaller is better, 0 unknown."""
    lowered = name.lower()
    for marker in HIGHER_IS_BETTER:
        if marker in lowered:
            return 1
    for marker in LOWER_IS_BETTER:
        if marker in lowered:
            return -1
    if lowered.endswith(("_s", "_ms", "_us", "_seconds")):
        return -1  # wall-clock in the name (median_s, p99_ms, ...)
    if unit.lower() in LOWER_IS_BETTER_UNITS:
        return -1
    return 0


def load_results(path):
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != "repro.obs.bench/1":
        raise ValueError("%s: unexpected schema %r"
                         % (path, payload.get("schema")))
    table = {}
    for record in payload.get("results", ()):
        table[record["name"]] = (record["value"], record.get("unit", ""))
    return table


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fail on >threshold benchmark regressions")
    parser.add_argument("--fresh",
                        default=os.path.join(ROOT, "benchmarks",
                                             "BENCH_RESULTS.json"))
    parser.add_argument("--baseline",
                        default=os.path.join(ROOT, "benchmarks",
                                             "BENCH_BASELINE.json"))
    parser.add_argument("--threshold", type=float, default=0.25,
                        metavar="FRACTION",
                        help="relative worsening that fails the run "
                             "(default: 0.25)")
    args = parser.parse_args(argv)

    for path in (args.fresh, args.baseline):
        if not os.path.exists(path):
            print("bench-diff: missing %s" % path, file=sys.stderr)
            return 1
    fresh = load_results(args.fresh)
    baseline = load_results(args.baseline)

    regressions, improvements, unknown = [], [], []
    compared = 0
    for name in sorted(set(fresh) & set(baseline)):
        new_value, unit = fresh[name]
        old_value, _ = baseline[name]
        if not isinstance(new_value, (int, float)) \
                or not isinstance(old_value, (int, float)) or not old_value:
            continue
        compared += 1
        change = (new_value - old_value) / abs(old_value)
        sign = direction(name, unit)
        line = "%-52s %12.4g -> %-12.4g (%+.1f%%)" \
            % (name, old_value, new_value, change * 100)
        if sign == 0:
            unknown.append(line)
        elif sign * change < -args.threshold:
            regressions.append(line)
        elif sign * change > args.threshold:
            improvements.append(line)

    only_fresh = sorted(set(fresh) - set(baseline))
    only_baseline = sorted(set(baseline) - set(fresh))
    print("bench-diff: compared %d shared metric(s) "
          "(threshold %.0f%%, %d fresh-only, %d baseline-only)"
          % (compared, args.threshold * 100, len(only_fresh),
             len(only_baseline)))
    if improvements:
        print("improvements (>%d%%):" % (args.threshold * 100))
        for line in improvements:
            print("  " + line)
    if unknown:
        print("direction unknown (informational):")
        for line in unknown:
            print("  " + line)
    if regressions:
        print("REGRESSIONS (worse by >%d%%):" % (args.threshold * 100),
              file=sys.stderr)
        for line in regressions:
            print("  " + line, file=sys.stderr)
        return 1
    print("bench-diff: PASS (no metric worse by >%d%%)"
          % (args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
