#!/usr/bin/env python
"""CI smoke test for the edit-serving daemon.

Starts a real ``repro serve`` daemon, points 8 concurrent clients at it
across two workloads (one SPARC, one MIPS) mixing run/routines/verify
requests, then SIGTERMs it and checks the contract the README promises:

* zero dropped requests — every request gets a well-formed answer;
* clean drain — exit code 0, ``drained cleanly`` on stderr, socket
  removed, no orphaned daemon process;
* a well-formed ``--stats-json`` report carrying ``serve.*`` counters
  that agree with what the clients observed;
* a ``repro.events/1`` log (``--events``) from which every finished
  request reconstructs into one connected span tree with queue-wait
  and handler latency split out.

Exits non-zero (with a diagnostic) on any violation; CI runs it as a
dedicated step.  The stats JSON and events JSONL are left behind on
purpose — CI uploads them as artifacts and replays the log through
``repro trace`` — but under ``.smoke-artifacts/`` (override with
``$SMOKE_ARTIFACTS_DIR``), never the repo root.
"""

import json
import os
import signal
import subprocess
import sys
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
ARTIFACTS = os.environ.get("SMOKE_ARTIFACTS_DIR") \
    or os.path.join(ROOT, ".smoke-artifacts")
sys.path.insert(0, SRC)

from repro.serve.client import ServeClient, wait_for_daemon  # noqa: E402

CLIENTS = 8
WORKLOADS = ["fib", "mips_sum"]  # one per architecture
EXPECTED = {"fib": "fib 1597\n", "mips_sum": "5050\n"}


def fail(message):
    print("ci-serve-smoke: FAIL: %s" % message, file=sys.stderr)
    sys.exit(1)


def client_session(socket_path, index, outcomes, errors):
    workload = WORKLOADS[index % len(WORKLOADS)]
    try:
        with ServeClient(socket_path, retries=8) as client:
            run = client.run_workload(workload)
            if run["output"] != EXPECTED[workload]:
                raise AssertionError("wrong output for %s: %r"
                                     % (workload, run["output"]))
            routines = client.request("routines", workload=workload)
            if not routines["routines"]:
                raise AssertionError("no routines for %s" % workload)
            verify = client.request("verify", workload=workload, tool="qpt")
            if not verify["ok"]:
                raise AssertionError("verify failed for %s:\n%s"
                                     % (workload, verify["text"]))
            outcomes.append(index)
    except Exception as error:  # noqa: BLE001 - reported, then fatal
        errors.append("client %d (%s): %s" % (index, workload, error))


def check_events(events_path):
    """Every finished request in the log is one connected span tree."""
    from repro.obs import events as obs_events

    if not os.path.exists(events_path):
        fail("daemon wrote no events log at %s" % events_path)
    stream = obs_events.load_events(events_path)
    kinds = {record["kind"] for record in stream}
    for wanted in ("log.open", "daemon.start", "request.admit",
                   "request.finish", "drain.begin", "drain.finish"):
        if wanted not in kinds:
            fail("events log is missing %r records" % wanted)
    traces = obs_events.build_traces(stream)
    finished = [r for r in traces.values() if r.finish is not None]
    if len(finished) < CLIENTS * 3:
        fail("only %d finished request traces in the events log, "
             "expected >= %d" % (len(finished), CLIENTS * 3))
    for record in finished:
        if record.admit is None:
            fail("trace %s finished without an admit event"
                 % record.trace_id)
        if record.queue_wait_s is None or record.handler_s is None:
            fail("trace %s lacks queue-wait/handler latency"
                 % record.trace_id)
        spans = record.spans
        if not spans:
            fail("trace %s carries no span tree" % record.trace_id)
        root = spans[0]
        if not obs_events.connected_spans(
                spans, root_parent=root.get("parent_span_id")):
            fail("trace %s has orphaned spans" % record.trace_id)
    return len(finished)


def main():
    os.makedirs(ARTIFACTS, exist_ok=True)
    sock = os.path.join(ARTIFACTS, "serve-smoke.sock")
    stats = os.path.join(ARTIFACTS, "serve-smoke-stats.json")
    events_path = os.path.join(ARTIFACTS, "serve-smoke-events.jsonl")
    env = dict(os.environ, PYTHONPATH=os.pathsep.join(
        filter(None, [SRC, os.environ.get("PYTHONPATH")])))
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--socket", sock,
         "--jobs", "4", "--stats-json", stats, "--events", events_path],
        env=env, stderr=subprocess.PIPE)
    try:
        if not wait_for_daemon(sock, timeout=60.0):
            fail("daemon did not come up within 60s")

        outcomes, errors = [], []
        threads = [threading.Thread(target=client_session,
                                    args=(sock, index, outcomes, errors))
                   for index in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(300)
        if errors:
            fail("dropped/failed requests:\n  " + "\n  ".join(errors))
        if len(outcomes) != CLIENTS:
            fail("only %d/%d clients completed" % (len(outcomes), CLIENTS))

        daemon.send_signal(signal.SIGTERM)
        _out, err = daemon.communicate(timeout=60)
        err = err.decode()
        if daemon.returncode != 0:
            fail("daemon exited %d:\n%s" % (daemon.returncode, err))
        if "drained cleanly" not in err:
            fail("no clean-drain confirmation in daemon stderr:\n%s" % err)
        if os.path.exists(sock):
            fail("daemon left a stale socket behind")

        with open(stats) as handle:
            report = json.load(handle)
        if report.get("schema") != "repro.obs/1":
            fail("stats JSON has wrong schema: %r" % report.get("schema"))
        serve = report.get("serve")
        if not serve:
            fail("stats JSON is missing the serve section")
        # 3 requests per client, plus the wait_for_daemon pings.
        if serve["requests"] < CLIENTS * 3:
            fail("serve.requests=%d, expected >= %d"
                 % (serve["requests"], CLIENTS * 3))
        if serve["ok"] < CLIENTS * 3:
            fail("serve.ok=%d, expected >= %d" % (serve["ok"], CLIENTS * 3))
        counters = report.get("counters", {})
        for name in ("serve.requests", "serve.responses.ok",
                     "serve.coalesced", "serve.timeouts"):
            if name not in counters:
                fail("stats JSON counters are missing %r" % name)
        if not serve.get("latency"):
            fail("stats JSON serve section has no per-op latency")
        traced = check_events(events_path)
        print("ci-serve-smoke: OK — %d clients, %d requests "
              "(%d ok, %d errors, %d rejected, %d coalesced), "
              "%d connected span trees, clean drain"
              % (CLIENTS, serve["requests"], serve["ok"], serve["errors"],
                 serve["rejected"], serve["coalesced"], traced))
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(30)
        # The stats/events artifacts stay for CI upload + trace replay.
        if os.path.exists(sock):
            os.unlink(sock)


if __name__ == "__main__":
    sys.exit(main())
