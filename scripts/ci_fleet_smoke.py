#!/usr/bin/env python
"""CI smoke test for the sharded serving fleet.

Starts a real ``repro fleet`` gateway with 2 shard daemons, points 10
concurrent mixed-priority clients at it (interactive run/routines plus
bulk verify, across a SPARC and a MIPS workload), hot-restarts a shard
mid-traffic, then SIGTERMs the gateway and checks the contract the
README promises:

* zero dropped requests — every request gets a well-formed answer, and
  every fleet answer names its serving shard;
* a hot restart completes while traffic flows, bumping the shard's
  generation with zero client-visible failures;
* clean drain — exit code 0, ``repro-fleet: drained`` on stderr, the
  gateway socket removed, no orphaned shard processes;
* a well-formed ``--stats-json`` report carrying the ``fleet`` section
  with a per-shard table that agrees with what the clients observed;
* merged event logs (gateway + per-shard) from which every forwarded
  request reconstructs into ONE connected span tree spanning both
  processes: the shard's ``serve.request`` root hangs off the
  gateway's ``fleet.forward`` span.

Exits non-zero (with a diagnostic) on any violation; CI runs it as a
dedicated step.  The stats JSON, gateway events JSONL, and the fleet
run dir (shard event logs) are left behind on purpose — CI uploads
them as artifacts and replays the logs through ``repro trace`` — but
under ``.smoke-artifacts/`` (override with ``$SMOKE_ARTIFACTS_DIR``),
never the repo root.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
ARTIFACTS = os.environ.get("SMOKE_ARTIFACTS_DIR") \
    or os.path.join(ROOT, ".smoke-artifacts")
sys.path.insert(0, SRC)

from repro.serve.client import ServeClient, wait_for_daemon  # noqa: E402

CLIENTS = 10
SHARDS = 2
WORKLOADS = ["fib", "mips_sum"]  # one per architecture
EXPECTED = {"fib": "fib 1597\n", "mips_sum": "5050\n"}


def fail(message):
    print("ci-fleet-smoke: FAIL: %s" % message, file=sys.stderr)
    sys.exit(1)


def client_session(address, index, outcomes, errors):
    workload = WORKLOADS[index % len(WORKLOADS)]
    try:
        with ServeClient(address, retries=10) as client:
            run = client.run_workload(workload)
            if run["output"] != EXPECTED[workload]:
                raise AssertionError("wrong output for %s: %r"
                                     % (workload, run["output"]))
            shard = client.last_meta.get("shard")
            if shard not in range(SHARDS):
                raise AssertionError("answer named no shard: %r" % shard)
            routines = client.request("routines", workload=workload)
            if not routines["routines"]:
                raise AssertionError("no routines for %s" % workload)
            if client.last_meta.get("shard") != shard:
                raise AssertionError(
                    "affinity broke: %s moved %r -> %r"
                    % (workload, shard, client.last_meta.get("shard")))
            verify = client.request("verify", workload=workload, tool="qpt")
            if not verify["ok"]:
                raise AssertionError("verify failed for %s:\n%s"
                                     % (workload, verify["text"]))
            outcomes.append((index, shard))
    except Exception as error:  # noqa: BLE001 - reported, then fatal
        errors.append("client %d (%s): %s" % (index, workload, error))


def _span_names(forest):
    names = []
    stack = list(forest)
    while stack:
        node = stack.pop()
        names.append(node.get("name"))
        stack.extend(node.get("children") or [])
    return names


def check_events(events_path, run_dir):
    """Every forwarded request merges into one cross-process span tree."""
    from repro.obs import events as obs_events

    if not os.path.exists(events_path):
        fail("gateway wrote no events log at %s" % events_path)
    merged = obs_events.load_events(events_path)
    shard_logs = sorted(glob.glob(os.path.join(run_dir,
                                               "events-shard*.jsonl")))
    if len(shard_logs) < SHARDS:
        fail("expected %d shard event logs under %s, found %r"
             % (SHARDS, run_dir, shard_logs))
    for shard_log in shard_logs:
        merged.extend(obs_events.load_events(shard_log))

    kinds = {record["kind"] for record in merged}
    for wanted in ("fleet.start", "fleet.shard_spawn", "request.admit",
                   "request.finish", "fleet.hot_restart.begin",
                   "fleet.hot_restart.finish", "fleet.drain.begin",
                   "fleet.drain.finish", "daemon.start"):
        if wanted not in kinds:
            fail("merged events are missing %r records" % wanted)

    traces = obs_events.build_traces(merged)
    crossed = 0
    for record in traces.values():
        union = record.span_union
        # Only forwarded client requests grow a gateway-side
        # ``fleet.request`` root; local ops and the fleet's own
        # shard-maintenance traffic (health pings, handoff/warm) don't.
        gateway_trees = [root for root in union
                         if root.get("name") == "fleet.request"]
        if not gateway_trees:
            continue
        names = _span_names(union)
        if "fleet.forward" not in names:
            fail("trace %s lacks a forward span: %r"
                 % (record.trace_id, names))
        if "serve.request" not in names:
            fail("trace %s never reached a shard span tree"
                 % (record.trace_id,))
        if not obs_events.connected_spans(union):
            fail("trace %s has orphaned spans across the "
                 "gateway->shard hop" % record.trace_id)
        # The hop is real: every shard-side root must point INTO the
        # gateway's forest, not float as its own root.
        gateway_ids = set()
        stack = list(gateway_trees)
        while stack:
            node = stack.pop()
            gateway_ids.add(node.get("span_id"))
            stack.extend(node.get("children") or [])
        shard_parents = [root.get("parent_span_id") for root in union
                         if root.get("name") == "serve.request"]
        if not shard_parents:
            fail("trace %s has no shard-side root" % record.trace_id)
        if not all(parent in gateway_ids for parent in shard_parents):
            fail("trace %s shard root is detached from the gateway "
                 "forest" % record.trace_id)
        crossed += 1
    if crossed < CLIENTS * 3:
        fail("only %d connected cross-process traces, expected >= %d"
             % (crossed, CLIENTS * 3))
    return crossed


def main():
    os.makedirs(ARTIFACTS, exist_ok=True)
    sock = os.path.join(ARTIFACTS, "fleet-smoke.sock")
    stats = os.path.join(ARTIFACTS, "fleet-smoke-stats.json")
    events_path = os.path.join(ARTIFACTS, "fleet-smoke-events.jsonl")
    run_dir = os.path.join(ARTIFACTS, "fleet-smoke-dir")
    env = dict(os.environ, PYTHONPATH=os.pathsep.join(
        filter(None, [SRC, os.environ.get("PYTHONPATH")])))
    gateway = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "fleet", "--address", sock,
         "--shards", str(SHARDS), "--shard-jobs", "2", "--dir", run_dir,
         "--stats-json", stats, "--events", events_path],
        env=env, stderr=subprocess.PIPE)
    try:
        if not wait_for_daemon(sock, timeout=120.0):
            fail("fleet gateway did not come up within 120s")

        outcomes, errors = [], []
        threads = [threading.Thread(target=client_session,
                                    args=(sock, index, outcomes, errors))
                   for index in range(CLIENTS)]
        for thread in threads:
            thread.start()
        # Hot-restart shard 0 while the burst is in flight: the rolling
        # replacement must be invisible to every client above.
        with ServeClient(sock, retries=10) as control:
            restarted = control.request("hot_restart", shard=0)
        for thread in threads:
            thread.join(600)
        if errors:
            fail("dropped/failed requests:\n  " + "\n  ".join(errors))
        if len(outcomes) != CLIENTS:
            fail("only %d/%d clients completed" % (len(outcomes), CLIENTS))
        summaries = restarted.get("restarted")
        if not summaries or summaries[0].get("shard") != 0 \
                or summaries[0].get("generation", 0) < 2:
            fail("hot restart returned no usable summary: %r" % restarted)

        gateway.send_signal(signal.SIGTERM)
        _out, err = gateway.communicate(timeout=120)
        err = err.decode()
        if gateway.returncode != 0:
            fail("gateway exited %d:\n%s" % (gateway.returncode, err))
        if "repro-fleet: drained" not in err:
            fail("no clean-drain confirmation in gateway stderr:\n%s" % err)
        if os.path.exists(sock):
            fail("gateway left a stale socket behind")
        leftovers = glob.glob(os.path.join(run_dir, "shard-*.sock"))
        if leftovers:
            fail("shards left stale sockets behind: %r" % leftovers)

        with open(stats) as handle:
            report = json.load(handle)
        if report.get("schema") != "repro.obs/1":
            fail("stats JSON has wrong schema: %r" % report.get("schema"))
        fleet = report.get("fleet")
        if not fleet:
            fail("stats JSON is missing the fleet section")
        # 3 forwarded requests per client, plus pings and the restart.
        if fleet["requests"] < CLIENTS * 3:
            fail("fleet.requests=%d, expected >= %d"
                 % (fleet["requests"], CLIENTS * 3))
        if fleet["forwarded"] < CLIENTS * 3:
            fail("fleet.forwarded=%d, expected >= %d"
                 % (fleet["forwarded"], CLIENTS * 3))
        if fleet["hot_restarts"] < 1:
            fail("fleet.hot_restarts=%d after an explicit restart"
                 % fleet["hot_restarts"])
        shards = fleet.get("shards") or {}
        if sorted(shards) != [str(i) for i in range(SHARDS)]:
            fail("per-shard table is incomplete: %r" % sorted(shards))
        if shards["0"]["generation"] < 2:
            fail("shard 0 generation=%d, expected >= 2 after hot "
                 "restart" % shards["0"]["generation"])
        served = sum(entry["ok"] for entry in shards.values())
        if served < CLIENTS * 3:
            fail("shards answered only %d requests, expected >= %d"
                 % (served, CLIENTS * 3))
        crossed = check_events(events_path, run_dir)
        print("ci-fleet-smoke: OK — %d clients over %d shards, "
              "%d forwarded (%d rerouted, %d retries), hot restart to "
              "generation %d, %d connected cross-process span trees, "
              "clean drain"
              % (CLIENTS, SHARDS, fleet["forwarded"], fleet["rerouted"],
                 fleet["retries"], shards["0"]["generation"], crossed))
        return 0
    finally:
        if gateway.poll() is None:
            gateway.kill()
            gateway.wait(30)
        # Stats, events, and the shard run dir stay for CI upload.
        if os.path.exists(sock):
            os.unlink(sock)


if __name__ == "__main__":
    sys.exit(main())
