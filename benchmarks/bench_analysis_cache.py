"""Analysis-cache warm-vs-cold speedup (tentpole acceptance check).

Cold: empty cache — full symbol-table refinement, per-routine CFG
construction, liveness, indirect-jump slicing, plus the summary store.
Warm: the same binary again — one content hash, one EELA blob read, and
per-routine restores; no refinement or analysis work at all.

The workload is ``interp`` (the largest: 20 routines and a dispatch
table), so the measured ratio is the one a tool like qpt2 would see
re-instrumenting a real program.
"""

import time

from conftest import record, report
from repro.core import Executable
from repro.workloads import build_image

WORKLOAD = "interp"
TARGET_SPEEDUP = 2.0


def _analyze(image, jobs=1):
    """The full front half of the edit pipeline: refined routines with
    CFGs and liveness ready for instrumentation."""
    exe = Executable(image).read_contents(jobs=jobs)
    for routine in exe.all_routines():
        routine.control_flow_graph().live_registers()
    return exe


def test_analysis_cache_warm_vs_cold(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CACHE", "on")

    # Images are built outside the timed region (compilation is not the
    # pipeline under test); each run gets a fresh Image object so no
    # in-memory state carries over — only the on-disk cache does.
    images = [build_image(WORKLOAD) for _ in range(5)]

    started = time.perf_counter()
    _analyze(images[0])
    cold = time.perf_counter() - started

    warm_times = []
    for image in images[1:4]:
        started = time.perf_counter()
        _analyze(image)
        warm_times.append(time.perf_counter() - started)
    warm = min(warm_times)

    speedup = cold / warm if warm else float("inf")
    rows = [
        ("path", "seconds", "speedup"),
        ("cold (analyze + store)", "%.4f" % cold, "1.0x"),
        ("warm (restore)", "%.4f" % warm, "%.1fx" % speedup),
    ]
    report("Analysis cache: warm vs cold on %s" % WORKLOAD, rows,
           paper_note="EEL reads an executable once; edits are the "
                      "common operation (section 3)")
    record("analysis_cache.%s.cold" % WORKLOAD, cold, "s")
    record("analysis_cache.%s.warm" % WORKLOAD, warm, "s")
    record("analysis_cache.%s.speedup" % WORKLOAD, speedup, "x")
    assert speedup >= TARGET_SPEEDUP, (
        "warm restore only %.2fx faster than cold analysis" % speedup
    )
