"""E2 — section 3.3's indirect-jump measurement.

Paper: gcc/SunOS — 0 unanalyzable of 1,325 indirect jumps (1,027,148
instructions, 11,975 routines); SunPro/Solaris — 138 unanalyzable of
1,244, every one a frame-pop tail call.  Reproduced over the corpus
compiled with both personalities: the gcc-like build has zero
unanalyzable jumps; every "unanalyzable" jump in the sunpro-like build
is the tail-call idiom.
"""

from conftest import report
from repro.core import Executable
from repro.minic import GCC_LIKE, SUNPRO_LIKE
from repro.workloads import build_image, program_names


def _survey(options):
    totals = {"instructions": 0, "routines": 0, "indirect": 0,
              "table": 0, "literal": 0, "tailcall": 0, "unanalyzable": 0}
    for name in program_names():
        exe = Executable(build_image(name, options)).read_contents()
        for routine in exe.all_routines():
            totals["routines"] += 1
            cfg = routine.control_flow_graph()
            totals["instructions"] += cfg.instruction_count()
            for info in cfg.indirect_jumps:
                totals["indirect"] += 1
                totals[info.status] += 1
    return totals


def test_indirect_jump_analysis(benchmark):
    gcc = benchmark(_survey, GCC_LIKE)
    sunpro = _survey(SUNPRO_LIKE)
    rows = [
        ("config", "instructions", "routines", "indirect jumps",
         "dispatch tables", "tail-call jumps", "unanalyzable"),
        ("gcc-like", gcc["instructions"], gcc["routines"],
         gcc["indirect"], gcc["table"], gcc["tailcall"],
         gcc["unanalyzable"]),
        ("sunpro-like", sunpro["instructions"], sunpro["routines"],
         sunpro["indirect"], sunpro["table"], sunpro["tailcall"],
         sunpro["unanalyzable"]),
    ]
    report("E2: indirect-jump analyzability by compiler personality",
           rows,
           "gcc: 0/1,325 unanalyzable; SunPro: 138/1,244, all frame-pop "
           "tail calls (which do not affect EEL's intraprocedural CFGs)")
    # Shape: the gcc-like build is fully analyzable.
    assert gcc["unanalyzable"] == 0
    assert gcc["table"] > 0
    # Shape: the sunpro-like build's extra jumps are all tail calls.
    assert sunpro["tailcall"] > 0
    assert sunpro["unanalyzable"] == 0
    assert sunpro["indirect"] > gcc["indirect"]
