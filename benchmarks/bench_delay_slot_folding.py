"""E10 — Figure 3 / section 3.3: delay-slot normalization and re-folding.

Paper: duplicated delay-slot instructions would grow the program, so
EEL folds instructions back into unedited delay slots.  Reproduced: an
identity transform emits exactly the original instruction count thanks
to re-folding, and an everything-edited transform pays the duplication.
"""

from conftest import report
from repro.core import Executable
from repro.sim import run_image
from repro.tools.common import CounterArray, counter_snippet
from repro.workloads import build_image, expected_output

WORKLOAD = "hanoi"


def _identity(image):
    exe = Executable(image).read_contents()
    for routine in exe.all_routines():
        routine.produce_edited_routine()
    out = exe.edited_image()
    out.entry = exe.edited_addr(exe.start_address())
    return out


def _edited_everywhere(image):
    exe = Executable(image).read_contents()
    counters = CounterArray(exe, "__fold_counts", 8192)
    for routine in exe.all_routines():
        cfg = routine.control_flow_graph()
        for block in cfg.blocks:
            for edge in block.succ:
                if edge.editable and edge.kind in ("taken", "fall"):
                    index = counters.allocate(None)
                    edge.add_code_along(
                        counter_snippet(exe, counters.address(index)))
        routine.produce_edited_routine()
    out = exe.edited_image()
    out.entry = exe.edited_addr(exe.start_address())
    return out


def _edited_text_size(image):
    return image.get_section(".text.edited").size


def test_delay_slot_refolding(benchmark):
    image = build_image(WORKLOAD)
    baseline = run_image(image)
    identity = benchmark(_identity, image)
    edited = _edited_everywhere(image)
    identity_run = run_image(identity)
    edited_run = run_image(edited)
    assert identity_run.output == expected_output(WORKLOAD)
    assert edited_run.output == expected_output(WORKLOAD)
    original_text = image.get_section(".text").size
    rows = [
        ("version", "text bytes", "run instructions"),
        ("original", original_text, baseline.instructions_executed),
        ("identity relayout (re-folded)", _edited_text_size(identity),
         identity_run.instructions_executed),
        ("every branch edge edited", _edited_text_size(edited),
         edited_run.instructions_executed),
    ]
    report("E10: delay-slot duplication and re-folding (workload: %s)"
           % WORKLOAD, rows,
           "unedited delay slots fold back; edited ones pay duplication")
    # Shape: re-folding keeps the identity transform the same dynamic
    # length as the original, and within a few % static size.
    assert identity_run.instructions_executed \
        == baseline.instructions_executed
    assert _edited_text_size(identity) <= original_text * 1.1
    assert _edited_text_size(edited) > _edited_text_size(identity)
