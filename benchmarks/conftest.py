"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures/measured
claims and prints it in a paper-vs-measured format.  Absolute numbers
differ (the substrate is a simulator, not a 1995 SPARCstation); the
*shape* — who wins, rough factors, crossovers — is the reproduction
target (see EXPERIMENTS.md).
"""

import sys


def report(title, rows, paper_note=""):
    """Print a small aligned table to the benchmark log."""
    out = ["", "=" * 72, title]
    if paper_note:
        out.append("paper: %s" % paper_note)
    out.append("-" * 72)
    widths = [max(len(str(row[i])) for row in rows)
              for i in range(len(rows[0]))]
    for row in rows:
        out.append("  ".join(str(cell).ljust(width)
                             for cell, width in zip(row, widths)))
    out.append("=" * 72)
    print("\n".join(out), file=sys.stderr)
