"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures/measured
claims and prints it in a paper-vs-measured format.  Absolute numbers
differ (the substrate is a simulator, not a 1995 SPARCstation); the
*shape* — who wins, rough factors, crossovers — is the reproduction
target (see EXPERIMENTS.md).

Besides the human-readable tables, the harness now emits machine-
readable results: every numeric cell printed through :func:`report`
(plus anything recorded explicitly via :func:`record`) is appended as a
``{name, value, unit}`` record, and the whole batch is written to
``BENCH_RESULTS.json`` at session end in the ``repro.obs.bench/1``
schema (see ``repro.obs.report``), so perf PRs can diff before/after
trajectories mechanically.
"""

import os
import re
import sys

import pytest

from repro.obs import report as obs_report


@pytest.fixture(scope="session", autouse=True)
def _hermetic_analysis_cache(tmp_path_factory):
    """Keep benchmark runs off the developer's real analysis cache (an
    exported REPRO_CACHE_DIR is respected for deliberate warm runs)."""
    if os.environ.get("REPRO_CACHE_DIR"):
        yield
        return
    directory = tmp_path_factory.mktemp("analysis-cache")
    os.environ["REPRO_CACHE_DIR"] = str(directory)
    try:
        yield
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)

# Session-wide accumulator for machine-readable benchmark records.
_RECORDS = []

_SLUG = re.compile(r"[^a-z0-9]+")


def _slug(text):
    return _SLUG.sub("_", str(text).lower()).strip("_")


def record(name, value, unit=""):
    """Append one machine-readable benchmark measurement."""
    _RECORDS.append(obs_report.bench_record(name, value, unit))


def _auto_record(title, rows):
    """Turn every numeric table cell into a bench record.

    The record name is ``<table slug>.<row label>.<column header>``;
    values given as "1.23x" strings become floats with unit "x".
    """
    if len(rows) < 2:
        return
    header = [_slug(cell) for cell in rows[0]]
    table = _slug(title.split(":")[0] if ":" in title else title)
    for row in rows[1:]:
        label = _slug(row[0])
        for column, cell in zip(header[1:], row[1:]):
            value, unit = _coerce(cell)
            if value is None:
                continue
            record("%s.%s.%s" % (table, label, column), value, unit)


def _coerce(cell):
    if isinstance(cell, bool):
        return int(cell), "bool"
    if isinstance(cell, (int, float)):
        return cell, ""
    if isinstance(cell, str):
        text = cell.strip()
        if text.endswith("x"):
            try:
                return float(text[:-1]), "x"
            except ValueError:
                return None, ""
        try:
            return float(text), ""
        except ValueError:
            return None, ""
    return None, ""


def report(title, rows, paper_note=""):
    """Print a small aligned table to the benchmark log (and record
    every numeric cell as a machine-readable result)."""
    out = ["", "=" * 72, title]
    if paper_note:
        out.append("paper: %s" % paper_note)
    out.append("-" * 72)
    widths = [max(len(str(row[i])) for row in rows)
              for i in range(len(rows[0]))]
    for row in rows:
        out.append("  ".join(str(cell).ljust(width)
                             for cell, width in zip(row, widths)))
    out.append("=" * 72)
    print("\n".join(out), file=sys.stderr)
    _auto_record(title, rows)


def pytest_sessionfinish(session, exitstatus):
    """Write BENCH_RESULTS.json next to the benchmarks at session end."""
    if not _RECORDS:
        return
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_RESULTS.json")
    obs_report.write_bench_results(path, _RECORDS)
    print("\nwrote %d benchmark records to %s" % (len(_RECORDS), path),
          file=sys.stderr)
