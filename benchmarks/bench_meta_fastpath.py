"""Trusted-metadata fast path vs full refinement (ISSUE 10 gate).

The production story for first-party binaries: the producer already
knows the structure, so cold analysis should collapse to verifying a
compact ``.eel.meta`` table and hydrating facts from it — spot checks
plus one linear decode sweep instead of multi-stage symbol refinement
with its CFG-driven hidden-routine discovery.  The gate: metadata-
trusted cold analysis at least ``5x`` faster than full refinement,
summed over the whole minic corpus (cache off on both sides, so both
paths are genuinely cold).
"""

import time

from conftest import record, report
from repro.binfmt.meta import attach_meta
from repro.binfmt.serialize import image_from_bytes, image_to_bytes
from repro.core import trust
from repro.core.executable import Executable
from repro.workloads import build_image
from repro.workloads.builder import program_names

TARGET_SPEEDUP = 5.0
_RUNS = 3


def _meta_blob(name):
    """Serialized metadata-carrying copy of workload *name*."""
    image = image_from_bytes(image_to_bytes(build_image(name)))
    executable = Executable(image).read_contents(trust_meta=False)
    attach_meta(image, trust.meta_from_executable(executable))
    return image_to_bytes(image)


def _cold_read(blob, trusted):
    """Best-of-N cold read_contents on a fresh image each run; image
    parsing stays outside the timed region."""
    best = None
    for _ in range(_RUNS):
        image = image_from_bytes(blob)
        started = time.perf_counter()
        executable = Executable(image).read_contents(trust_meta=trusted)
        elapsed = time.perf_counter() - started
        expected = ("trusted", None) if trusted else ("disabled", None)
        assert executable.meta_status == expected
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_meta_fastpath_speedup(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    names = list(program_names())
    blobs = {name: _meta_blob(name) for name in names}

    rows = [("workload", "refine (s)", "trusted (s)", "speedup")]
    totals = {"refine": 0.0, "trusted": 0.0}
    for name in names:
        refine = _cold_read(blobs[name], trusted=False)
        fast = _cold_read(blobs[name], trusted=True)
        totals["refine"] += refine
        totals["trusted"] += fast
        rows.append((name, "%.4f" % refine, "%.4f" % fast,
                     "%.1fx" % (refine / fast if fast else float("inf"))))
    speedup = totals["refine"] / totals["trusted"] \
        if totals["trusted"] else float("inf")
    rows.append(("corpus total", "%.4f" % totals["refine"],
                 "%.4f" % totals["trusted"], "%.1fx" % speedup))
    report("Metadata fast path: verify-and-trust vs full refinement "
           "(%d workloads)" % len(names), rows,
           paper_note="EEL rediscovers structure the compiler knew; "
                      "Engel/Verbeek-style producer metadata makes the "
                      "cold path a verification, not a search")
    record("meta_fastpath.corpus.refine", totals["refine"], "s")
    record("meta_fastpath.corpus.trusted", totals["trusted"], "s")
    record("meta_fastpath.corpus.speedup", speedup, "x")
    assert speedup >= TARGET_SPEEDUP, (
        "trusted cold analysis only %.2fx faster than refinement"
        % speedup)
