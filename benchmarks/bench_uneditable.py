"""E3 — section 3.3: fraction of uneditable blocks and edges.

Paper: 15-20% of edges and blocks are uneditable (they transfer control
out of the routine: call/return delay slots, surrogates, entry/exit).
Our routines are far smaller than SPEC92's, which inflates per-routine
pseudo-block overhead; the bench reports both the raw fraction and the
fraction among routines with at least 5 blocks (closer to the paper's
population).
"""

from conftest import report
from repro.core import Executable
from repro.workloads import build_image, program_names


def _census():
    raw = [0, 0, 0, 0]  # editable blocks, blocks, editable edges, edges
    big = [0, 0, 0, 0]  # same, restricted to routines with >= 8 blocks
    for name in program_names():
        exe = Executable(build_image(name)).read_contents()
        for routine in exe.all_routines():
            cfg = routine.control_flow_graph()
            blocks_editable, blocks_total, edges_editable, edges_total = \
                cfg.editable_stats()
            for accumulator in ((raw, True),
                                (big, blocks_total >= 8)):
                target, wanted = accumulator
                if wanted:
                    target[0] += blocks_editable
                    target[1] += blocks_total
                    target[2] += edges_editable
                    target[3] += edges_total
    return raw, big


def test_uneditable_fraction(benchmark):
    raw, big = benchmark(_census)
    rows = [
        ("population", "uneditable blocks", "uneditable edges"),
        ("all routines", "%.1f%%" % (100 * (1 - raw[0] / raw[1])),
         "%.1f%%" % (100 * (1 - raw[2] / raw[3]))),
        ("routines with >= 8 blocks",
         "%.1f%%" % (100 * (1 - big[0] / big[1])),
         "%.1f%%" % (100 * (1 - big[2] / big[3]))),
    ]
    report("E3: uneditable blocks and edges", rows,
           "15-20% uneditable on SPEC92 (much larger routines)")
    # Shape: a substantial minority, and larger routines approach the
    # paper's range from above.
    assert 0.10 < 1 - raw[0] / raw[1] < 0.60
    assert (1 - big[0] / big[1]) <= (1 - raw[0] / raw[1])
