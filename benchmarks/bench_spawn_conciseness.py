"""E5 — section 4: machine-description conciseness.

Paper: SPARC description 145 non-comment lines; the handwritten
equivalent 2,268 lines; spawn's generated output 6,178 lines; MIPS
description 128 lines, Alpha 138.  Reproduced with our descriptions,
handwritten codecs, and generated modules.
"""

import inspect

from conftest import report
from repro.spawn import generate_source, load_description


def _loc(text):
    return sum(1 for line in text.splitlines()
               if line.strip() and not line.strip().startswith("#"))


def _handwritten_loc(arch):
    if arch == "sparc":
        from repro.isa.sparc import handwritten, machine
    else:
        from repro.isa.mips import handwritten, machine
    return _loc(inspect.getsource(handwritten)) \
        + _loc(inspect.getsource(machine))


def test_spawn_conciseness(benchmark):
    generated_sparc = benchmark(generate_source, "sparc")
    generated_mips = generate_source("mips")
    rows = [("artifact", "sparc lines", "mips lines")]
    desc_sparc = load_description("sparc").source_lines
    desc_mips = load_description("mips").source_lines
    hand_sparc = _handwritten_loc("sparc")
    hand_mips = _handwritten_loc("mips")
    gen_sparc = _loc(generated_sparc)
    gen_mips = _loc(generated_mips)
    rows.append(("spawn description", desc_sparc, desc_mips))
    rows.append(("handwritten machine layer", hand_sparc, hand_mips))
    rows.append(("spawn-generated module", gen_sparc, gen_mips))
    rows.append(("description : handwritten",
                 "1 : %.1f" % (hand_sparc / desc_sparc),
                 "1 : %.1f" % (hand_mips / desc_mips)))
    report("E5: machine description conciseness", rows,
           "SPARC 145 desc / 2,268 handwritten / 6,178 generated; "
           "MIPS 128 desc")
    # Shape: description << handwritten < generated.
    assert desc_sparc * 4 < hand_sparc < gen_sparc
    assert desc_mips * 4 < hand_mips < gen_mips
