"""E6 — section 5 footnote 1: CFG block composition.

Paper: qpt2's CFGs contain 26,912 blocks vs 15,441 for the old tool's
definition — the extra blocks are 12,774 delay-slot blocks, 920
entry/exit blocks, and 1,942 call surrogate blocks.  Reproduced: EEL's
normalized block count vs a leader-scan block count, broken down by
block kind.
"""

from conftest import report
from repro.core import Executable
from repro.tools.qpt_classic import ClassicProfiler
from repro.workloads import build_image, program_names


def _eel_census():
    census = {}
    for name in program_names():
        exe = Executable(build_image(name)).read_contents()
        for routine in exe.all_routines():
            cfg = routine.control_flow_graph()
            for kind, count in cfg.block_census().items():
                census[kind] = census.get(kind, 0) + count
    return census


def _classic_blocks():
    total = 0
    for name in program_names():
        tool = ClassicProfiler(build_image(name))
        total += len(tool._leaders())
    return total


def test_cfg_block_composition(benchmark):
    census = benchmark(_eel_census)
    classic = _classic_blocks()
    eel_total = sum(census.values())
    rows = [
        ("population", "blocks"),
        ("ad-hoc leader scan (old qpt definition)", classic),
        ("EEL normalized CFGs (total)", eel_total),
        ("  normal blocks", census.get("normal", 0)),
        ("  delay-slot blocks", census.get("delay", 0)),
        ("  entry/exit blocks",
         census.get("entry", 0) + census.get("exit", 0)),
        ("  call surrogate blocks", census.get("surrogate", 0)),
        ("ratio (EEL/ad-hoc)", "%.2f" % (eel_total / classic)),
    ]
    report("E6: CFG block composition across the corpus", rows,
           "26,912 EEL blocks vs 15,441 (12,774 delay, 920 entry/exit, "
           "1,942 surrogates)")
    # Shape: normalization roughly doubles the block count, and delay
    # blocks are the largest added category.
    assert eel_total > classic
    assert census["delay"] > census["surrogate"]
    assert census["delay"] + census["entry"] + census["exit"] \
        + census["surrogate"] > 0.3 * eel_total
