"""E11 — section 5: spawn-generated code runs at handwritten speed.

Paper: "the spawn-generated code ran at the same speed" as the
handwritten machine-specific code.  Reproduced: decode throughput of
both codecs over the corpus (caches cleared per round), plus
description-driven program execution as a stronger functional check.
"""

import time

from conftest import report
from repro.isa import get_codec
from repro.sim import Simulator
from repro.spawn import build_codec
from repro.workloads import build_image, program_names


def _corpus_words():
    words = []
    for name in program_names():
        words.extend(build_image(name).get_section(".text").words())
    return words


def _decode_all(codec, words):
    codec.reset_statistics()
    for word in words:
        codec.decode(word)
    return codec.distinct_decoded


def test_spawn_codec_speed(benchmark):
    words = _corpus_words()
    handwritten = get_codec("sparc")
    generated = build_codec("sparc")

    benchmark(_decode_all, generated, words)
    start = time.perf_counter()
    _decode_all(generated, words)
    generated_time = time.perf_counter() - start
    start = time.perf_counter()
    _decode_all(handwritten, words)
    handwritten_time = time.perf_counter() - start

    image = build_image("fib")
    sim_hand = Simulator(image)
    sim_hand.run()
    sim_spawn = Simulator(image, engine="spawn")
    sim_spawn.run()
    assert sim_spawn.output == sim_hand.output

    rows = [
        ("codec", "decode time (corpus)", "distinct words"),
        ("handwritten", "%.4fs" % handwritten_time,
         handwritten.distinct_decoded),
        ("spawn-generated", "%.4fs" % generated_time,
         generated.distinct_decoded),
        ("ratio", "%.2fx" % (generated_time / handwritten_time), ""),
    ]
    report("E11: spawn-generated vs handwritten codec speed", rows,
           "generated code ran at the same speed as handwritten")
    # Shape: same order of magnitude (interning makes both cheap).
    assert generated_time < handwritten_time * 6
