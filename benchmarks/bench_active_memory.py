"""E7 — section 5: Active Memory cache simulation slowdown.

Paper: inserting cache-state tests before memory references lowers the
cost of cache simulation to a 2-7x slowdown, far cheaper than
post-processing an address trace.  Reproduced: per-workload slowdown of
the edited binary (in simulated instructions) plus exact-match
validation against the trace-driven model.
"""

import pytest

from conftest import report
from repro.sim import run_image
from repro.tools.active_memory import ActiveMemory, trace_driven_misses
from repro.workloads import build_image

WORKLOADS = ("fib", "sieve", "qsort", "matmul", "interp", "tree")


def _measure(name):
    image = build_image(name)
    baseline = run_image(image)
    _, trace_cache = trace_driven_misses(image)
    tool = ActiveMemory(image).instrument()
    simulator, cache = tool.run()
    assert simulator.output == baseline.output
    assert cache.misses == trace_cache.misses
    slowdown = simulator.instructions_executed \
        / baseline.instructions_executed
    return slowdown, cache, trace_cache


def test_active_memory_slowdowns(benchmark):
    results = {}
    for name in WORKLOADS[1:]:
        results[name] = _measure(name)
    results[WORKLOADS[0]] = benchmark(_measure, WORKLOADS[0])
    rows = [("workload", "slowdown", "misses (edited)", "misses (trace)",
             "accesses")]
    for name in WORKLOADS:
        slowdown, cache, trace_cache = results[name]
        rows.append((name, "%.2fx" % slowdown, cache.misses,
                     trace_cache.misses, trace_cache.accesses))
    report("E7: Active Memory cache simulation by editing", rows,
           "2-7x slowdown; miss counts identical to trace-driven model")
    for name, (slowdown, cache, trace_cache) in results.items():
        assert 1.5 < slowdown < 7.0, name
        assert cache.misses == trace_cache.misses, name
