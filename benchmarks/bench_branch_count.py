"""E13 — Figures 1-2: the branch-counting tool.

The paper's running example: a few dozen lines against the EEL API add
a counter along every edge out of a multi-successor block.  Reproduced
end-to-end, with counts validated against simulator ground truth.
"""

import inspect

from conftest import report
from repro.core import Executable
from repro.sim import run_image
from repro.tools import branch_count
from repro.tools.branch_count import count_branches
from repro.workloads import build_image, expected_output

WORKLOAD = "interp"


def test_branch_count_tool(benchmark):
    image = build_image(WORKLOAD)
    baseline = run_image(image, count_pcs=True)

    def instrument_and_run():
        return count_branches(image)

    simulator, counts = benchmark(instrument_and_run)
    assert simulator.output == expected_output(WORKLOAD)

    # Ground truth: every counted edge's count must equal the number of
    # times its destination block head executed via that edge's source.
    nonzero = [(descriptor, count) for descriptor, count in counts if count]
    total = sum(count for _, count in nonzero)

    loc = sum(1 for line in
              inspect.getsource(branch_count).splitlines()
              if line.strip() and not line.strip().startswith("#"))
    rows = [
        ("metric", "value"),
        ("counted edges (nonzero)", len(nonzero)),
        ("total edge executions", total),
        ("instrumented run / baseline", "%.2fx" %
         (simulator.instructions_executed
          / baseline.instructions_executed)),
        ("tool source lines", loc),
    ]
    report("E13: branch-counting tool (Figures 1-2), workload: %s"
           % WORKLOAD, rows,
           "a page of code against the EEL API implements the tool")
    assert nonzero
    assert total > 0
    # The tool is small — the point of the Figure 1 comparison.
    assert loc < 150
