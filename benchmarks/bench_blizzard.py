"""E8 — section 5: Blizzard-S fine-grain access control.

Paper: the EEL version is ~1,300 lines vs ~2,800 ad-hoc, and exploits
live-register analysis to use a faster access test when condition codes
are dead.  Reproduced: overhead with and without the liveness
optimization, fault behavior, and tool size.
"""

import inspect

from conftest import report
from repro.sim import run_image
from repro.tools import blizzard
from repro.tools.blizzard import (
    BlizzardAccessControl,
    STATE_INVALID,
    TABLE_SIZE,
)
from repro.workloads import build_image

WORKLOADS = ("qsort", "sieve", "bubble")


def _overhead(name, always_save_cc):
    image = build_image(name)
    baseline = run_image(image)
    tool = BlizzardAccessControl(image,
                                 always_save_cc=always_save_cc)
    tool.instrument()
    simulator, _ = tool.run()
    assert simulator.output == baseline.output
    return simulator.instructions_executed \
        / baseline.instructions_executed, tool.sites


def test_blizzard_access_control(benchmark):
    rows = [("workload", "sites", "slowdown (liveness)",
             "slowdown (always save cc)")]
    stats = {}
    for name in WORKLOADS:
        if name == WORKLOADS[0]:
            fast, sites = benchmark(_overhead, name, False)
        else:
            fast, sites = _overhead(name, False)
        slow, _ = _overhead(name, True)
        stats[name] = (fast, slow)
        rows.append((name, sites, "%.2fx" % fast, "%.2fx" % slow))
    loc = sum(1 for line in inspect.getsource(blizzard).splitlines()
              if line.strip() and not line.strip().startswith("#"))
    rows.append(("tool size", "%d lines" % loc, "", ""))
    report("E8: Blizzard-S fine-grain access control", rows,
           "EEL version ~1,300 lines (vs 2,800 ad-hoc); faster test "
           "when condition codes are dead")
    for name, (fast, slow) in stats.items():
        assert fast <= slow, name  # liveness optimization never loses

    # Coherence behavior: invalid blocks fault exactly once.
    image = build_image("qsort")
    tool = BlizzardAccessControl(
        image, initial_state=bytes([STATE_INVALID]) * TABLE_SIZE)
    tool.instrument()
    _, faults = tool.run()
    assert faults
    blocks = [addr >> 5 for addr in faults]
    assert len(blocks) == len(set(blocks))
