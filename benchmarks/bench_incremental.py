"""Incremental re-analysis: one edited routine vs the whole image.

The fact store's reason to exist: after an edit to one routine, the
fixpoint solver re-derives that routine's facts and refreshes its
dependents, instead of re-paying symbol-table refinement and CFG
construction for every routine in the image.  The gate compares a
warm re-analysis of one mid-sized routine (``main``) against
invalidating and re-deriving everything, on ``interp`` (20 routines,
dispatch table) — the shape an interactive edit-compile-measure loop
actually sees.
"""

import time

from conftest import record, report
from repro.core import Executable
from repro.workloads import build_image

WORKLOAD = "interp"
ROUTINE = "main"
TARGET_SPEEDUP = 5.0


def test_incremental_single_routine_vs_full(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CACHE", "on")

    Executable(build_image(WORKLOAD)).read_contents()  # seed the cache
    exe = Executable(build_image(WORKLOAD)).read_contents()
    routines = [routine.name for routine in exe.all_routines()]

    # Full re-analysis: every routine's facts dirty, one fixpoint run.
    full_times = []
    for _ in range(3):
        for name in routines:
            exe.invalidate_routine(name)
        started = time.perf_counter()
        exe.reanalyze()
        full_times.append(time.perf_counter() - started)
    full = min(full_times)

    # Incremental: one routine dirty, dependents refreshed from facts.
    single_times = []
    for _ in range(5):
        exe.invalidate_routine(ROUTINE)
        started = time.perf_counter()
        exe.reanalyze()
        single_times.append(time.perf_counter() - started)
    single = min(single_times)

    speedup = full / single if single else float("inf")
    rows = [
        ("re-analysis", "seconds", "speedup"),
        ("full image (%d routines)" % len(routines),
         "%.4f" % full, "1.0x"),
        ("single routine (%s)" % ROUTINE,
         "%.4f" % single, "%.1fx" % speedup),
    ]
    report("Incremental re-analysis: %s" % WORKLOAD, rows,
           paper_note="EEL section 3.1 refinement is batch; the fact "
                      "store re-derives only what an edit touched")
    record("incremental.%s.full_s" % WORKLOAD, full, "s")
    record("incremental.%s.single_s" % WORKLOAD, single, "s")
    record("incremental.%s.speedup" % WORKLOAD, speedup, "x")
    assert speedup >= TARGET_SPEEDUP, (
        "single-routine re-analysis only %.2fx faster than full" % speedup
    )
