"""E9 — section 5: object allocation census.

Paper: instrumenting spim, EEL allocates 317,494 objects vs 84,655 for
the ad-hoc tool (explicit program representations cost space), and
EEL's CFGs have more blocks, which disproportionately slows non-linear
algorithms.  Reproduced: EEL instruction/block/edge objects vs the
ad-hoc tool's decode count for the same workload.
"""

from conftest import report
from repro.core import Executable
from repro.core import instruction as eel_instruction
from repro.tools.qpt import QptProfiler
from repro.tools.qpt_classic import ClassicProfiler
from repro.workloads import build_image

WORKLOAD = "qsort"


def _eel_census(image):
    eel_instruction.clear_caches()
    eel_instruction.reset_allocation_stats()
    exe = Executable(image).read_contents()
    blocks = edges = 0
    snippets = 0
    for routine in exe.all_routines():
        cfg = routine.control_flow_graph()
        blocks += len(cfg.blocks)
        edges += len(cfg.all_edges())
    _, instructions = eel_instruction.allocation_stats()
    return {"instructions": instructions, "blocks": blocks,
            "edges": edges, "total": instructions + blocks + edges}


def test_object_allocation(benchmark):
    image = build_image(WORKLOAD)
    eel = benchmark(_eel_census, image)
    classic = ClassicProfiler(image)
    classic.instrument()
    rows = [
        ("tool", "objects"),
        ("ad-hoc qpt (interned decodes)", classic.objects_allocated),
        ("EEL instructions", eel["instructions"]),
        ("EEL blocks", eel["blocks"]),
        ("EEL edges", eel["edges"]),
        ("EEL total", eel["total"]),
    ]
    report("E9: object allocation census (workload: %s)" % WORKLOAD, rows,
           "EEL allocates 317,494 objects vs 84,655 (explicit "
           "representations cost space)")
    # Shape: EEL's explicit representations allocate more objects than a
    # single linear scan keeps.
    assert eel["total"] > eel["instructions"]
    assert eel["blocks"] > 0 and eel["edges"] > 0
