"""Fleet economics: 4 sharded daemons vs. one, under mixed priority.

The single daemon is one Python process: CPU-bound analysis and
simulation serialize on the GIL no matter how many worker threads it
runs.  The fleet escapes that ceiling with real processes — N shard
daemons behind one gateway, requests routed by content so every image
keeps hitting its warm shard.  This benchmark drives ~100 concurrent
mixed-priority clients (interactive ``run`` plus bulk ``verify``)
first at a standalone daemon, then at a 4-shard fleet, and gates on
the fleet sustaining at least ``MIN_SPEEDUP`` times the requests/sec.

The speedup gate is CPU-aware: with fewer than 4 usable cores the
shards time-slice one another and the ratio measures the scheduler,
not the architecture — there the benchmark still runs both topologies
(zero failed requests, metrics recorded) but only enforces the fleet
completing sanely; CI runners provide the >= 4 cores the full gate
assumes.
"""

import os
import subprocess
import sys
import threading
import time

from conftest import record, report
from repro.serve.client import ServeClient, wait_for_daemon

CLIENTS = 100
REQUESTS_EACH = 3
SHARDS = 4
MIN_SPEEDUP = 2.5
# Every 4th client issues bulk verify traffic; the rest are interactive.
WORKLOADS = ["fib", "qsort", "bubble", "sieve", "crc", "strings"]

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src")


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _env():
    return dict(os.environ, PYTHONPATH=os.pathsep.join(
        filter(None, [_SRC, os.environ.get("PYTHONPATH")])))


def _burst(address, failures):
    """All clients through one address; returns (elapsed_s, completed)."""
    completed = []

    def session(index):
        workload = WORKLOADS[index % len(WORKLOADS)]
        bulk = index % 4 == 3
        try:
            with ServeClient(address, retries=10,
                             io_timeout=300.0) as client:
                for _ in range(REQUESTS_EACH):
                    if bulk:
                        result = client.request("verify", workload=workload,
                                                tool="qpt")
                        assert result["ok"], result.get("text")
                    else:
                        result = client.run_workload(workload)
                        assert result["exit_code"] == 0
                    completed.append(index)
        except Exception as error:  # noqa: BLE001 - any failure gates
            failures.append("client %d (%s): %s" % (index, workload, error))

    threads = [threading.Thread(target=session, args=(i,))
               for i in range(CLIENTS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(900)
    return time.perf_counter() - started, len(completed)


def _shutdown(proc, address):
    try:
        with ServeClient(address, retries=0, io_timeout=10.0) as client:
            client.shutdown()
    except Exception:  # noqa: BLE001 - fall through to SIGTERM
        proc.terminate()
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(30)


def test_fleet_scales_past_single_daemon(tmp_path):
    failures = []

    # --- Baseline: one daemon process, 4 worker threads, one GIL.
    single_sock = str(tmp_path / "single.sock")
    single = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--socket",
         single_sock, "--jobs", "4", "--queue", "256", "--timeout", "300"],
        env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        assert wait_for_daemon(single_sock, timeout=60.0), \
            "single daemon never came up"
        single_s, single_done = _burst(single_sock, failures)
    finally:
        _shutdown(single, single_sock)
    assert not failures, failures
    assert single_done == CLIENTS * REQUESTS_EACH

    # --- Fleet: gateway + 4 shard processes, same client burst.
    fleet_sock = str(tmp_path / "fleet.sock")
    fleet = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "fleet", "--address",
         fleet_sock, "--shards", str(SHARDS), "--shard-jobs", "2",
         "--dir", str(tmp_path / "fleet-dir"), "--queue", "512"],
        env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        assert wait_for_daemon(fleet_sock, timeout=120.0), \
            "fleet gateway never came up"
        fleet_s, fleet_done = _burst(fleet_sock, failures)
    finally:
        _shutdown(fleet, fleet_sock)
    assert not failures, failures
    assert fleet_done == CLIENTS * REQUESTS_EACH

    total = CLIENTS * REQUESTS_EACH
    single_rps = total / single_s if single_s else float("inf")
    fleet_rps = total / fleet_s if fleet_s else float("inf")
    speedup = fleet_rps / single_rps if single_rps else float("inf")
    cpus = _cpus()
    rows = [
        ("topology", "wall s", "req/s", "speedup"),
        ("single daemon (4 threads)", "%.2f" % single_s,
         "%.1f" % single_rps, "1.0x"),
        ("fleet (%d shards)" % SHARDS, "%.2f" % fleet_s,
         "%.1f" % fleet_rps, "%.2fx" % speedup),
    ]
    report("Fleet serving: %d shards vs one daemon, %d mixed-priority "
           "clients (%d cpus)" % (SHARDS, CLIENTS, cpus),
           rows,
           paper_note="one analysis library, many concurrent tools "
                      "(section 2) — scaled past one address space")
    record("fleet.single_rps", single_rps, "req/s")
    record("fleet.fleet_rps", fleet_rps, "req/s")
    record("fleet.speedup", speedup, "x")
    record("fleet.cpus", cpus, "cores")
    if cpus >= SHARDS:
        assert speedup >= MIN_SPEEDUP, (
            "a %d-shard fleet sustains only %.2fx the single-daemon "
            "request rate under %d mixed-priority clients (floor: "
            "%.1fx on %d cpus) — sharding or the gateway has regressed"
            % (SHARDS, speedup, CLIENTS, MIN_SPEEDUP, cpus))
