"""E4 — section 3.4: flyweight instruction sharing.

Paper: allocating one EEL instruction per distinct machine word reduces
allocated instructions by a factor of about four.
"""

from conftest import report
from repro.core import instruction as eel_instruction
from repro.core.instruction import instruction_for
from repro.isa import get_codec
from repro.workloads import build_image, program_names


def _decode_corpus(share):
    codec = get_codec("sparc")
    eel_instruction.clear_caches()
    eel_instruction.reset_allocation_stats()
    for name in program_names():
        image = build_image(name)
        text = image.get_section(".text")
        for word in text.words():
            instruction_for(codec, word, share=share)
    return eel_instruction.allocation_stats()


def test_instruction_sharing(benchmark):
    requests, allocated_shared = benchmark(_decode_corpus, True)
    requests2, allocated_unshared = _decode_corpus(False)
    assert requests == requests2
    factor = allocated_unshared / allocated_shared
    rows = [
        ("mode", "instruction objects", "requests"),
        ("without sharing", allocated_unshared, requests),
        ("with sharing (flyweight)", allocated_shared, requests),
        ("reduction factor", "%.1fx" % factor, ""),
    ]
    report("E4: flyweight instruction allocation", rows,
           "sharing reduces allocated EEL instructions ~4x")
    assert factor > 2.5  # the paper's "typically a factor of four"
