"""Serving economics: warm daemon requests vs. cold CLI invocations.

The daemon exists because EEL's expensive step — reading and analyzing
an executable — is paid once and then amortized across every
subsequent edit/instrument/query (the paper's tool/library split,
recast as a resident service).  A cold CLI call pays interpreter
startup plus a full analysis every time; a warm daemon request pays a
socket round-trip against an already-analyzed image.  This benchmark
measures both and gates on the warm path being at least
``MIN_SPEEDUP`` times faster.
"""

import os
import subprocess
import sys
import time

from conftest import record, report
from repro.serve import EditServer, ServeConfig
from repro.serve.client import ServeClient

WORKLOAD = "interp"  # the analysis-heaviest SPARC workload
COLD_RUNS = 3
WARM_RUNS = 10
MIN_SPEEDUP = 5.0

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src")


def _median(samples):
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _cold_cli_seconds(image_path, tmp_path):
    """One full CLI invocation: process start + cold analysis."""
    env = dict(os.environ,
               PYTHONPATH=os.pathsep.join(
                   filter(None, [_SRC, os.environ.get("PYTHONPATH")])),
               REPRO_CACHE="on")
    samples = []
    for index in range(COLD_RUNS):
        env["REPRO_CACHE_DIR"] = str(tmp_path / ("cold-%d" % index))
        started = time.perf_counter()
        subprocess.run([sys.executable, "-m", "repro.cli", "routines",
                        image_path], env=env, check=True,
                       stdout=subprocess.DEVNULL)
        samples.append(time.perf_counter() - started)
    return samples


def test_warm_daemon_beats_cold_cli(tmp_path, monkeypatch):
    from repro import cli
    from repro.cache import disable_memory_layer
    from repro.cache.parallel import suppress_pools

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "daemon-cache"))
    image_path = str(tmp_path / ("%s.eelf" % WORKLOAD))
    assert cli.main(["build", WORKLOAD, image_path]) == 0

    cold = _cold_cli_seconds(image_path, tmp_path)

    config = ServeConfig(socket_path=str(tmp_path / "bench.sock"), jobs=2)
    server = EditServer(config).start()
    try:
        with ServeClient(config.socket_path) as client:
            client.request("routines", workload=WORKLOAD)  # pay cold once
            warm = []
            for _ in range(WARM_RUNS):
                started = time.perf_counter()
                client.request("routines", workload=WORKLOAD)
                warm.append(time.perf_counter() - started)
    finally:
        server.request_drain()
        assert server.wait_drained(15.0)
        disable_memory_layer()
        suppress_pools(False)

    cold_median = _median(cold)
    warm_median = _median(warm)
    speedup = cold_median / warm_median if warm_median else float("inf")
    rows = [
        ("path", "median s", "speedup"),
        ("cold CLI (start + analyze)", "%.4f" % cold_median, "1.0x"),
        ("warm daemon request", "%.5f" % warm_median, "%.1fx" % speedup),
    ]
    report("Edit serving: warm daemon vs cold CLI on %s" % WORKLOAD, rows,
           paper_note="analysis is the expensive step; the tool/library "
                      "split lets tools reuse it (sections 2, 6)")
    record("serve.%s.cold_cli" % WORKLOAD, cold_median, "s")
    record("serve.%s.warm_request" % WORKLOAD, warm_median, "s")
    record("serve.%s.speedup" % WORKLOAD, speedup, "x")
    assert speedup >= MIN_SPEEDUP, (
        "warm daemon requests are only %.1fx faster than cold CLI "
        "invocations (floor: %.1fx) — the warm layer or coalescing "
        "has regressed" % (speedup, MIN_SPEEDUP))
