"""E12 — profiling correctness and overhead (sections 1, 3.3, 5).

qpt's reason for CFG-based instrumentation: placing counters on a
spanning tree's complement is cheaper than counting every block, and
reconstruction still recovers exact counts.  Reproduced per workload:
block-mode vs edge-mode slowdown, and exact agreement of reconstructed
block counts with simulator ground truth.
"""

from conftest import report
from repro.core import Executable
from repro.sim import run_image
from repro.tools.qpt import profile
from repro.workloads import build_image, program_names

WORKLOADS = ("fib", "interp", "qsort", "hanoi", "sieve")


def _ground_truth(image):
    base = run_image(image, count_pcs=True)
    exe = Executable(image).read_contents()
    truth = {}
    for routine in exe.all_routines():
        cfg = routine.control_flow_graph()
        for block in cfg.normal_blocks():
            truth[(routine.name, block.start)] = base.pc_counts.get(
                block.start, 0)
    return base, truth


def _measure(name):
    image = build_image(name)
    base, truth = _ground_truth(image)
    out = {}
    for mode in ("block", "edge"):
        tool, simulator = profile(image, mode=mode)
        assert simulator.output == base.output
        counts = tool.block_counts(simulator)
        exact = all(truth.get(key, 0) == value
                    for key, value in counts.items())
        out[mode] = (simulator.instructions_executed
                     / base.instructions_executed,
                     tool.counters.used, exact)
    return out


def test_profiling_overhead(benchmark):
    results = {name: _measure(name) for name in WORKLOADS[1:]}
    results[WORKLOADS[0]] = benchmark(_measure, WORKLOADS[0])
    rows = [("workload", "block slowdown", "block counters",
             "edge slowdown", "edge counters", "counts exact")]
    for name in WORKLOADS:
        block = results[name]["block"]
        edge = results[name]["edge"]
        rows.append((name, "%.2fx" % block[0], block[1],
                     "%.2fx" % edge[0], edge[1],
                     block[2] and edge[2]))
    report("E12: qpt2 profiling overhead and correctness", rows,
           "edge profiling (Ball-Larus placement) beats block counting; "
           "reconstructed counts are exact")
    for name, modes in results.items():
        assert modes["block"][2] and modes["edge"][2], name
        assert modes["edge"][0] < modes["block"][0], name
        assert modes["edge"][1] < modes["block"][1], name
