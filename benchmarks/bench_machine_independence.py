"""E14 — section 4's claim: the same tool source runs on both machines.

The branch counter and the identity editor run unchanged over SPARC and
MIPS binaries; only the description-derived machine layer differs.
"""

from conftest import report
from repro.core import Executable
from repro.sim import run_image
from repro.tools.branch_count import BranchCounter
from repro.workloads import (
    build_image,
    build_mips_image,
    expected_output,
    mips_program_names,
)
from repro.workloads.mips_programs import MIPS_PROGRAMS


def _count_branches_everywhere(image):
    tool = BranchCounter(image).run()
    edited = tool.edited_image()
    simulator = run_image(edited)
    counts = tool.counts(simulator)
    return simulator, sum(c for _, c in counts if c)


def test_machine_independence(benchmark):
    rows = [("binary", "arch", "output ok", "edge executions counted")]
    sparc_image = build_image("fib")
    simulator, total = benchmark(_count_branches_everywhere, sparc_image)
    rows.append(("fib", "sparc",
                 simulator.output == expected_output("fib"), total))
    assert simulator.output == expected_output("fib")
    assert total > 0
    for name in mips_program_names():
        image = build_mips_image(name)
        simulator, total = _count_branches_everywhere(image)
        ok = simulator.output == MIPS_PROGRAMS[name][1]
        rows.append((name, "mips", ok, total))
        assert ok, name
        if name != "mips_sum":
            assert total > 0, name
    report("E14: one tool source, two architectures", rows,
           "EEL tools are architecture-independent; the machine layer "
           "comes from 68/82-line descriptions")
