"""Block-compiling engine vs. the per-instruction interpreter.

The paper's generated execute layer (§4) amortizes decode over many
executions; the block engine takes the same idea further by compiling
whole basic blocks to specialized Python.  This benchmark pins the
payoff: warm simulation of a loop-heavy workload must be at least
``MIN_SPEEDUP`` faster under ``engine="block"`` than under the
handwritten per-instruction model, with identical observables.
"""

import time

from conftest import record, report
from repro.sim.machine import Simulator
from repro.workloads import builder

WORKLOAD = "interp"
# The block compiler folds decode, operand selection, and pc/npc
# bookkeeping out of the hot loop; anything below this factor means
# block dispatch overhead is eating the win.
MIN_SPEEDUP = 3.0


def _run(image, engine, **kwargs):
    simulator = Simulator(image, engine=engine, **kwargs)
    started = time.perf_counter()
    simulator.run()
    elapsed = time.perf_counter() - started
    return elapsed, simulator


def _best_of(image, engine, repeats=3):
    """Fastest of *repeats* runs: per-pc counting is excluded from the
    timed runs (the profile dict increment costs the same under both
    engines and would just compress the measured ratio)."""
    best = None
    simulator = None
    for _ in range(repeats):
        elapsed, simulator = _run(image, engine)
        best = elapsed if best is None else min(best, elapsed)
    return best, simulator


def test_block_compile_speedup():
    image = builder.build_image(WORKLOAD)

    # Warm both engines once (first run pays source generation and
    # Python compile; steady-state is what users see across edits).
    _run(image, "handwritten")
    _run(image, "block")

    hand, base = _best_of(image, "handwritten")
    blk, compiled = _best_of(image, "block")

    # The speedup only counts if the engines are observably identical,
    # including the exact per-pc profile in counting mode.
    _, base_counted = _run(image, "handwritten", count_pcs=True)
    _, blk_counted = _run(image, "block", count_pcs=True)
    assert compiled.output == base.output
    assert compiled.exit_code == base.exit_code
    assert compiled.instructions_executed == base.instructions_executed
    assert blk_counted.pc_counts == base_counted.pc_counts

    speedup = hand / blk if blk else float("inf")
    cpu = compiled.cpu
    lookups = cpu.block_hits + cpu.block_misses
    insts_per_dispatch = (compiled.instructions_executed / lookups
                          if lookups else 0.0)

    rows = [
        ("engine", "seconds", "vs handwritten"),
        ("handwritten", "%.4f" % hand, "1.0x"),
        ("block", "%.4f" % blk, "%.1fx" % speedup),
    ]
    report("block compile: warm %s run, best of 3" % WORKLOAD, rows,
           paper_note="generated execute layer amortizes decode (sec. 4)")
    record("block_compile.%s.speedup" % WORKLOAD, speedup, "x")
    record("block_compile.%s.insts_per_dispatch" % WORKLOAD,
           insts_per_dispatch, "")
    record("block_compile.%s.compiles" % WORKLOAD, cpu.block_compiles, "")

    assert speedup >= MIN_SPEEDUP, (
        "block engine only %.2fx faster than handwritten on %s "
        "(need >= %.1fx)" % (speedup, WORKLOAD, MIN_SPEEDUP))
