"""Verification cost: cosim lockstep vs. a plain instrumented run.

The co-simulation oracle runs *both* images and pays a stop-set check
per instruction, so it is necessarily slower than simply executing the
edited binary.  This benchmark bounds that overhead factor — the price
of a differential correctness check per edit session — and also
measures the memoized path, which should be orders of magnitude
cheaper because a clean verdict re-check is one cache read.
"""

import time

from conftest import record, report
from repro.sim.machine import run_image
from repro.verify import instrument_workload, verify_session

WORKLOAD = "fib"
# Lockstep runs two simulators with per-step stop checks; anything
# under this factor keeps verification usable after every edit.
MAX_OVERHEAD_FACTOR = 30.0


def test_verify_overhead(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CACHE", "on")

    executable, edited_image, _ = instrument_workload(WORKLOAD)

    started = time.perf_counter()
    run_image(edited_image)
    plain = time.perf_counter() - started

    started = time.perf_counter()
    result = verify_session(executable, edited_image, label=WORKLOAD)
    full = time.perf_counter() - started
    assert result.ok and not result.memoized

    started = time.perf_counter()
    memo = verify_session(executable, edited_image, label=WORKLOAD)
    memoized = time.perf_counter() - started
    assert memo.memoized

    factor = full / plain if plain else float("inf")
    memo_factor = full / memoized if memoized else float("inf")
    rows = [
        ("path", "seconds", "vs plain run"),
        ("plain edited run", "%.4f" % plain, "1.0x"),
        ("verify (lints + cosim)", "%.4f" % full, "%.1fx" % factor),
        ("verify (memoized)", "%.6f" % memoized,
         "%.4fx" % (memoized / plain if plain else 0.0)),
    ]
    report("Verification overhead on %s (%d syncs)"
           % (WORKLOAD, result.syncs), rows,
           paper_note="an edited program must behave identically to "
                      "the original (section 3.5)")
    record("verify_overhead.%s.plain" % WORKLOAD, plain, "s")
    record("verify_overhead.%s.full" % WORKLOAD, full, "s")
    record("verify_overhead.%s.factor" % WORKLOAD, factor, "x")
    record("verify_overhead.%s.memo_speedup" % WORKLOAD, memo_factor, "x")
    assert factor <= MAX_OVERHEAD_FACTOR, (
        "verification costs %.1fx a plain run (budget %.1fx)"
        % (factor, MAX_OVERHEAD_FACTOR))
    assert memoized < full
