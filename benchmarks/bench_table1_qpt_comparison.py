"""E1 — Table 1: qpt (ad-hoc) vs qpt2 (EEL-based) profiler comparison.

The paper instruments `spim` with both tools and reports tool size and
run time across build configurations; unoptimized qpt2 is 4.3x slower,
optimized 2.4x.  Here the axes are: instrumentation wall time (the tool
running), tool code size (lines), instrumented output size, and the
instrumented program's run length.  qpt2 must be slower and bigger but
portable and more precise.
"""

import inspect
import time

from conftest import report
from repro.sim import run_image
from repro.tools import qpt, qpt_classic
from repro.tools.qpt import QptProfiler
from repro.tools.qpt_classic import ClassicProfiler
from repro.workloads import build_image

WORKLOAD = "qsort"  # the spim stand-in: mid-size, calls, loops, a switch


def _loc(module):
    lines = inspect.getsource(module).splitlines()
    return sum(1 for line in lines
               if line.strip() and not line.strip().startswith("#"))


def _text_size(image):
    return sum(s.size for s in image.sections.values() if s.is_exec)


def test_table1_comparison(benchmark):
    image = build_image(WORKLOAD)
    base = run_image(image)

    start = time.perf_counter()
    classic = ClassicProfiler(image)
    classic_image = classic.instrument()
    classic_time = time.perf_counter() - start

    def run_qpt2():
        return QptProfiler(image, mode="edge").run().edited_image()

    qpt2_image = benchmark(run_qpt2)
    start = time.perf_counter()
    QptProfiler(image, mode="edge").run().edited_image()
    qpt2_time = time.perf_counter() - start

    classic_run = run_image(classic_image)
    qpt2_run = run_image(qpt2_image)
    assert classic_run.output == base.output == qpt2_run.output

    rows = [
        ("tool", "tool LoC", "instrument time", "output text bytes",
         "edited run insts"),
        ("qpt (ad-hoc)", _loc(qpt_classic), "%.3fs" % classic_time,
         _text_size(classic_image), classic_run.instructions_executed),
        ("qpt2 (EEL)", _loc(qpt), "%.3fs" % qpt2_time,
         _text_size(qpt2_image), qpt2_run.instructions_executed),
        ("ratio (qpt2/qpt)", "%.2f" % (_loc(qpt) / _loc(qpt_classic)),
         "%.2fx" % (qpt2_time / classic_time),
         "%.2f" % (_text_size(qpt2_image) / _text_size(classic_image)),
         "%.2f" % (qpt2_run.instructions_executed
                   / classic_run.instructions_executed)),
    ]
    report("E1 / Table 1: ad-hoc qpt vs EEL-based qpt2 (workload: %s)"
           % WORKLOAD, rows,
           "qpt2 runs 2.4-4.3x slower than qpt but is portable; "
           "qpt2's edited program is *cheaper* (optimal edge placement)")
    # Shape assertions: the general tool pays at instrumentation time...
    assert qpt2_time > classic_time
    # ...but produces a cheaper instrumented program (Ball-Larus).
    assert qpt2_run.instructions_executed \
        < classic_run.instructions_executed
