"""Machine independence: the same tool code edits a MIPS binary.

The paper's core claim — EEL tools don't know the architecture.  This
example runs the untouched branch-counting tool over a MIPS executable,
then shows the spawn machine description that makes it possible, and
finally executes the binary directly from description semantics.

Run:  python examples/port_to_mips.py
"""

from repro.sim import Simulator, run_image
from repro.spawn import load_description
from repro.tools.branch_count import BranchCounter
from repro.workloads import build_mips_image
from repro.workloads.mips_programs import MIPS_PROGRAMS


def main():
    name = "mips_switch"
    image = build_mips_image(name)
    expected = MIPS_PROGRAMS[name][1]

    print("editing a MIPS binary with the unchanged branch counter:")
    tool = BranchCounter(image).run()
    edited = tool.edited_image()
    simulator = run_image(edited)
    assert simulator.output == expected
    print("  output preserved:", repr(simulator.output))
    for descriptor, count in tool.counts(simulator):
        if count:
            routine, block, kind = descriptor
            print("  %-14s block 0x%04x %-5s: %d" % (routine, block,
                                                     kind, count))

    description = load_description("mips")
    print("\nthe whole MIPS machine layer derives from a %d-line "
          "description (%d instructions)" % (
              description.source_lines, len(description.instructions)))

    print("\nrunning the binary from description semantics (spawn "
          "executor):")
    spawned = Simulator(image, engine="spawn")
    spawned.run()
    assert spawned.output == expected
    print("  identical output after %d instructions"
          % spawned.instructions_executed)


if __name__ == "__main__":
    main()
