"""Quickstart: open an executable, look inside, edit it, run it.

Walks the full EEL workflow from the paper's Figure 1:
compile a program -> analyze its routines and CFGs -> add a counter
along every branch edge -> write the edited executable -> run both
versions and compare.

Run:  python examples/quickstart.py
"""

from repro.core import Executable
from repro.minic import compile_to_image
from repro.sim import run_image
from repro.tools.common import CounterArray, counter_snippet

SOURCE = """
int collatz_steps(int n) {
    int steps;
    steps = 0;
    while (n != 1) {
        if (n & 1) {
            n = 3 * n + 1;
        } else {
            n = n / 2;
        }
        steps = steps + 1;
    }
    return steps;
}

int main(void) {
    print_str("collatz(27) = ");
    print_int(collatz_steps(27));
    print_char('\\n');
    return 0;
}
"""


def main():
    # 1. Compile and run the original program.
    image = compile_to_image(SOURCE)
    baseline = run_image(image)
    print("original output :", baseline.output.strip())
    print("original length :", baseline.instructions_executed,
          "instructions")

    # 2. Open it as an executable and look inside (paper Figure 1).
    exe = Executable(image)
    exe.read_contents()
    print("\nroutines found:")
    for routine in exe.routines():
        cfg = routine.control_flow_graph()
        print("  %-14s @0x%04x  %2d blocks  %2d edges" % (
            routine.name, routine.start, len(cfg.blocks),
            len(cfg.all_edges())))

    # 3. Edit: add a counter along every edge out of a branchy block.
    counters = CounterArray(exe, "__quickstart_counts")
    for routine in exe.all_routines():
        cfg = routine.control_flow_graph()
        for block in cfg.blocks:
            if len(block.succ) <= 1:
                continue
            for edge in block.succ:
                if edge.editable:
                    index = counters.allocate(
                        (routine.name, block.start, edge.kind))
                    edge.add_code_along(
                        counter_snippet(exe, counters.address(index)))
        routine.produce_edited_routine()
        routine.delete_control_flow_graph()

    # 4. Write and run the edited executable.
    edited = exe.edited_image()
    edited.entry = exe.edited_addr(exe.start_address())
    run = run_image(edited)
    print("\nedited output   :", run.output.strip())
    print("edited length   :", run.instructions_executed, "instructions",
          "(%.2fx)" % (run.instructions_executed
                       / baseline.instructions_executed))
    assert run.output == baseline.output

    print("\nbranch-edge counts inside collatz_steps:")
    for descriptor, count in zip(counters.meaning,
                                 counters.read(run)):
        name, block_start, kind = descriptor
        if count and name == "collatz_steps":
            print("  block 0x%04x %-6s edge: %4d times"
                  % (block_start, kind, count))


if __name__ == "__main__":
    main()
