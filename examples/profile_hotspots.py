"""Profile a workload with qpt2 and report its hottest blocks and loops.

Demonstrates the profiler (Ball-Larus edge placement + reconstruction)
together with EEL's loop analysis: the hottest code should sit in the
innermost natural loops.

Run:  python examples/profile_hotspots.py [workload]
"""

import sys

from repro.core import Executable
from repro.sim import run_image
from repro.tools.qpt import profile
from repro.workloads import build_image, program_names


def main(name="qsort"):
    image = build_image(name)
    baseline = run_image(image)

    tool, simulator = profile(image, mode="edge")
    assert simulator.output == baseline.output
    counts = tool.block_counts(simulator)

    print("workload %s: %d instructions, %.2fx instrumented" % (
        name, baseline.instructions_executed,
        simulator.instructions_executed
        / baseline.instructions_executed))
    print("instrumented %d of the CFG edges (spanning-tree complement)\n"
          % tool.counters.used)

    hottest = sorted(counts.items(), key=lambda item: -item[1])[:10]
    print("hottest basic blocks:")
    for (routine, start), count in hottest:
        print("  %-14s 0x%04x  %8d executions" % (routine, start, count))

    # Cross-check with loop analysis: report loops of the hottest routine.
    hot_routine = hottest[0][0][0]
    exe = Executable(image).read_contents()
    routine = exe.routine(hot_routine)
    if routine is not None:
        cfg = routine.control_flow_graph()
        loops = cfg.natural_loops()
        print("\nnatural loops in %s:" % hot_routine)
        for loop in loops:
            header_count = counts.get((hot_routine, loop.header.start), 0)
            print("  header 0x%04x  %2d blocks  %8d iterations" % (
                loop.header.start, len(loop.body), header_count))


if __name__ == "__main__":
    main(*(sys.argv[1:2] or ["qsort"]))
