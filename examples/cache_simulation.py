"""Active Memory: cache simulation by executable editing.

Reproduces the paper's headline application (section 1): insert a quick
state test before each memory reference; only misses trap to the cache
model.  Compares against the trace-driven approach and sweeps cache
sizes to draw a miss curve.

Run:  python examples/cache_simulation.py [workload]
"""

import sys

from repro.sim import run_image
from repro.tools.active_memory import ActiveMemory, trace_driven_misses
from repro.workloads import build_image


def main(name="matmul"):
    image = build_image(name)
    baseline = run_image(image)

    print("workload %s (%d instructions)\n" % (
        name, baseline.instructions_executed))

    tool = ActiveMemory(image).instrument()
    simulator, cache = tool.run()
    _, trace_cache = trace_driven_misses(image)
    assert simulator.output == baseline.output
    assert cache.misses == trace_cache.misses

    print("Active Memory (editing):  %6d misses, %5.2fx slowdown, "
          "%d test sites" % (
              cache.misses,
              simulator.instructions_executed
              / baseline.instructions_executed,
              tool.sites))
    print("trace-driven baseline  :  %6d misses over %d accesses\n"
          % (trace_cache.misses, trace_cache.accesses))

    print("miss curve (direct-mapped, 32B blocks):")
    total = trace_cache.accesses
    for size in (1024, 2048, 4096, 8192, 16384, 32768):
        _, swept = ActiveMemory(image, cache_size=size).instrument().run()
        rate = 100.0 * swept.misses / max(total, 1)
        bar = "#" * max(1, int(rate * 20))
        print("  %6d B: %6d misses  %6.3f%% miss rate  %s"
              % (size, swept.misses, rate, bar))


if __name__ == "__main__":
    main(*(sys.argv[1:2] or ["matmul"]))
