"""Software fault isolation (sandboxing) by executable editing.

The paper's section 1 cites Wahbe et al.: modify code so it cannot
reference outside its protection domain.  This example sandboxes two
programs: a well-behaved one (unaffected) and one with a wild store
(caught before it lands).

Run:  python examples/sandbox.py
"""

from repro.asm import assemble
from repro.binfmt import link
from repro.sim import run_image
from repro.tools.sfi import Sandboxer
from repro.workloads import build_image

WILD = """
    .text
    .global _start
_start:
    mov 0, %l5
loop:
    set table, %l0
    sll %l5, 20, %l1       ! "row" stride of 1MB -- a scaled index bug
    add %l0, %l1, %l0
    st %l5, [%l0]          ! eventually leaves the data segment
    inc %l5
    set 4096, %l2
    cmp %l5, %l2
    bne loop
    nop
    clr %o0
    mov 1, %g1
    ta 0
    .bss
table: .space 64
"""


def main():
    print("1) sandboxing a well-behaved program (strings):")
    image = build_image("strings")
    baseline = run_image(image)
    tool = Sandboxer(image).instrument()
    simulator, violation = tool.run()
    assert violation is None and simulator.output == baseline.output
    print("   output unchanged; %d stores checked; %.2fx slowdown\n" % (
        tool.sites,
        simulator.instructions_executed / baseline.instructions_executed))

    print("2) sandboxing a buffer overrun:")
    wild_image = link([assemble(WILD, "sparc")])
    tool = Sandboxer(wild_image).instrument()
    simulator, violation = tool.run()
    if violation is not None:
        print("   protection fault: store to 0x%08x blocked after %d "
              "instructions" % (violation,
                                simulator.instructions_executed))
    else:
        print("   (program stayed inside its segments)")


if __name__ == "__main__":
    main()
