"""repro.fleet: routing, priority admission, gateway, hot-restart.

Unit tests cover the rendezvous ring and the two-class admission queue
(including the starvation bound) with no processes at all.  The
integration tests run a real in-process :class:`FleetGateway` whose
shards are real ``repro serve`` subprocesses — the same topology
``repro fleet`` runs — kept to two shards and short drains so the
suite stays fast on small machines.
"""

import os
import threading
import time

import pytest

from repro.fleet import (
    AdmissionQueue,
    FleetConfig,
    FleetGateway,
    content_key,
    preference,
    priority_class,
    route,
)
from repro.serve.client import ServeClient, ServeError


# ----------------------------------------------------------------------
# Rendezvous ring
# ----------------------------------------------------------------------

def test_preference_is_deterministic_and_complete():
    first = preference("workload:fib", 8)
    assert first == preference("workload:fib", 8)
    assert sorted(first) == list(range(8))


def test_route_failover_moves_only_the_dead_shards_keys():
    """Rendezvous property: removing one slot re-routes only the keys
    that lived there; every other key keeps its warm shard."""
    keys = ["workload:w%d" % i for i in range(64)]
    before = {key: route(key, 4) for key in keys}
    dead = 2
    live = {0, 1, 3}
    for key in keys:
        after = route(key, 4, live=live)
        if before[key] == dead:
            assert after != dead  # failed over
            assert after == preference(key, 4)[1]  # to its second choice
        else:
            assert after == before[key]  # undisturbed
    # And the keys snap back home once the shard returns.
    for key in keys:
        assert route(key, 4, live={0, 1, 2, 3}) == before[key]


def test_route_with_no_live_slots_is_none():
    assert route("workload:fib", 4, live=set()) is None


def test_content_key_affinity_forms():
    assert content_key("run", {"workload": "fib"}) == "workload:fib"
    key = content_key("disasm", {"image": "QUJD"})
    assert key is not None and key.startswith("image:")
    assert key == content_key("routines", {"image": "QUJD"})  # by content
    assert content_key("ping", {}) is None


# ----------------------------------------------------------------------
# Priority admission
# ----------------------------------------------------------------------

def test_priority_classes():
    assert priority_class("verify") == "bulk"
    for op in ("run", "disasm", "instrument", "routines", "ping"):
        assert priority_class(op) == "interactive"


def test_interactive_dispatches_ahead_of_bulk():
    q = AdmissionQueue(16)
    q.put("bulk-1", op="verify")
    q.put("fast-1", op="run")
    q.put("fast-2", op="disasm")
    assert q.get(0.1) == "fast-1"
    assert q.get(0.1) == "fast-2"
    assert q.get(0.1) == "bulk-1"


def test_starvation_bound_limits_priority_inversion():
    """While bulk work waits, at most ``starvation_limit`` interactive
    requests may dispatch before one bulk request must."""
    limit = 3
    q = AdmissionQueue(64, starvation_limit=limit)
    q.put("bulk", op="verify")
    for i in range(10):
        q.put("fast-%d" % i, op="run")
    order = [q.get(0.1) for _ in range(11)]
    assert order.index("bulk") == limit  # exactly the bound, not more
    # The streak only counts while bulk actually waits: with no bulk
    # queued, interactive work never yields a slot.
    q2 = AdmissionQueue(64, starvation_limit=1)
    for i in range(4):
        q2.put("fast-%d" % i, op="run")
    assert [q2.get(0.1) for _ in range(4)] == \
        ["fast-%d" % i for i in range(4)]


def test_admission_queue_is_bounded_and_control_bypasses():
    q = AdmissionQueue(2)
    assert q.put("a", op="run")
    assert q.put("b", op="verify")
    assert not q.put("c", op="run")  # full: the overloaded signal
    q.put_control("STOP")  # shutdown must never block on a full queue
    assert q.get(0.1) == "STOP"


def test_get_times_out_empty():
    q = AdmissionQueue(4)
    started = time.monotonic()
    assert q.get(0.05) is None
    assert time.monotonic() - started < 1.0


# ----------------------------------------------------------------------
# Gateway integration (real shard subprocesses)
# ----------------------------------------------------------------------

@pytest.fixture
def make_fleet(tmp_path):
    started = []

    def _make(**overrides):
        overrides.setdefault("address", str(tmp_path / "gw.sock"))
        overrides.setdefault("run_dir", str(tmp_path / "fleet"))
        overrides.setdefault("shards", 2)
        overrides.setdefault("shard_jobs", 1)
        overrides.setdefault("forwarders", 4)
        overrides.setdefault("health_interval_s", 0.2)
        overrides.setdefault("shard_timeout_s", 30.0)
        overrides.setdefault("drain_timeout_s", 10.0)
        gateway = FleetGateway(FleetConfig(**overrides)).start()
        started.append(gateway)
        return gateway

    try:
        yield _make
    finally:
        for gateway in started:
            gateway.request_drain()
        for gateway in started:
            assert gateway.wait_drained(30.0), "gateway failed to drain"


def _client(gateway, **kwargs):
    kwargs.setdefault("retries", 8)
    return ServeClient(gateway.config.address, **kwargs)


def test_gateway_roundtrip_affinity_and_telemetry(make_fleet, capsys):
    """One fleet, many assertions (spawning daemons is the slow part):
    protocol compatibility, shard affinity, stats/top shard tables,
    per-shard export labels, and `repro top` rendering."""
    gateway = make_fleet()
    with _client(gateway) as client:
        pong = client.ping()
        assert pong["pong"] is True
        assert pong["fleet"] == {"shards": 2, "live": 2}
        # Same content -> same shard, both times, reported in metadata.
        client.run_workload("fib")
        first = client.last_meta["shard"]
        client.run_workload("fib")
        assert client.last_meta["shard"] == first
        # A fleet answer always names its serving shard.
        assert client.last_meta["shard"] in (0, 1)
        stats = client.stats()
        report = stats["report"]
        shards = report["fleet"]["shards"]
        assert sorted(shards) == ["0", "1"]
        assert report["fleet"]["requests"] >= 3
        served = shards[str(first)]
        assert served["alive"] is True
        assert served["ok"] >= 2
        # Per-shard Prometheus labels from the same report.
        from repro.obs.export import prometheus_text

        text = prometheus_text(report)
        assert 'repro_fleet_shard_ok{shard="%d"}' % first in text
        assert 'repro_fleet_shard_alive{shard="0"} 1' in text
        assert 'repro_fleet_shard_alive{shard="1"} 1' in text
    # `repro top` renders the fleet header and the shard table.
    from repro import cli

    rc = cli.main(["top", "--socket", gateway.config.address])
    out = capsys.readouterr().out
    assert rc == 0
    assert "repro-fleet" in out
    assert "shards:" in out


def test_shard_death_reroutes_and_respawns(make_fleet):
    """Kill a shard process outright: requests keyed to it fail over to
    the surviving shard, and the manager respawns a new generation."""
    gateway = make_fleet()
    with _client(gateway) as client:
        client.run_workload("fib")
        victim_index = client.last_meta["shard"]
        victim = gateway.manager.slots[victim_index]
        generation = victim.generation
        victim.process.kill()
        victim.process.wait(10)
        # The same key keeps answering throughout: transport failure
        # reroutes to the live shard and/or lands on the respawn.
        for _ in range(3):
            assert client.run_workload("fib")["exit_code"] == 0
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if victim.alive and victim.generation > generation:
                break
            time.sleep(0.1)
        assert victim.generation > generation, "victim never respawned"
        # Warm keys survived the death gateway-side: the respawn was
        # pre-warmed from the slot's recent set.
        assert client.run_workload("fib")["exit_code"] == 0
    from repro.obs import metrics

    assert metrics.counter("fleet.shard_deaths").value >= 1
    assert metrics.counter("fleet.respawns").value >= 1


def test_hot_restart_zero_failed_requests(make_fleet):
    """The acceptance gate: a rolling replacement of every shard while
    clients hammer the fleet completes with zero failed requests."""
    gateway = make_fleet()
    stop = threading.Event()
    failures = []
    completed = []

    def hammer(index):
        try:
            with _client(gateway, retries=20) as client:
                while not stop.is_set():
                    result = client.run_workload("fib")
                    assert result["exit_code"] == 0
                    completed.append(client.last_meta["shard"])
        except Exception as error:  # noqa: BLE001 - any failure fails it
            failures.append((index, error))

    threads = [threading.Thread(target=hammer, args=(i,))
               for i in range(4)]
    for thread in threads:
        thread.start()
    time.sleep(0.5)  # traffic flowing before the restart begins
    generations = [slot.generation for slot in gateway.manager.slots]
    summaries = gateway.manager.rolling_restart()
    time.sleep(0.5)  # traffic flowing after it finishes
    stop.set()
    for thread in threads:
        thread.join(60)
    assert not failures, failures
    assert len(summaries) == 2
    for slot, old_generation in zip(gateway.manager.slots, generations):
        assert slot.generation == old_generation + 1
        assert slot.alive
    assert len(completed) >= 8, "hammer threads barely ran"
    from repro.obs import metrics

    assert metrics.counter("fleet.hot_restarts").value >= 2


def test_gateway_rejects_while_draining(make_fleet):
    gateway = make_fleet()
    with _client(gateway, retries=0) as client:
        assert client.ping()["pong"] is True
        gateway.request_drain()
        with pytest.raises(ServeError) as err:
            client.ping()
        assert err.value.code == "draining"
        assert err.value.retry_after is not None
    assert gateway.wait_drained(30.0)
    assert not os.path.exists(gateway.config.address)
