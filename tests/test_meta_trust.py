"""Adversarial tests of the verify-and-trust boundary (DESIGN.md §5l).

The contract: for every field of a ``repro.meta/1`` table there is a
lie, and every lie must either be *rejected* by the spot checks with
the right typed reason (falling back to full refinement) or — when it
is crafted to survive verification — be *caught downstream* by
manifest checking / differential co-simulation.  A lie that produces a
``clean`` classification is a silent wrong answer and a test failure.
"""

import dataclasses
import random

import pytest

from repro.binfmt.meta import attach_meta, extract_meta
from repro.binfmt.serialize import image_from_bytes, image_to_bytes
from repro.core import trust
from repro.core.executable import Executable
from repro.minic import GCC_LIKE, SUNPRO_LIKE
from repro.workloads import build_image

# interp with sunpro idioms: tail calls plus in-text dispatch tables —
# the richest structure the minic corpus produces.
_META_OPTIONS = SUNPRO_LIKE.named(emit_meta=True)


@pytest.fixture(scope="module")
def meta_image():
    return build_image("interp", _META_OPTIONS)


@pytest.fixture()
def meta(meta_image):
    return extract_meta(meta_image)


def _reason(meta_image, meta):
    """Run the verifier against a (possibly mutated) table; returns the
    typed reject reason, or None when the table is trusted."""
    rejection = trust.verify_meta(Executable(meta_image), meta)
    return rejection if rejection is None else rejection[0]


def _with_routine(meta, index, **changes):
    routines = list(meta.routines)
    routines[index] = dataclasses.replace(routines[index], **changes)
    return dataclasses.replace(meta, routines=tuple(routines))


def _with_table(meta, index, **changes):
    tables = list(meta.tables)
    tables[index] = dataclasses.replace(tables[index], **changes)
    return dataclasses.replace(meta, tables=tuple(tables))


# ----------------------------------------------------------------------
# The honest table
# ----------------------------------------------------------------------

def test_honest_table_is_trusted(meta_image, meta):
    assert meta.tables, "fixture must exercise dispatch claims"
    assert _reason(meta_image, meta) is None


def test_trusted_hydration_matches_discovery(meta_image, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    trusted = Executable(meta_image).read_contents(trust_meta=True)
    assert trusted.meta_status == ("trusted", None)
    assert trusted.analysis_provenance == "metadata"
    discovered = Executable(meta_image).read_contents(trust_meta=False)
    assert discovered.meta_status == ("disabled", None)
    assert discovered.analysis_provenance == "discovery"

    def identities(executable):
        return sorted((r.name, r.start, r.end, tuple(r.entries), r.hidden)
                      for r in executable.all_routines())

    assert identities(trusted) == identities(discovered)


# ----------------------------------------------------------------------
# Lies the spot checks must reject, each with its typed reason
# ----------------------------------------------------------------------

def test_stale_text_hash(meta_image, meta):
    digest = bytearray(meta.text_sha256)
    digest[7] ^= 0xFF
    lied = dataclasses.replace(meta, text_sha256=bytes(digest))
    assert _reason(meta_image, lied) == "text-hash"


def test_wrong_text_binding(meta_image, meta):
    lied = dataclasses.replace(meta, text_size=meta.text_size + 4)
    assert _reason(meta_image, lied) == "text-hash"


def test_shifted_extent(meta_image, meta):
    # Growing an extent one word overlaps the next routine (or leaves
    # .text at the end) — an extent lie either way.
    for index in range(len(meta.routines)):
        lied = _with_routine(meta, index,
                             end=meta.routines[index].end + 4)
        assert _reason(meta_image, lied) == "extent", \
            "extent lie on %s not rejected" % meta.routines[index].name


def test_duplicate_routine_name(meta_image, meta):
    lied = _with_routine(meta, 1, name=meta.routines[0].name)
    assert _reason(meta_image, lied) == "extent"


def test_misaligned_extent(meta_image, meta):
    lied = _with_routine(meta, 0, start=meta.routines[0].start + 2)
    assert _reason(meta_image, lied) == "extent"


def test_unsorted_entries(meta_image, meta):
    victim = meta.routines[0]
    lied = _with_routine(meta, 0,
                         entries=victim.entries + (victim.start,))
    assert _reason(meta_image, lied) == "entry"


def test_entry_outside_extent(meta_image, meta):
    victim = meta.routines[0]
    lied = _with_routine(meta, 0, entries=victim.entries + (victim.end,))
    assert _reason(meta_image, lied) == "entry"


def test_entry_inside_dispatch_table(meta_image, meta):
    # A claimed entry sitting inside a claimed in-text table: both
    # claims pass their local checks; the cross-check rejects.
    table = next(t for t in meta.tables if t.in_text)
    index, owner = next(
        (i, r) for i, r in enumerate(meta.routines)
        if r.start <= table.addr and table.end <= r.end)
    lied = _with_routine(meta, index,
                         entries=owner.entries + (table.addr,))
    assert _reason(meta_image, lied) == "dispatch"


def test_dispatch_outside_any_routine(meta_image, meta):
    # Move an in-text table so it straddles a routine boundary.
    boundary = meta.routines[1].start
    lied = _with_table(meta, 0, addr=boundary - 4, count=2, in_text=True)
    assert _reason(meta_image, lied) == "dispatch"


def test_dispatch_in_text_flag_lie(meta_image, meta):
    index = next(i for i, t in enumerate(meta.tables) if t.in_text)
    lied = _with_table(meta, index, in_text=False)
    assert _reason(meta_image, lied) == "dispatch"


def test_dispatch_overlapping_island(meta_image, meta):
    # Claim an island over non-entry text, then a table on top of it.
    table = next(t for t in meta.tables if t.in_text)
    lied = dataclasses.replace(
        meta, islands=meta.islands + ((table.addr, table.end),))
    assert _reason(meta_image, lied) == "dispatch"


def test_inflated_table_count(meta_image, meta):
    # Stretch a table to its containing routine's end and one word
    # past: no longer inside exactly one routine extent.
    table = next(t for t in meta.tables if t.in_text)
    index = meta.tables.index(table)
    owner = next(r for r in meta.routines
                 if r.start <= table.addr and table.end <= r.end)
    lied = _with_table(meta, index,
                       count=(owner.end - table.addr) // 4 + 1)
    assert _reason(meta_image, lied) == "dispatch"


def test_island_covering_entry(meta_image, meta):
    victim = meta.routines[2]
    lied = dataclasses.replace(
        meta, islands=meta.islands + ((victim.start, victim.start + 4),))
    assert _reason(meta_image, lied) == "island"


def test_misaligned_island(meta_image, meta):
    victim = meta.routines[2]
    lied = dataclasses.replace(
        meta, islands=meta.islands + ((victim.start + 6,
                                       victim.start + 10),))
    assert _reason(meta_image, lied) == "island"


def test_probe_rejects_table_over_instructions(meta_image, meta):
    # Point a table at instruction words (not slot addresses): sampled
    # slots fail to hold aligned in-text targets.
    table = next(t for t in meta.tables if t.in_text)
    index = meta.tables.index(table)
    owner = next(r for r in meta.routines
                 if r.start <= table.addr and table.end <= r.end)
    lied = _with_table(meta, index, addr=owner.start + 4,
                       count=min(table.count, 2))
    assert _reason(meta_image, lied) in ("probe", "dispatch")


def test_invented_delay_cti(meta_image, meta):
    # A routine's first word is never a delay slot within its extent.
    lied = dataclasses.replace(
        meta, delay_ctis=tuple(sorted(
            meta.delay_ctis + (meta.routines[0].start,))))
    assert _reason(meta_image, lied) == "cti"


# ----------------------------------------------------------------------
# The fallback path: rejection must degrade, not break
# ----------------------------------------------------------------------

def test_rejected_table_falls_back_to_refinement(meta_image, meta,
                                                 monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    digest = bytearray(meta.text_sha256)
    digest[0] ^= 1
    lied = dataclasses.replace(meta, text_sha256=bytes(digest))
    # build_image memoizes; mutate a deep copy, not the shared fixture.
    image = image_from_bytes(image_to_bytes(meta_image))
    attach_meta(image, lied)
    executable = Executable(image).read_contents(trust_meta=True)
    assert executable.meta_status == ("rejected", "text-hash")
    assert executable.analysis_provenance == "discovery"
    honest = Executable(meta_image).read_contents(trust_meta=False)
    assert sorted(r.name for r in executable.all_routines()) \
        == sorted(r.name for r in honest.all_routines())


def test_garbage_section_is_format_reject(meta_image, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    image = image_from_bytes(image_to_bytes(meta_image))
    image.get_section(".eel.meta").data = bytearray(b"EELMgarbage")
    executable = Executable(image).read_contents(trust_meta=True)
    assert executable.meta_status == ("rejected", "format")
    assert executable.analysis_provenance == "discovery"


# ----------------------------------------------------------------------
# Lies against fuzz ground truth: reject-or-caught, never silent
# ----------------------------------------------------------------------

def _program_with(predicate, limit=40):
    from repro.fuzz.gen import GenConfig, generate

    for seed in range(limit):
        program = generate(seed, GenConfig(arch="sparc"))
        if predicate(program):
            return program
    raise AssertionError("no generated program matched within %d seeds"
                         % limit)


def _classify_with_lie(program, mutate, monkeypatch):
    from repro.fuzz.campaign import classify_plan
    from repro.fuzz.meta import meta_from_manifest

    monkeypatch.setenv("REPRO_CACHE", "off")
    meta = mutate(meta_from_manifest(program.manifest, program.image))
    attach_meta(program.image, meta)
    executable = Executable(program.image).read_contents(trust_meta=True)
    if executable.meta_status[0] == "rejected":
        return "meta-reject:%s" % executable.meta_status[1]
    # The lie survived verification: the classification pipeline
    # (manifest check + differential verify) must flag it instead.
    status, _detail = classify_plan(program.plan, meta_mode="corrupt")
    return status


def test_dropped_delay_cti_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    from repro.fuzz.meta import meta_from_manifest

    program = _program_with(
        lambda p: any(t["kind"] == "cti-slot"
                      for r in p.manifest["routines"]
                      for t in r["transfers"]))
    meta = meta_from_manifest(program.manifest, program.image)
    assert meta.delay_ctis
    lied = dataclasses.replace(meta, delay_ctis=meta.delay_ctis[1:])
    attach_meta(program.image, lied)
    executable = Executable(program.image).read_contents(trust_meta=True)
    assert executable.meta_status == ("rejected", "cti")
    assert "missing" in executable.meta_reject_detail


def test_dropped_routine_never_silent(monkeypatch):
    from repro.fuzz.meta import _mut_drop_routine

    program = _program_with(lambda p: len(p.manifest["routines"]) >= 2)
    status = _classify_with_lie(
        program, lambda m: _mut_drop_routine(m, random.Random(0)),
        monkeypatch)
    assert status != "clean"


def test_flipped_hidden_never_silent(monkeypatch):
    from repro.fuzz.meta import _mut_flip_hidden

    program = _program_with(lambda p: p.manifest["routines"])
    status = _classify_with_lie(
        program, lambda m: _mut_flip_hidden(m, random.Random(0)),
        monkeypatch)
    assert status != "clean"


def test_corruption_campaign_reject_or_caught(monkeypatch):
    """The seeded adversary over a dozen seeds: every corrupted table
    is rejected or caught downstream; zero silent lies."""
    monkeypatch.setenv("REPRO_CACHE", "off")
    from repro.fuzz.campaign import run_meta_corruption_campaign

    result = run_meta_corruption_campaign(12, base_seed=0, jobs=2)
    assert result.ok, result.render()
    assert not result.silent
    assert result.rejected, "adversary never tripped the verifier"
