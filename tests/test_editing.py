"""Editing and layout: identity transforms, snippets, deletion, the
address map, trampolines, dispatch-table rewriting, runtime translation."""

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.core import Executable
from repro.minic import GCC_LIKE, SUNPRO_LIKE, compile_to_image
from repro.sim import run_image
from repro.tools.common import CounterArray, counter_snippet
from repro.workloads import build_image, build_mips_image, expected_output


def identity_edit(image):
    exe = Executable(image).read_contents()
    for routine in exe.all_routines():
        routine.produce_edited_routine()
    out = exe.edited_image()
    out.entry = exe.edited_addr(exe.start_address())
    return exe, out


@pytest.mark.parametrize("name", ["fib", "interp", "qsort", "tailcalls"])
def test_identity_transform_gcc(name):
    image = build_image(name)
    _, out = identity_edit(image)
    simulator = run_image(out)
    assert simulator.output == expected_output(name)
    assert simulator.exit_code == 0


@pytest.mark.parametrize("name", ["interp", "tailcalls", "tree"])
def test_identity_transform_sunpro(name):
    image = build_image(name, SUNPRO_LIKE)
    _, out = identity_edit(image)
    assert run_image(out).output == expected_output(name)


@pytest.mark.parametrize("name", ["mips_fib", "mips_switch"])
def test_identity_transform_mips(name):
    from repro.workloads.mips_programs import MIPS_PROGRAMS

    image = build_mips_image(name)
    _, out = identity_edit(image)
    assert run_image(out).output == MIPS_PROGRAMS[name][1]


def test_identity_same_instruction_count():
    """Re-folding keeps unedited code from growing (section 3.3)."""
    image = build_image("fib")
    baseline = run_image(image)
    _, out = identity_edit(image)
    edited_run = run_image(out)
    assert edited_run.instructions_executed == baseline.instructions_executed


def test_edited_addr_maps_entry():
    image = build_image("fib")
    exe, out = identity_edit(image)
    new_entry = exe.edited_addr(exe.start_address())
    assert new_entry != exe.start_address()
    assert out.section_at(new_entry).name == ".text.edited"


def test_unedited_address_maps_to_itself():
    image = build_image("fib")
    exe = Executable(image).read_contents()
    exe.routine("main").produce_edited_routine()
    # fib was not edited: its address is unchanged.
    fib = exe.routine("fib")
    assert exe.edited_addr(fib.start) == fib.start


def test_trampoline_installed_at_original_entry():
    image = build_image("fib")
    exe, out = identity_edit(image)
    fib = exe.routine("fib")
    from repro.isa import get_codec

    codec = get_codec("sparc")
    word = out.get_section(".text").word_at(fib.start)
    inst = codec.decode(word)
    assert inst.category.value == "branch" and inst.cond == "a"
    assert codec.control_target(inst, fib.start) == exe.edited_addr(fib.start)


def test_edit_after_finalize_rejected():
    from repro.core.executable import ExecutableError

    image = build_image("fib")
    exe = Executable(image).read_contents()
    exe.routine("fib").produce_edited_routine()
    exe.edited_addr(exe.start_address())
    with pytest.raises(ExecutableError):
        exe.routine("main").produce_edited_routine()


def test_write_and_reload_edited_executable(tmp_path):
    image = build_image("fib")
    exe = Executable(image).read_contents()
    for routine in exe.all_routines():
        routine.produce_edited_routine()
    path = str(tmp_path / "fib.edited")
    entry = exe.edited_addr(exe.start_address())
    exe.write_edited_executable(path, entry)
    from repro.binfmt import read_image

    reloaded = read_image(path)
    assert run_image(reloaded).output == expected_output("fib")


def test_block_snippet_executes():
    image = build_image("fib")
    exe = Executable(image).read_contents()
    counters = CounterArray(exe, "__test_counts")
    index = counters.allocate("fib head")
    fib = exe.routine("fib")
    cfg = fib.control_flow_graph()
    head = cfg.block_at[fib.start]
    head.add_code_before(0, counter_snippet(exe,
                                            counters.address(index)))
    for routine in exe.all_routines():
        routine.produce_edited_routine()
    out = exe.edited_image()
    out.entry = exe.edited_addr(exe.start_address())
    simulator = run_image(out)
    assert simulator.output == expected_output("fib")
    counts = counters.read(simulator)
    assert counts[0] == 5167  # fib(17) makes 5167 calls


def test_delete_instruction():
    source = """
    int main(void) {
        print_int(1);
        print_int(2);
        return 0;
    }
    """
    image = compile_to_image(source)
    exe = Executable(image).read_contents()
    cfg = exe.routine("main").control_flow_graph()
    # Delete the `mov 2, ...` that feeds the second print: find it.
    deleted = False
    for block in cfg.normal_blocks():
        for index, (addr, inst) in enumerate(block.instructions):
            if inst.name == "or" and inst.has_field("simm13") \
                    and inst.field("simm13") == 2 \
                    and inst.field("rs1") == 0:
                block.delete_instruction(index)
                deleted = True
                break
        if deleted:
            break
    assert deleted
    for routine in exe.all_routines():
        routine.produce_edited_routine()
    out = exe.edited_image()
    out.entry = exe.edited_addr(exe.start_address())
    output = run_image(out).output
    # The register keeps its previous value (print_int's return, 0),
    # so the second call prints 0 instead of 2.
    assert output == "10"


def test_edge_snippet_on_taken_edge_only():
    source = """
    int main(void) {
        int i;
        for (i = 0; i < 5; i = i + 1) { }
        return 0;
    }
    """
    image = compile_to_image(source)
    exe = Executable(image).read_contents()
    counters = CounterArray(exe, "__test_counts")
    cfg = exe.routine("main").control_flow_graph()
    edges = []
    for block in cfg.normal_blocks():
        last = block.last_instruction
        if last is not None and last.is_branch and last.is_conditional:
            taken = block.taken_edge()
            fall = block.fall_edge()
            t = counters.allocate("taken")
            f = counters.allocate("fall")
            taken.add_code_along(counter_snippet(exe, counters.address(t)))
            fall.add_code_along(counter_snippet(exe, counters.address(f)))
            edges.append((t, f))
    assert edges
    for routine in exe.all_routines():
        routine.produce_edited_routine()
    out = exe.edited_image()
    out.entry = exe.edited_addr(exe.start_address())
    simulator = run_image(out)
    values = counters.read(simulator)
    total_taken = sum(values[t] for t, _ in edges)
    total_fall = sum(values[f] for _, f in edges)
    # The loop condition is tested 6 times: 5 iterations one way, 1 exit.
    assert total_taken + total_fall == 6


def test_dispatch_table_edges_with_snippets():
    image = build_image("interp")
    exe = Executable(image).read_contents()
    counters = CounterArray(exe, "__test_counts")
    cfg = exe.routine("step").control_flow_graph()
    computed = [e for e in cfg.all_edges() if e.kind == "computed"]
    assert computed
    indices = []
    for edge in computed:
        index = counters.allocate(("case", edge.dst.start))
        indices.append(index)
        edge.add_code_along(counter_snippet(exe, counters.address(index)))
    for routine in exe.all_routines():
        routine.produce_edited_routine()
    out = exe.edited_image()
    out.entry = exe.edited_addr(exe.start_address())
    simulator = run_image(out)
    assert simulator.output == expected_output("interp")
    values = counters.read(simulator)
    # The interpreter executes 62 bytecodes in total through the table.
    assert sum(values[i] for i in indices) > 0


def test_tail_call_literal_patched():
    image = build_image("tailcalls", SUNPRO_LIKE)
    exe, out = identity_edit(image)
    assert run_image(out).output == expected_output("tailcalls")


OPAQUE_JUMP = """
    .text
    .global _start
_start:
    set slot, %l0
    set target, %l1
    st %l1, [%l0]
    ld [%l0], %l2
    jmp %l2
    nop
target:
    mov 7, %o0
    mov 2, %g1
    ta 0
    clr %o0
    mov 1, %g1
    ta 0
    .data
slot: .word 0
"""


def test_runtime_translation_fallback():
    """An unanalyzable indirect jump still works in the edited program,
    through the original->edited translation table (section 3.3)."""
    image = link([assemble(OPAQUE_JUMP, "sparc")])
    assert run_image(image).output == "7"
    exe, out = identity_edit(image)
    assert out.has_section("__eel_translation")
    assert run_image(out).output == "7"


# ----------------------------------------------------------------------
# Long-branch relaxation (jump-span overflow becomes a stub, not an error)
# ----------------------------------------------------------------------

def _far_edit(image, routine_name, base=0x2000_0000):
    """Edit one routine with the new-text region far from the original
    text, so short direct jumps back and forth are out of span."""
    from repro.core import Executable as _Executable

    exe = _Executable(image).read_contents()
    exe._new_text_base = base
    exe._added_cursor = base
    exe.routine(routine_name).produce_edited_routine()
    return exe, exe.edited_image()


def test_long_trampoline_sparc_far_text():
    from repro.isa import get_codec
    from repro.obs import metrics

    before = metrics.counter("layout.long_branches").value
    image = build_image("fib")
    exe, out = _far_edit(image, "fib")
    # The edited program still runs correctly through the stub.
    simulator = run_image(out)
    assert simulator.output == expected_output("fib")
    assert simulator.exit_code == 0
    assert metrics.counter("layout.long_branches").value > before
    # The trampoline at fib's original entry is the multi-word
    # sethi/jmpl long form (a disp22 branch cannot reach 0x20000000).
    codec = get_codec("sparc")
    fib = exe.routine("fib")
    text = out.get_section(".text")
    assert codec.decode(text.word_at(fib.start)).name == "sethi"
    assert codec.decode(text.word_at(fib.start + 4)).name == "jmpl"


def test_long_trampoline_mips_far_region():
    from repro.isa import get_codec
    from repro.workloads.mips_programs import MIPS_PROGRAMS

    image = build_mips_image("mips_fib")
    # 0x20000000 is outside the j instruction's 256MB region.
    exe, out = _far_edit(image, "fib")
    simulator = run_image(out)
    assert simulator.output == MIPS_PROGRAMS["mips_fib"][1]
    codec = get_codec("mips")
    fib = exe.routine("fib")
    text = out.get_section(".text")
    assert codec.decode(text.word_at(fib.start)).name == "lui"
    names = {codec.decode(text.word_at(fib.start + 4 * i)).name
             for i in range(3)}
    assert "jr" in names


def test_jump_item_relaxed_to_long_form():
    """A jump/jumpxfer item whose target is out of direct span grows to
    the long stub during placement instead of raising LayoutError."""
    from repro.core import Executable as _Executable
    from repro.core.layout import Item
    from repro.obs import metrics

    image = build_image("fib")
    exe = _Executable(image).read_contents()
    exe._new_text_base = 0x2000_0000
    exe._added_cursor = exe._new_text_base
    fib = exe.routine("fib")
    fib.produce_edited_routine()
    # Synthetic escape back to unedited main: from 0x20000000 this is
    # far outside the ±8MB disp22 span.
    main_start = exe.routine("main").start
    fib.edited.items.append(Item("jumpxfer", orig_target=main_start))
    before = metrics.counter("layout.long_branches").value
    out = exe.edited_image()
    assert metrics.counter("layout.long_branches").value >= before + 2
    # The appended item is dead code; the program still runs.
    simulator = run_image(out)
    assert simulator.output == expected_output("fib")
