"""Differential verification engine: lints, cosim, fault injection."""

import pytest

from repro.sim.machine import (SimulationError, SimulationTimeout, Simulator,
                               run_image)
from repro.verify import (VerifyResult, corpus_names, instrument_workload,
                          verify_session, verify_workload)
from repro.verify.context import Finding, VerifyContext
from repro.verify.inject import inject_stale_dispatch_entry, run_fault_suite
from repro.verify.lints import run_lints
from repro.workloads import builder


@pytest.fixture(scope="module")
def fib_session():
    return instrument_workload("fib")


@pytest.fixture(scope="module")
def fib_suite(fib_session):
    executable, _, _ = fib_session
    return run_fault_suite(executable)


# ----------------------------------------------------------------------
# Clean edits pass
# ----------------------------------------------------------------------

def test_qpt_fib_verifies_clean(fib_session):
    executable, edited_image, configure = fib_session
    result = verify_session(executable, edited_image, use_memo=False,
                            configure_edited=configure, label="fib[qpt]")
    assert result.ok
    assert result.findings == []
    assert result.syncs > 1000
    assert "PASS" in result.render()


def test_qpt_dispatch_table_workload_verifies_clean():
    # interp's bytecode loop dispatches through a rewritten jump table.
    result = verify_workload("interp", use_memo=False)
    assert result.ok, result.render()
    assert result.syncs > 0


def test_qpt_retained_text_workload_verifies_clean():
    # mips_switch dispatches through a rewritten MIPS jump table
    # (lw off(base+scaled) now folds to a table in the evaluator).
    result = verify_workload("mips_switch", use_memo=False)
    assert result.ok, result.render()


def test_sfi_verifies_clean():
    result = verify_workload("fib", tool="sfi", use_memo=False)
    assert result.ok, result.render()


def test_elsie_verifies_clean():
    result = verify_workload("fib", tool="elsie", use_memo=False)
    assert result.ok, result.render()


def test_corpus_names_cover_both_architectures():
    names = corpus_names()
    assert "fib" in names and "mips_fib" in names
    with pytest.raises(ValueError):
        verify_workload("nonesuch")
    with pytest.raises(ValueError):
        instrument_workload("mips_fib", tool="sfi")  # sparc-only tool


# ----------------------------------------------------------------------
# Structural lints and placement provenance
# ----------------------------------------------------------------------

def test_lints_clean_on_instrumented_image(fib_session):
    executable, edited_image, _ = fib_session
    context = VerifyContext(executable, edited_image)
    assert run_lints(context) == []


def test_placement_reconstructs_edit_provenance(fib_session):
    executable, edited_image, _ = fib_session
    context = VerifyContext(executable, edited_image)
    placement = context.placement
    assert placement.entries, "instrumented image has placed items"
    snippets = list(placement.snippets())
    assert snippets, "qpt placed counter snippets"
    placed = snippets[0]
    assert placed.routine
    covering = placement.covering(placed.start)
    assert covering is placed
    assert "snippet" in placed.describe()


def test_finding_renders_provenance():
    finding = Finding("stale-dispatch-entry", "points at 0x10f0",
                      routine="interp", block=0x1040, addr=0x2040)
    text = str(finding)
    assert "stale-dispatch-entry" in text
    assert "interp" in text and "0x1040" in text and "0x2040" in text


# ----------------------------------------------------------------------
# Fault injection: every corruption class is detected with provenance
# ----------------------------------------------------------------------

def test_fault_suite_detects_all_classes(fib_suite):
    assert len(fib_suite) >= 4
    for cls, outcome in fib_suite.items():
        assert outcome["detected"], "%s went undetected" % cls
        assert outcome["by"] in ("lints", "cosim")


def test_fault_suite_reports_carry_provenance(fib_suite):
    details = fib_suite["corrupt-word"]["details"]
    assert details["routine"]
    assert isinstance(details["addr"], int)
    assert "invalid-word" in fib_suite["corrupt-word"]["report"]


def test_cosim_divergence_report_is_minimized(fib_suite):
    outcome = fib_suite["clobber-live-register"]
    assert outcome["by"] == "cosim"
    assert "first divergent pc pair" in outcome["report"]
    assert outcome["details"]["register"]


def test_stale_dispatch_entry_detected_on_table_workload():
    executable, _, _ = instrument_workload("interp")
    context = VerifyContext(executable)
    image, info = inject_stale_dispatch_entry(context)
    findings = run_lints(VerifyContext(executable, image))
    assert any(f.code == "stale-dispatch-entry" for f in findings)
    assert info["routine"]


def test_mips_fault_suite():
    executable, _, _ = instrument_workload("mips_sum")
    suite = run_fault_suite(executable)
    detected = [cls for cls, outcome in suite.items() if outcome["detected"]]
    assert "corrupt-word" in detected
    assert "clobber-live-register" in detected


# ----------------------------------------------------------------------
# Simulator support: distinct timeout, run_until
# ----------------------------------------------------------------------

def test_simulation_timeout_carries_pc_and_steps():
    image = builder.build_image("fib")
    with pytest.raises(SimulationTimeout) as info:
        run_image(image, max_steps=10)
    assert info.value.steps == 10
    assert isinstance(info.value.pc, int)
    assert "10 steps" in str(info.value)
    assert isinstance(info.value, SimulationError)


def test_run_until_stops_at_sync_point():
    image = builder.build_image("fib")
    simulator = Simulator(image)
    target = image.entry + 4  # the first instruction's delay slot
    steps = simulator.cpu.run_until({target}, 1000)
    assert simulator.cpu.pc == target
    assert steps == 1
    with pytest.raises(SimulationTimeout):
        simulator.cpu.run_until({0xDEAD0000}, 50)


# ----------------------------------------------------------------------
# Memoized verdicts
# ----------------------------------------------------------------------

def test_clean_verdict_is_memoized(fib_session, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    executable, edited_image, _ = fib_session
    first = verify_session(executable, edited_image, label="memo")
    assert first.ok
    second = verify_session(executable, edited_image, label="memo")
    assert second.ok and second.memoized
    assert "memoized" in second.render()
    third = verify_session(executable, edited_image, label="memo",
                           use_memo=False)
    assert third.ok and not third.memoized


def test_memoized_result_shape():
    result = VerifyResult("x", memoized=True)
    assert result.ok and result.syncs == 0 and result.errors == []
