"""Delay-slot scheduling peephole: transformations and behavior."""

from repro.minic import GCC_LIKE, compile_to_assembly, compile_to_image
from repro.minic.schedule import ScheduleStats
from repro.sim import run_image

SOURCE = """
int total;

int accumulate(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        if (i & 1) {
            total = total + i;
        } else {
            total = total - 1;
        }
    }
    return total;
}

int main(void) {
    total = 0;
    print_int(accumulate(10));
    return 0;
}
"""


def _expected():
    image = compile_to_image(SOURCE, GCC_LIKE.named(
        fill_delay_slots=False, annul_branches=False))
    return run_image(image).output


def test_scheduling_preserves_behavior():
    expected = _expected()
    for fill, annul in ((True, False), (False, True), (True, True)):
        options = GCC_LIKE.named(fill_delay_slots=fill,
                                 annul_branches=annul)
        assert run_image(compile_to_image(SOURCE, options)).output \
            == expected


# A source whose branch targets begin with one-word loads, so the
# annulled-branch fill applies (compare with SOURCE, whose targets start
# with two-word `set` pseudos that cannot move into a delay slot).
FIBLIKE = """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main(void) { print_int(fib(10)); return 0; }
"""


def test_annul_fill_produces_annulled_branches():
    stats = ScheduleStats()
    text, _ = compile_to_assembly(FIBLIKE, GCC_LIKE, stats=stats)
    assert stats.branch_slots_annulled > 0
    assert ",a " in text


def test_annul_fill_preserves_behavior():
    for annul in (False, True):
        options = GCC_LIKE.named(annul_branches=annul)
        image = compile_to_image(FIBLIKE, options)
        assert run_image(image).output == "55"


def test_call_fill_moves_argument_setup():
    stats = ScheduleStats()
    compile_to_assembly(SOURCE, GCC_LIKE, stats=stats)
    assert stats.call_slots_filled > 0


def test_no_scheduling_leaves_nops():
    text, _ = compile_to_assembly(SOURCE, GCC_LIKE.named(
        fill_delay_slots=False, annul_branches=False))
    assert ",a " not in text


def test_scheduling_reduces_nop_count():
    relaxed, _ = compile_to_assembly(SOURCE, GCC_LIKE.named(
        fill_delay_slots=False, annul_branches=False))
    tight, _ = compile_to_assembly(SOURCE, GCC_LIKE)
    count = lambda text: sum(1 for line in text.splitlines()
                             if line.strip() == "nop")
    assert count(tight) < count(relaxed)
