"""Edit-serving daemon: protocol, lifecycle, backpressure, resilience.

The in-process tests run a real :class:`EditServer` (real socket, real
worker threads) against temp-dir sockets; the SIGTERM drain test runs
the actual ``repro serve`` CLI in a subprocess, because signal-driven
drain is exactly the part that cannot be faked in-process.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.obs import metrics
from repro.serve import EditServer, ServeConfig
from repro.serve.client import ServeClient, ServeError, wait_for_daemon
from repro.serve import protocol

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _counter(name):
    return metrics.counter(name).value


@pytest.fixture
def make_server(tmp_path):
    """Start real in-process servers; drain them all at teardown."""
    from repro.cache import disable_memory_layer
    from repro.cache.parallel import suppress_pools

    started = []

    def _make(**overrides):
        overrides.setdefault("socket_path",
                             str(tmp_path / ("s%d.sock" % len(started))))
        overrides.setdefault("jobs", 2)
        overrides.setdefault("timeout_s", 20.0)
        overrides.setdefault("drain_timeout_s", 10.0)
        server = EditServer(ServeConfig(**overrides)).start()
        started.append(server)
        return server

    try:
        yield _make
    finally:
        for server in started:
            server.request_drain()
        for server in started:
            assert server.wait_drained(15.0), "server failed to drain"
        # The daemon flips process-global switches; un-flip for the
        # rest of the suite.
        disable_memory_layer()
        suppress_pools(False)


def _client(server, **kwargs):
    kwargs.setdefault("retries", 0)
    return ServeClient(server.config.socket_path, **kwargs)


# ----------------------------------------------------------------------
# Protocol framing
# ----------------------------------------------------------------------

def test_line_reader_reassembles_split_messages():
    left, right = socket.socketpair()
    reader = protocol.LineReader(right)
    payload = protocol.encode({"id": 1, "op": "ping"})
    left.sendall(payload[:5])
    left.sendall(payload[5:] + b'{"id": 2, "op"')
    left.sendall(b': "stats"}\n')
    left.close()
    assert reader.next_message() == {"id": 1, "op": "ping"}
    assert reader.next_message() == {"id": 2, "op": "stats"}
    assert reader.next_message() is None


def test_line_reader_rejects_garbage_and_non_objects():
    for line in (b"not json\n", b"[1, 2]\n"):
        left, right = socket.socketpair()
        left.sendall(line)
        left.close()
        with pytest.raises(protocol.ProtocolError):
            protocol.LineReader(right).next_message()


def test_line_reader_caps_line_length():
    left, right = socket.socketpair()
    reader = protocol.LineReader(right, max_line=64)
    threading.Thread(target=left.sendall,
                     args=(b"x" * 4096,), daemon=True).start()
    with pytest.raises(protocol.ProtocolError):
        reader.next_message()


# ----------------------------------------------------------------------
# Defensive REPRO_SERVE_* parsing
# ----------------------------------------------------------------------

def test_malformed_serve_env_falls_back_with_warning(monkeypatch, capsys):
    from repro import env as repro_env

    monkeypatch.setenv("REPRO_SERVE_QUEUE", "1e3")
    monkeypatch.setenv("REPRO_SERVE_TIMEOUT", "lots")
    monkeypatch.setenv("REPRO_SERVE_JOBS", "-4")
    for name in ("REPRO_SERVE_QUEUE", "REPRO_SERVE_TIMEOUT",
                 "REPRO_SERVE_JOBS"):
        repro_env._WARNED.discard(name)
    config = ServeConfig()
    assert config.queue_size == 32
    assert config.timeout_s == 60.0
    assert config.jobs == 2
    warnings = capsys.readouterr().err
    for name in ("REPRO_SERVE_QUEUE", "REPRO_SERVE_TIMEOUT",
                 "REPRO_SERVE_JOBS"):
        assert name in warnings


# ----------------------------------------------------------------------
# Basic service and concurrency
# ----------------------------------------------------------------------

def test_ping_run_and_stats_roundtrip(make_server):
    server = make_server()
    with _client(server) as client:
        assert client.ping()["pong"] is True
        result = client.run_workload("fib")
        assert result["exit_code"] == 0
        assert result["output"] == "fib 1597\n"
        stats = client.stats()
        assert stats["report"]["serve"]["requests"] >= 2
        assert stats["server"]["degraded"] is False


def test_unknown_op_and_unknown_workload_are_clean_errors(make_server):
    server = make_server()
    with _client(server) as client:
        with pytest.raises(ServeError) as err:
            client.request("frobnicate")
        assert err.value.code == protocol.E_UNKNOWN_OP
        with pytest.raises(ServeError) as err:
            client.request("run", workload="no_such_program")
        assert err.value.code == protocol.E_BAD_REQUEST


def test_eight_concurrent_clients_zero_dropped(make_server):
    """The acceptance scenario: 8 clients mixing SPARC and MIPS
    workloads with qpt-instrument and verify requests; every request
    answers, none are dropped."""
    server = make_server(jobs=4, queue_size=16)
    workloads = ["fib", "mips_sum"]
    failures = []
    results = []

    def one_client(index):
        name = workloads[index % len(workloads)]
        try:
            with _client(server, retries=8) as client:
                run = client.run_workload(name)
                verify = client.request("verify", workload=name,
                                        tool="qpt")
                results.append((run["exit_code"], verify["ok"]))
        except Exception as error:  # noqa: BLE001 - recorded for assert
            failures.append((index, error))

    threads = [threading.Thread(target=one_client, args=(i,))
               for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
    assert not failures, failures
    assert len(results) == 8
    assert all(code == 0 and ok for code, ok in results)


def test_concurrent_same_image_requests_coalesce(make_server, monkeypatch,
                                                 tmp_path):
    """Concurrent requests against one content hash share a single cold
    analysis; the rest restore from the warm summary it left behind."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "fresh-cache"))
    server = make_server(jobs=4)
    before = _counter("serve.coalesced")
    errors = []

    def ask_routines():
        try:
            with _client(server) as client:
                result = client.request("routines", workload="interp")
                assert len(result["routines"]) > 10
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=ask_routines) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert not errors, errors
    assert _counter("serve.coalesced") > before


# ----------------------------------------------------------------------
# Backpressure, timeout, retry
# ----------------------------------------------------------------------

def test_queue_full_rejects_with_retry_after(make_server):
    server = make_server(jobs=1, queue_size=1, chaos=True,
                         retry_after_s=0.05)
    blockers = []

    def blocker():
        with _client(server) as client:
            blockers.append(client.request("chaos", kind="sleep",
                                           seconds=1.0))

    threads = [threading.Thread(target=blocker) for _ in range(2)]
    for thread in threads:
        thread.start()
        time.sleep(0.15)  # one executing, one occupying the queue slot
    with _client(server) as client:
        with pytest.raises(ServeError) as err:
            client.request("chaos", kind="sleep", seconds=0.1)
    assert err.value.code == protocol.E_OVERLOADED
    assert err.value.retry_after == pytest.approx(0.05)
    for thread in threads:
        thread.join(30)
    assert len(blockers) == 2  # admitted work still completed
    assert _counter("serve.rejected.queue_full") >= 1


def test_client_retries_through_backpressure(make_server):
    """Bounded queue + client retry-after loop: every request lands
    eventually even when the queue is 1 deep."""
    server = make_server(jobs=1, queue_size=1, chaos=True,
                         retry_after_s=0.05)
    outcomes = []
    errors = []

    def one(index):
        try:
            with _client(server, retries=40) as client:
                outcomes.append(client.request("chaos", kind="sleep",
                                               seconds=0.1))
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=one, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert not errors, errors
    assert len(outcomes) == 4


def test_request_timeout_reported_and_worker_result_dropped(make_server):
    server = make_server(jobs=1, timeout_s=0.2, chaos=True)
    with _client(server) as client:
        with pytest.raises(ServeError) as err:
            client.request("chaos", kind="sleep", seconds=0.8)
        assert err.value.code == protocol.E_TIMEOUT
        # The daemon recovers: the slot frees once the sleeper finishes.
        time.sleep(0.8)
        assert client.ping()["pong"] is True
    assert _counter("serve.timeouts") >= 1


def test_transient_failures_retry_with_backoff(make_server):
    server = make_server(jobs=1, chaos=True, retries=2, backoff_s=0.01)
    before = _counter("serve.retries")
    with _client(server) as client:
        result = client.request("chaos", kind="flaky", fails=2,
                                key="retry-me")
    assert result["attempts"] == 3  # failed twice, succeeded on retry 2
    assert _counter("serve.retries") - before == 2
    # Exhausted retries surface as a clean internal error, not a hang.
    with _client(server) as client:
        with pytest.raises(ServeError) as err:
            client.request("chaos", kind="flaky", fails=99,
                           key="never-lands")
        assert err.value.code == protocol.E_INTERNAL


# ----------------------------------------------------------------------
# Worker death, restart budget, degraded serial fallback
# ----------------------------------------------------------------------

def test_worker_death_restarts_then_degrades_to_serial(make_server):
    server = make_server(jobs=1, chaos=True, retries=0, restarts=1)
    # Each chaos death kills the worker: the first is replaced from the
    # restart budget, the second exhausts it and flips the daemon into
    # serial fallback mode.
    for _ in range(2):
        with _client(server) as client:
            with pytest.raises(ServeError) as err:
                client.request("chaos", kind="die")
            assert err.value.code == protocol.E_INTERNAL
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if server.describe()["degraded"]:
            break
        time.sleep(0.05)
    assert server.describe()["degraded"] is True
    # Degraded is degraded, not dark: requests still serve, serially.
    with _client(server) as client:
        assert client.ping()["pong"] is True
        assert client.run_workload("fib")["exit_code"] == 0
        # Even another death cannot kill the fallback worker.
        with pytest.raises(ServeError):
            client.request("chaos", kind="die")
        assert client.ping()["pong"] is True
    assert _counter("serve.worker_deaths") >= 3
    assert _counter("serve.degraded") >= 3


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------

def test_drain_rejects_new_requests_on_open_connections(make_server):
    server = make_server()
    with _client(server) as client:
        assert client.ping()["pong"] is True
        server.request_drain()
        with pytest.raises(ServeError) as err:
            client.ping()
        assert err.value.code == protocol.E_DRAINING
    assert server.wait_drained(10.0)
    assert not os.path.exists(server.config.socket_path)


def test_shutdown_op_drains(make_server):
    server = make_server()
    with _client(server) as client:
        assert client.shutdown() == {"draining": True}
    assert server.wait_drained(10.0)
    assert server.describe()["workers_alive"] == 0


def test_sigterm_drains_cleanly_with_stats_flush(tmp_path):
    """The real CLI daemon: SIGTERM finishes in-flight work, flushes
    serve.* counters to --stats-json, exits 0, and leaves no orphaned
    processes or stale socket."""
    sock = str(tmp_path / "d.sock")
    stats = str(tmp_path / "stats.json")
    env = dict(os.environ, PYTHONPATH=os.pathsep.join(
        filter(None, [SRC, os.environ.get("PYTHONPATH")])))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--socket", sock,
         "--jobs", "2", "--chaos", "--stats-json", stats],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    try:
        assert wait_for_daemon(sock, timeout=30.0), "daemon never came up"
        with ServeClient(sock) as client:
            assert client.run_workload("fib")["exit_code"] == 0
        # Put one request in flight, then SIGTERM while it runs.
        slow_result = {}

        def slow():
            with ServeClient(sock) as client:
                slow_result["result"] = client.request(
                    "chaos", kind="sleep", seconds=1.0)

        thread = threading.Thread(target=slow)
        thread.start()
        time.sleep(0.3)
        proc.send_signal(signal.SIGTERM)
        thread.join(30)
        assert slow_result.get("result") == {"slept": 1.0}, \
            "in-flight request was not finished during drain"
        _out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err.decode()
        assert "drained cleanly" in err.decode()
        assert not os.path.exists(sock)
        with open(stats) as handle:
            report = json.load(handle)
        assert report["schema"] == "repro.obs/1"
        assert report["serve"]["requests"] >= 3
        assert report["serve"]["ok"] >= 3
        assert report["counters"]["serve.requests"] == \
            report["serve"]["requests"]
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(10)


# ----------------------------------------------------------------------
# CLI client subcommand
# ----------------------------------------------------------------------

def test_cli_client_roundtrip(make_server, capsys):
    from repro import cli

    server = make_server()
    rc = cli.main(["client", "ping", "--socket",
                   server.config.socket_path])
    assert rc == 0
    assert json.loads(capsys.readouterr().out)["pong"] is True
    rc = cli.main(["client", "run", "--workload", "fib", "--socket",
                   server.config.socket_path])
    assert rc == 0
    assert json.loads(capsys.readouterr().out)["output"] == "fib 1597\n"


def test_cli_client_without_daemon_fails_cleanly(tmp_path, capsys):
    from repro import cli

    rc = cli.main(["client", "ping", "--socket",
                   str(tmp_path / "nobody-home.sock")])
    assert rc == 1
    assert "cannot reach daemon" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Socket startup: stale paths clobbered, live daemons never robbed
# ----------------------------------------------------------------------

def test_startup_refuses_to_steal_live_socket(make_server):
    """Two daemons pointed at one path: the second must refuse, and the
    first must keep receiving connections (the unlink race fix)."""
    import errno

    server = make_server()
    rival = EditServer(ServeConfig(
        socket_path=server.config.socket_path, jobs=1))
    with pytest.raises(OSError) as err:
        rival.start()
    assert err.value.errno == errno.EADDRINUSE
    # The incumbent survived the attempted theft.
    with _client(server) as client:
        assert client.ping()["pong"] is True


def test_startup_clobbers_stale_socket(tmp_path, make_server):
    """A socket file whose daemon is gone (nothing accepts) is stale:
    startup unlinks it and binds normally."""
    path = str(tmp_path / "stale.sock")
    dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    dead.bind(path)
    dead.close()  # file remains; connections are refused
    assert os.path.exists(path)
    server = make_server(socket_path=path)
    with _client(server) as client:
        assert client.ping()["pong"] is True


# ----------------------------------------------------------------------
# Client backoff metadata (retry_after honoring)
# ----------------------------------------------------------------------

def _scripted_peer(responses):
    """A ServeClient wired to a fake daemon that answers request N with
    ``responses[N](request)`` (the multi-request _misbehaving_peer)."""
    left, right = socket.socketpair()
    client = ServeClient("unused.sock")
    client._sock = left
    client._reader = protocol.LineReader(left)

    def responder():
        reader = protocol.LineReader(right)
        try:
            for factory in responses:
                request = reader.next_message()
                if request is None:
                    return
                right.sendall(protocol.encode(factory(request)))
        except (OSError, protocol.ProtocolError):
            pass

    threading.Thread(target=responder, daemon=True).start()
    return client


def test_client_retry_surfaces_attempt_metadata():
    """overloaded-with-retry_after then ok: the client backs off, wins,
    and reports how hard it worked in last_meta and result['_meta']."""
    client = _scripted_peer([
        lambda req: protocol.error_response(
            req["id"], protocol.E_OVERLOADED, "busy", retry_after=0.01),
        lambda req: protocol.ok_response(req["id"], {"pong": True}),
    ])
    result = client.request("ping")
    assert result["pong"] is True
    assert result["_meta"]["attempts"] == 2
    assert result["_meta"]["backoff_s"] == pytest.approx(0.01)
    assert client.last_meta["attempts"] == 2


def test_client_retries_draining_responses():
    """draining is client-retryable (a fleet shard mid-hot-restart is
    seconds from a warm replacement)."""
    client = _scripted_peer([
        lambda req: protocol.error_response(
            req["id"], protocol.E_DRAINING, "draining", retry_after=0.01),
        lambda req: protocol.ok_response(req["id"], {"pong": True}),
    ])
    result = client.request("ping")
    assert result["pong"] is True
    assert result["_meta"]["attempts"] == 2


def test_client_first_attempt_results_carry_no_meta(make_server):
    """No-retry responses stay byte-identical to what the daemon sent:
    _meta appears only when the client actually backed off."""
    with _client(make_server()) as client:
        result = client.ping()
        assert "_meta" not in result
        assert client.last_meta == {"attempts": 1, "backoff_s": 0.0}


# ----------------------------------------------------------------------
# Response correlation: exact id match only
# ----------------------------------------------------------------------

def _misbehaving_peer(response_factory):
    """A ServeClient wired to a fake daemon that answers each request
    with ``response_factory(request)``."""
    left, right = socket.socketpair()
    client = ServeClient("unused.sock")
    client._sock = left
    client._reader = protocol.LineReader(left)

    def responder():
        reader = protocol.LineReader(right)
        try:
            request = reader.next_message()
            right.sendall(protocol.encode(response_factory(request)))
        except (OSError, protocol.ProtocolError):
            pass

    threading.Thread(target=responder, daemon=True).start()
    return client


def test_client_rejects_mismatched_response_id():
    client = _misbehaving_peer(
        lambda req: protocol.ok_response(999_999, {"pong": True}))
    with pytest.raises(ServeError) as err:
        client.request("ping")
    assert err.value.code == "protocol_error"
    assert "999999" in err.value.message


def test_client_surfaces_id_none_as_protocol_error():
    """A daemon-side framing error answers with id null; the client
    must not silently adopt it as this request's response."""
    client = _misbehaving_peer(
        lambda req: protocol.error_response(
            None, protocol.E_BAD_REQUEST, "undecodable line"))
    with pytest.raises(ServeError) as err:
        client.request("ping")
    assert err.value.code == "protocol_error"
    assert "undecodable line" in err.value.message


def test_client_accepts_exact_id_match(make_server):
    with _client(make_server()) as client:
        assert client.ping()["pong"] is True


# ----------------------------------------------------------------------
# Tracing: one request -> one connected span tree in the event log
# ----------------------------------------------------------------------

def test_chaos_request_yields_single_connected_span_tree(make_server,
                                                         tmp_path):
    """Under a multi-worker chaos config, a retried request still
    produces one span tree with no orphans, rooted at the client's
    span, with queue-wait and handler latency split out."""
    from repro import obs
    from repro.obs import events as obs_events

    events_path = str(tmp_path / "events.jsonl")
    obs_events.configure(events_path)
    obs.enable()
    try:
        server = make_server(jobs=2, chaos=True, retries=2,
                             backoff_s=0.01)
        with _client(server) as client:
            result = client.request("chaos", kind="flaky", fails=2,
                                    key="traced-flake")
            assert result["attempts"] == 3
            run = client.run_workload("fib")
            assert run["exit_code"] == 0
        server.request_drain()
        assert server.wait_drained(15.0)
    finally:
        obs.disable()
        obs.reset()
        obs_events.unconfigure()

    traces = obs_events.build_traces(obs_events.load_events(events_path))
    finished = [r for r in traces.values() if r.finish is not None]
    assert len(finished) == 2
    by_op = {record.op: record for record in finished}
    flaky = by_op["chaos"]
    assert flaky.status == "ok"
    assert flaky.attempts == 2  # two transient failures, then success
    assert flaky.queue_wait_s is not None and flaky.queue_wait_s >= 0
    assert flaky.handler_s is not None and flaky.handler_s > 0
    for record in finished:
        assert record.admit is not None, "admit event missing"
        spans = record.spans
        assert spans and len(spans) == 1
        root = spans[0]
        assert root["name"] == "serve.request"
        assert root["trace_id"] == record.trace_id
        # Every span links to its parent inside the tree: no orphans.
        assert obs_events.connected_spans(
            spans, root_parent=root.get("parent_span_id"))
    run_record = by_op["run"]
    names = set()

    def walk(node):
        names.add(node["name"])
        for child in node.get("children", ()):
            walk(child)

    walk(run_record.spans[0])
    assert "serve.op" in names
    assert "sim.run" in names


def test_client_span_parents_daemon_tree(make_server, tmp_path):
    """With tracing on in the client process, the daemon's root span
    hangs off the client's serve.client.request span id."""
    from repro import obs
    from repro.obs import events as obs_events
    from repro.obs import trace as obs_trace

    events_path = str(tmp_path / "events.jsonl")
    obs_events.configure(events_path)
    obs.enable()
    try:
        server = make_server()
        with _client(server) as client:
            client.ping()
        client_roots = obs_trace.TRACER.tree()
        server.request_drain()
        assert server.wait_drained(15.0)
    finally:
        obs.disable()
        obs.reset()
        obs_events.unconfigure()

    client_spans = [node for node in client_roots
                    if node["name"] == "serve.client.request"]
    assert len(client_spans) == 1
    client_span = client_spans[0]
    traces = obs_events.build_traces(obs_events.load_events(events_path))
    record = next(r for r in traces.values() if r.op == "ping")
    assert record.trace_id == client_span["trace_id"]
    root = record.spans[0]
    assert root["parent_span_id"] == client_span["span_id"]


# ----------------------------------------------------------------------
# Live introspection: the top op
# ----------------------------------------------------------------------

def test_top_op_reports_latency_and_counter_deltas(make_server):
    server = make_server()
    with _client(server) as client:
        for _ in range(3):
            assert client.ping()["pong"] is True
        first = client.top()
        assert first["incremental"] is False
        assert first["counters"]["serve.requests"] >= 3
        ping_latency = first["latency"]["ping"]
        for key in ("count", "p50", "p95", "p99", "min", "max", "mean"):
            assert key in ping_latency
        assert ping_latency["count"] >= 3
        assert first["queue_wait"]["count"] >= 3
        server_state = first["server"]
        assert server_state["workers_alive"] == 2
        assert set(server_state["worker_states"].values()) <= \
            {"idle", "top", "ping"}
        assert server_state["uptime_s"] > 0
        # Second snapshot with the cursor: deltas, not absolutes.
        assert client.ping()["pong"] is True
        second = client.top(first["cursor"])
        assert second["incremental"] is True
        assert second["counters"]["serve.requests"] == 2  # ping + top
        assert second["cursor"] > first["cursor"]


def test_top_cursor_history_is_bounded(make_server):
    server = make_server()
    with _client(server) as client:
        for _ in range(12):
            client.top()
    assert len(server._top_snapshots) <= 8


def test_cli_top_renders_snapshot(make_server, capsys):
    from repro import cli

    server = make_server()
    with _client(server) as client:
        client.ping()
    rc = cli.main(["top", "--socket", server.config.socket_path])
    assert rc == 0
    out = capsys.readouterr().out
    assert "repro-serve pid" in out
    assert "serve.requests" in out
    assert "latency:" in out


# ----------------------------------------------------------------------
# Routine-scoped instrumentation (incremental fact reuse)
# ----------------------------------------------------------------------

def test_instrument_routines_subset_reuses_warm_facts(make_server,
                                                      monkeypatch,
                                                      tmp_path):
    """A warm image plus a single-routine instrument request must not
    rebuild unrelated routines' CFGs: every analysis the edit touches
    comes out of the hydrated fact store."""
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    server = make_server(jobs=2)
    with _client(server) as client:
        client.request("routines", workload="fib")  # warm the analysis
        builds_before = _counter("cfg.builds")
        restores_before = _counter("cache.restored_cfgs")
        result = client.request("instrument", workload="fib", tool="qpt",
                                routines=["fib"], return_image=False,
                                run=True)
        assert result["run"]["exit_code"] == 0
        assert _counter("cfg.builds") == builds_before
        # Only the requested routine's CFG (plus none of the others)
        # was materialized from facts for instrumentation.
        assert _counter("cache.restored_cfgs") - restores_before <= 2


def test_instrument_rejects_unknown_routine_names(make_server):
    server = make_server(jobs=1)
    with _client(server) as client:
        with pytest.raises(ServeError) as err:
            client.request("instrument", workload="fib", tool="qpt",
                           routines=["no_such_routine"])
        assert err.value.code == protocol.E_BAD_REQUEST
        assert "no_such_routine" in str(err.value)
        with pytest.raises(ServeError) as err:
            client.request("instrument", workload="fib", tool="qpt",
                           routines="fib")
        assert err.value.code == protocol.E_BAD_REQUEST
