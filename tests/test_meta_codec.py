"""Property tests for the ``repro.meta/1`` codec (DESIGN.md §5l).

Three guarantees the trust boundary leans on:

* encode→decode is the identity over arbitrary well-formed tables;
* malformed input — truncation, bit flips, outright garbage — raises
  :class:`MetaError` and *only* MetaError (a corrupted section must
  degrade to full refinement, never crash analysis);
* the EELF serialize layer carries the section faithfully regardless
  of where it sits in the section list.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.binfmt.serialize import image_from_bytes, image_to_bytes
from repro.binfmt.meta import (
    MetaDispatch,
    MetaError,
    MetaRoutine,
    MetaTable,
    attach_meta,
    decode_meta,
    encode_meta,
    extract_meta,
)

_u32 = st.integers(min_value=0, max_value=0xFFFF_FFFF)
_u16 = st.integers(min_value=0, max_value=0xFFFF)

_names = st.text(min_size=1, max_size=12)

_routines = st.builds(
    MetaRoutine,
    name=_names,
    start=_u32,
    end=_u32,
    entries=st.lists(_u32, min_size=1, max_size=6).map(tuple),
    hidden=st.booleans(),
)

_tables = st.builds(
    MetaDispatch,
    addr=_u32,
    count=st.integers(min_value=1, max_value=0xFFFF),
    in_text=st.booleans(),
)

_metas = st.builds(
    MetaTable,
    text_vaddr=_u32,
    text_size=_u32,
    text_sha256=st.binary(min_size=32, max_size=32),
    routines=st.lists(_routines, max_size=5).map(tuple),
    tables=st.lists(_tables, max_size=4).map(tuple),
    delay_ctis=st.lists(_u32, max_size=6).map(tuple),
    islands=st.lists(st.tuples(_u32, _u32), max_size=4).map(tuple),
)


@given(_metas)
def test_roundtrip(meta):
    """decode(encode(m)) == m for arbitrary structurally valid tables
    (the codec carries claims; it does not judge them — that is the
    verifier's job)."""
    assert decode_meta(encode_meta(meta)) == meta


@given(_metas, st.data())
def test_truncation_rejected(meta, data):
    """Any strict prefix of a valid encoding is a typed MetaError: the
    embedded counts promise more bytes than remain."""
    blob = encode_meta(meta)
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(MetaError):
        decode_meta(blob[:cut])


@given(st.binary(max_size=256))
def test_garbage_never_raises_anything_else(blob):
    """Arbitrary bytes either decode or raise MetaError — no other
    exception ever escapes the decoder."""
    try:
        decode_meta(blob)
    except MetaError:
        pass


@given(_metas, st.data())
@settings(max_examples=50)
def test_bitflips_never_raise_anything_else(meta, data):
    """A single flipped byte in a real encoding is still handled with
    MetaError at worst (it may also decode to some other table; the
    text hash and spot checks exist for exactly that case)."""
    blob = bytearray(encode_meta(meta))
    index = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    blob[index] ^= data.draw(st.integers(min_value=1, max_value=255))
    try:
        decode_meta(bytes(blob))
    except MetaError:
        pass


def test_entry_count_bounds():
    bad = MetaTable(0, 0, b"\0" * 32,
                    routines=(MetaRoutine("f", 0, 8, entries=()),))
    with pytest.raises(MetaError):
        encode_meta(bad)


def test_serialize_layer_stability_across_section_reordering():
    """EELF write/read preserves the section whatever its position in
    the section list, and attach_meta replaces an existing section
    in place."""
    from repro.workloads import build_image

    image = build_image("fib")
    meta = MetaTable(image.get_section(".text").vaddr,
                     image.get_section(".text").size,
                     b"\x5a" * 32,
                     routines=(MetaRoutine("f", 0x1000, 0x1008,
                                           entries=(0x1000,)),),
                     delay_ctis=(0x1004,))
    attach_meta(image, meta)
    orders = [list(image.sections.items()),
              list(reversed(image.sections.items()))]
    for order in orders:
        image.sections = dict(order)
        recovered = image_from_bytes(image_to_bytes(image))
        assert extract_meta(recovered) == meta
    # Re-attaching replaces, never duplicates.
    attach_meta(image, meta)
    assert list(image.sections).count(".eel.meta") == 1
