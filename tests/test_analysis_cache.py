"""Content-addressed analysis cache: keys, round-trips, warm restores,
invalidation, pruning, and the parallel cold-cache pipeline."""

import contextlib
import glob
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cache, obs
from repro.binfmt.serialize import (
    FormatError,
    analysis_from_bytes,
    analysis_to_bytes,
)
from repro.core import Executable
from repro.obs import metrics
from repro.workloads import build_image, build_mips_image, expected_output
from repro.workloads.builder import mips_program_names, program_names

CORPUS = sorted(program_names()) + sorted(mips_program_names())


def _image_for(name):
    if name.startswith("mips_"):
        return build_mips_image(name)
    return build_image(name)


@contextlib.contextmanager
def _env(**values):
    saved = {key: os.environ.get(key) for key in values}
    for key, value in values.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _analysis_of(executable):
    """{routine name: (cfg summary, liveness summary)} — the comparison
    surface for fresh-vs-restored equality (CFG edges, liveness sets,
    and jump-table targets all live in these dicts)."""
    out = {}
    for routine in executable.all_routines():
        cfg = routine.control_flow_graph()
        out[routine.name] = (cfg.to_summary(),
                             cfg.live_registers().to_summary())
    return out


@pytest.fixture(autouse=True)
def _clean_metrics():
    metrics.reset()
    yield
    obs.disable()
    metrics.reset()


# ----------------------------------------------------------------------
# Keys and the EELA blob format
# ----------------------------------------------------------------------

def test_cache_key_stable_across_identical_builds():
    assert cache.image_cache_key(build_image("fib")) == \
        cache.image_cache_key(build_image("fib"))


def test_cache_key_sensitive_to_content():
    image = build_image("fib")
    key = cache.image_cache_key(image)
    text = image.sections[".text"]
    text.data[0] ^= 0xFF
    assert cache.image_cache_key(image) != key
    text.data[0] ^= 0xFF
    assert cache.image_cache_key(image) == key


def test_cache_key_changes_with_analysis_version(monkeypatch):
    import importlib

    image = build_image("fib")
    key = cache.image_cache_key(image)
    # The package re-exports a store() *function*, which shadows the
    # submodule attribute; import the module itself.
    store_mod = importlib.import_module("repro.cache.store")

    monkeypatch.setattr(store_mod, "ANALYSIS_VERSION",
                        store_mod.ANALYSIS_VERSION + 1)
    assert cache.image_cache_key(image) != key


def test_analysis_blob_round_trip():
    summary = {"arch": "sparc", "routines": [{"name": "f", "start": 4096}],
               "hidden": [], "claimed": [1, 2, 3]}
    assert analysis_from_bytes(analysis_to_bytes(summary)) == summary


def test_analysis_blob_rejects_corruption():
    blob = analysis_to_bytes({"a": 1})
    with pytest.raises(FormatError):
        analysis_from_bytes(blob[:4])
    with pytest.raises(FormatError):
        analysis_from_bytes(b"XXXX" + blob[4:])
    with pytest.raises(FormatError):
        analysis_from_bytes(blob[:-3] + b"\x00\x00\x00")


# ----------------------------------------------------------------------
# Round-trip property: restored analysis == fresh analysis
# ----------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(name=st.sampled_from(CORPUS))
def test_cached_analysis_equals_fresh(name):
    with _env(REPRO_CACHE="off"):
        fresh = _analysis_of(Executable(_image_for(name)).read_contents())
    # Cold run stores; second run restores from disk through the EELA
    # blob, exercising serialization for every routine shape the
    # workload corpus can produce, on both architectures.
    with _env(REPRO_CACHE="on"):
        Executable(_image_for(name)).read_contents()
        warm_exe = Executable(_image_for(name)).read_contents()
    assert warm_exe._read
    assert _analysis_of(warm_exe) == fresh


# ----------------------------------------------------------------------
# Warm runs skip analysis
# ----------------------------------------------------------------------

def test_warm_run_restores_instead_of_building():
    with _env(REPRO_CACHE="on"):
        image = build_image("interp")
        Executable(build_image("interp")).read_contents()  # populate

        metrics.reset()
        obs.enable()
        warm = Executable(image).read_contents()
        for routine in warm.all_routines():
            routine.control_flow_graph()
        obs.disable()
    counters = metrics.snapshot()["counters"]
    assert counters["cache.hits"] == 1
    assert counters["cache.misses"] == 0
    assert counters["cache.restored_cfgs"] > 0
    assert counters.get("cfg.builds", 0) == 0
    # No cfg.build span anywhere: routine analysis was skipped entirely.
    from repro.obs import trace

    def names(nodes):
        out = set()
        for node in nodes:
            out.add(node["name"])
            out |= names(node["children"])
        return out

    seen = names(trace.TRACER.tree())
    assert "cfg.build" not in seen
    assert "cache.restore" in seen


def test_warm_edit_produces_identical_image():
    from repro.binfmt.serialize import image_to_bytes

    def identity(image):
        exe = Executable(image).read_contents()
        for routine in exe.all_routines():
            routine.produce_edited_routine()
        out = exe.edited_image()
        out.entry = exe.edited_addr(exe.start_address())
        return out

    with _env(REPRO_CACHE="off"):
        cold = identity(build_image("interp"))
    with _env(REPRO_CACHE="on"):
        Executable(build_image("interp")).read_contents()  # populate
        warm = identity(build_image("interp"))
    assert image_to_bytes(warm) == image_to_bytes(cold)
    from repro.sim import run_image

    assert run_image(warm).output == expected_output("interp")


# ----------------------------------------------------------------------
# Disable, invalidation, pruning
# ----------------------------------------------------------------------

def test_disabled_cache_writes_nothing(tmp_path):
    with _env(REPRO_CACHE="off", REPRO_CACHE_DIR=str(tmp_path / "c")):
        Executable(build_image("fib")).read_contents()
        assert not os.path.exists(str(tmp_path / "c"))


def test_corrupt_entry_invalidated_and_reanalyzed(tmp_path):
    with _env(REPRO_CACHE="on", REPRO_CACHE_DIR=str(tmp_path)):
        exe = Executable(build_image("fib")).read_contents()
        entries = glob.glob(str(tmp_path / "*.eela"))
        assert len(entries) == 1
        with open(entries[0], "wb") as handle:
            handle.write(b"EELAgarbage")

        metrics.reset()
        warm = Executable(build_image("fib")).read_contents()
        counters = metrics.snapshot()["counters"]
        assert counters["cache.invalidations"] == 1
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 0
        # Reanalysis succeeded and re-stored a valid entry.
        assert counters["cache.stores"] == 1
        assert _analysis_of(warm) == _analysis_of(exe)


def test_prune_caps_entry_count(tmp_path):
    with _env(REPRO_CACHE_DIR=str(tmp_path), REPRO_CACHE_MAX="2"):
        for index in range(4):
            cache.store("k%d" % index, {"index": index})
        remaining = sorted(os.path.basename(p)
                           for p in glob.glob(str(tmp_path / "*.eela")))
        assert len(remaining) == 2
        counters = metrics.snapshot()["counters"]
        assert counters["cache.evictions"] == 2


# ----------------------------------------------------------------------
# Parallel cold-cache analysis
# ----------------------------------------------------------------------

def test_parallel_summaries_match_serial():
    with _env(REPRO_CACHE="off"):
        serial_exe = Executable(build_image("interp")).read_contents()
        serial = cache.executable_to_summary(serial_exe, jobs=1)
        parallel_exe = Executable(build_image("interp")).read_contents()
        parallel = cache.executable_to_summary(parallel_exe, jobs=2)
    assert parallel == serial


def test_jobs_flag_reaches_read_contents():
    with _env(REPRO_CACHE="off"):
        exe = Executable(build_image("fib")).read_contents(jobs=2)
    assert exe._read
    assert len(list(exe.all_routines())) > 0


# ----------------------------------------------------------------------
# Concurrent pruning, defensive env parsing, and the in-memory layer
# ----------------------------------------------------------------------

_PRUNE_HAMMER = r"""
import os, sys
import repro.cache.store
store = sys.modules["repro.cache.store"]

directory = os.environ["REPRO_CACHE_DIR"]
os.makedirs(directory, exist_ok=True)
for index in range(150):
    path = os.path.join(directory, "k_%d_%d.eela" % (os.getpid(), index))
    with open(path, "wb") as handle:
        handle.write(b"x")
    store._prune(directory)
sys.stdout.write("%d %d" % (store._C_ERRORS.value,
                            store._C_PRUNE_RACES.value))
"""


def test_prune_survives_concurrent_writers(tmp_path):
    """Two processes creating and pruning in one REPRO_CACHE_DIR race on
    the same oldest entries; a lost race must read as 'already evicted',
    never as a store error (regression: concurrent --jobs workers)."""
    import subprocess
    import sys

    env = dict(os.environ, REPRO_CACHE_DIR=str(tmp_path),
               REPRO_CACHE_MAX="2",
               PYTHONPATH=os.pathsep.join(
                   filter(None, [os.path.join(os.path.dirname(__file__),
                                              os.pardir, "src"),
                                 os.environ.get("PYTHONPATH")])))
    procs = [subprocess.Popen([sys.executable, "-c", _PRUNE_HAMMER],
                              env=env, stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE)
             for _ in range(2)]
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()
        errors, _races = (int(field) for field in out.split())
        assert errors == 0, "prune counted a lost race as a store error"
    remaining = glob.glob(str(tmp_path / "*.eela"))
    assert len(remaining) <= 2


def test_malformed_cache_max_falls_back_with_warning(capsys):
    from repro import env as repro_env

    for bad in ("1e3", "", "banana", "-5"):
        with _env(REPRO_CACHE_MAX=bad):
            repro_env._WARNED.discard("REPRO_CACHE_MAX")
            assert cache.max_entries() == 512
    warning = capsys.readouterr().err
    assert "REPRO_CACHE_MAX" in warning
    assert "default" in warning


def test_malformed_cache_max_does_not_crash_cli(tmp_path, capsys):
    from repro import cli

    image_path = str(tmp_path / "fib.eelf")
    assert cli.main(["build", "fib", image_path]) == 0
    with _env(REPRO_CACHE_MAX="1e3", REPRO_CACHE_DIR=str(tmp_path / "c")):
        assert cli.main(["routines", image_path]) == 0
    capsys.readouterr()


def test_memory_layer_serves_hits_without_disk(tmp_path):
    """With the warm layer on (the serve daemon's mode), a second load
    hits memory even after the on-disk entry disappears."""
    with _env(REPRO_CACHE="on", REPRO_CACHE_DIR=str(tmp_path)):
        cache.enable_memory_layer(cap=8)
        try:
            exe = Executable(build_image("fib")).read_contents()
            for path in glob.glob(str(tmp_path / "*.eela")):
                os.unlink(path)
            metrics.reset()
            warm = Executable(build_image("fib")).read_contents()
            counters = metrics.snapshot()["counters"]
            assert counters["cache.memory_hits"] == 1
            assert counters["cache.hits"] == 1
            assert counters["cache.misses"] == 0
            assert _analysis_of(warm) == _analysis_of(exe)
        finally:
            cache.disable_memory_layer()


# ----------------------------------------------------------------------
# Versioned blobs and fact-table hydration (ANALYSIS_VERSION 4)
# ----------------------------------------------------------------------

def _rewrite_blob(path, mutate):
    """Round-trip the on-disk EELA blob through *mutate*(summary)."""
    import struct
    import zlib

    with open(path, "rb") as handle:
        blob = handle.read()
    summary = analysis_from_bytes(blob)
    mutated = mutate(summary)
    with open(path, "wb") as handle:
        handle.write(analysis_to_bytes(mutated if mutated is not None
                                       else summary))


def test_old_version_blob_misses_cleanly(tmp_path):
    """A blob written by an older ANALYSIS_VERSION must be a clean miss
    (invalidate + reanalyze), never a partial fact-table hydrate."""
    import struct

    from repro.binfmt.serialize import ANALYSIS_VERSION

    with _env(REPRO_CACHE="on", REPRO_CACHE_DIR=str(tmp_path)):
        exe = Executable(build_image("fib")).read_contents()
        entries = glob.glob(str(tmp_path / "*.eela"))
        assert len(entries) == 1
        with open(entries[0], "rb") as handle:
            blob = handle.read()
        downgraded = (blob[:4] + struct.pack(">H", ANALYSIS_VERSION - 1)
                      + blob[6:])
        with open(entries[0], "wb") as handle:
            handle.write(downgraded)

        metrics.reset()
        warm = Executable(build_image("fib")).read_contents()
        counters = metrics.snapshot()["counters"]
        assert counters["cache.invalidations"] == 1
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 0
        assert counters.get("facts.hydrated", 0) == 0
        assert counters["cache.stores"] == 1
        assert _analysis_of(warm) == _analysis_of(exe)


def test_missing_fact_table_rejected_not_partially_hydrated(tmp_path):
    """A structurally valid blob whose fact table is garbage must fall
    back to cold analysis with a clean executable (no partial store)."""
    with _env(REPRO_CACHE="on", REPRO_CACHE_DIR=str(tmp_path)):
        exe = Executable(build_image("fib")).read_contents()
        entries = glob.glob(str(tmp_path / "*.eela"))

        def _break_facts(summary):
            summary["facts"] = {"facts": "not-a-fact-list", "deps": []}
            return summary

        _rewrite_blob(entries[0], _break_facts)
        metrics.reset()
        warm = Executable(build_image("fib")).read_contents()
        counters = metrics.snapshot()["counters"]
        assert counters["facts.hydrate_rejects"] == 1
        assert counters.get("facts.hydrated", 0) == 0
        assert counters["cache.stores"] == 1  # cold path re-stored
        assert warm.fact_store() is not None
        assert _analysis_of(warm) == _analysis_of(exe)


def test_partial_fact_table_rejected_not_partially_hydrated(tmp_path):
    """A fact table missing one routine's derived facts (e.g. truncated
    by a concurrent writer) rejects as a whole — never half a store."""
    with _env(REPRO_CACHE="on", REPRO_CACHE_DIR=str(tmp_path)):
        exe = Executable(build_image("fib")).read_contents()
        entries = glob.glob(str(tmp_path / "*.eela"))

        def _drop_liveness(summary):
            table = summary["facts"]
            victim = next(key for kind, key, _p in table["facts"]
                          if kind == "liveness")
            table["facts"] = [row for row in table["facts"]
                              if not (row[0] == "liveness"
                                      and row[1] == victim)]
            table["deps"] = [row for row in table["deps"]
                             if row[0] != ["liveness", victim]]
            return summary

        _rewrite_blob(entries[0], _drop_liveness)
        metrics.reset()
        warm = Executable(build_image("fib")).read_contents()
        counters = metrics.snapshot()["counters"]
        assert counters["facts.hydrate_rejects"] == 1
        assert counters["cache.stores"] == 1
        assert _analysis_of(warm) == _analysis_of(exe)


def test_hydrated_store_supports_incremental_invalidation(tmp_path):
    """The point of persisting the dependency edges: a restored store
    propagates dirtiness exactly like the one that was saved."""
    with _env(REPRO_CACHE="on", REPRO_CACHE_DIR=str(tmp_path)):
        Executable(build_image("fib")).read_contents()
        warm = Executable(build_image("fib")).read_contents()
        store = warm.fact_store()
        fib = warm.routine("fib")
        main = warm.routine("main")
        warm.invalidate_routine("fib")
        dirty = store.dirty_facts()
        assert ("cfg", fib.start) in dirty
        assert ("callsites", main.start) in dirty
        assert ("cfg", main.start) not in dirty
