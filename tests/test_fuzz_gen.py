"""Properties of the fuzz generator's images and ground-truth manifests.

These run the generator alone (no analysis pipeline), so hypothesis can
afford real example counts: every image must decode cleanly outside its
declared data extents, every manifest annotation must agree with the
machine word it describes, and regeneration from the same seed must be
bit-identical.
"""

from hypothesis import given, settings, strategies as st

from repro.binfmt.layout import TEXT_BASE
from repro.core.instruction import instruction_for
from repro.fuzz.gen import GenConfig, build_plan, generate
from repro.isa import get_codec

SEEDS = st.integers(min_value=0, max_value=99999)

_SETTINGS = dict(max_examples=25, deadline=None)


def _data_extents(manifest):
    """[start, end) ranges in text that legitimately hold data."""
    extents = []
    for routine in manifest["routines"]:
        for start, end in routine["islands"]:
            extents.append((start, end))
        for table in routine["tables"]:
            if table["in_text"]:
                extents.append((table["table"],
                                table["table"] + 4 * len(table["targets"])))
    return extents


def _in_extents(addr, extents):
    return any(start <= addr < end for start, end in extents)


@given(seed=SEEDS)
@settings(**_SETTINGS)
def test_text_decodes_cleanly_outside_data(seed):
    program = generate(seed)
    manifest = program.manifest
    codec = get_codec(manifest["arch"])
    extents = _data_extents(manifest)
    for addr in range(TEXT_BASE, manifest["text_end"], 4):
        if _in_extents(addr, extents):
            continue
        word = program.image.word_at(addr)
        instruction = instruction_for(codec, word)
        assert instruction.is_valid, \
            "invalid word 0x%08x at 0x%x (seed %d)" % (word, addr, seed)


@given(seed=SEEDS)
@settings(**_SETTINGS)
def test_manifest_edges_stay_inside_text(seed):
    manifest = generate(seed).manifest
    lo, hi = TEXT_BASE, manifest["text_end"]
    for routine in manifest["routines"]:
        assert lo <= routine["start"] < routine["end"] <= hi
        for entry in routine["entries"]:
            assert routine["start"] <= entry < routine["end"]
        for transfer in routine["transfers"]:
            assert lo <= transfer["src"] < hi
            assert lo <= transfer["dst"] < hi
        for call in routine["calls"]:
            assert lo <= call["src"] < hi
            assert lo <= call["dst"] < hi
        for leader in routine["leaders"]:
            assert routine["start"] <= leader < routine["end"]


@given(seed=SEEDS)
@settings(**_SETTINGS)
def test_manifest_ctis_match_decoded_words(seed):
    program = generate(seed)
    manifest = program.manifest
    codec = get_codec(manifest["arch"])
    for routine in manifest["routines"]:
        for cti in routine["ctis"]:
            instruction = instruction_for(codec,
                                          program.image.word_at(cti["addr"]))
            assert instruction.is_control
            if cti["annul"]:
                assert instruction.annul_untaken
            if cti["delayed"]:
                slot_word = program.image.word_at(cti["addr"] + 4)
                slot = instruction_for(codec, slot_word)
                assert slot.is_valid
                if cti["filled"]:
                    assert slot_word != codec.nop_word
                else:
                    assert slot_word == codec.nop_word


@given(seed=SEEDS)
@settings(**_SETTINGS)
def test_regeneration_is_deterministic(seed):
    first = generate(seed)
    second = generate(seed)
    assert first.manifest == second.manifest
    assert first.asm == second.asm
    for name, section in first.image.sections.items():
        assert bytes(section.data) == bytes(second.image.sections[name].data)


@given(seed=SEEDS)
@settings(**_SETTINGS)
def test_plan_is_deterministic_and_config_round_trips(seed):
    config = GenConfig()
    assert build_plan(seed, config) == build_plan(seed, config)
    assert GenConfig.from_dict(config.to_dict()).to_dict() == config.to_dict()


def test_hidden_routines_have_no_symbol():
    # Deterministic spot check: a hidden routine's name must not appear
    # in the linked image's symbol table (that is what makes refinement
    # discover it instead of reading it).
    for seed in range(40):
        program = generate(seed)
        hidden = {routine["name"]
                  for routine in program.manifest["routines"]
                  if routine["hidden"]}
        if not hidden:
            continue
        symbols = {symbol.name for symbol in program.image.symbols}
        assert not (hidden & symbols)
        return
    raise AssertionError("no hidden routine in the first 40 seeds")
