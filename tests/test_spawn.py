"""spawn: description parsing, codec equivalence, executor, codegen."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import bits, get_codec
from repro.isa.base import Category
from repro.spawn import (
    SpawnParseError,
    build_codec,
    generate_source,
    load_description,
    parse_description,
)

MINI_DESC = """
arch sparc
wordsize 32
fields op 30:31, rd 25:29, rs1 14:18, simm13 0:12 signed, iflag 13:13,
  rs2 0:4, op3 19:24
register R[32] zero 0
implies simm13 iflag 1
pat add2 is op=2 && op3=0
val src2 is iflag = 1 ? simm13 : R[rs2]
sem add2 is R[rd] := R[rs1] + src2
"""


def test_parse_mini_description():
    desc = parse_description(MINI_DESC)
    assert desc.arch == "sparc"
    assert "add2" in desc.instructions
    assert desc.fields["simm13"].signed
    assert desc.banks["R"].zero == 0


def test_parse_errors():
    with pytest.raises(SpawnParseError):
        parse_description("fields x 0:3")  # no arch
    with pytest.raises(SpawnParseError):
        parse_description("arch a\npat p is f=1\n")  # unknown... f
    with pytest.raises(SpawnParseError):
        parse_description(
            "arch a\nfields f 0:3\npat p is f=1\n"
        )  # no semantics


def test_vector_pattern_arity_mismatch():
    with pytest.raises(SpawnParseError):
        parse_description("""
arch a
fields f 0:3
pat [ x y ] is f=[1 2 3]
sem x is R[f] := 0
""")


def test_bundled_descriptions_load():
    for arch in ("sparc", "mips"):
        desc = load_description(arch)
        assert desc.arch == arch
        assert len(desc.instructions) >= 40
        # Conciseness: well under 200 non-blank lines (paper: 145/128).
        assert desc.source_lines < 200


def _random_word_for(desc, name, rng):
    inst_def = desc.instructions[name]
    word = 0
    for field in desc.fields.values():
        word = bits.insert(word, field.lo, field.hi,
                           rng.getrandbits(field.width))
    for field_name, value in inst_def.constraints.items():
        field = desc.fields[field_name]
        word = bits.insert(word, field.lo, field.hi, value)
    return word


@pytest.mark.parametrize("arch", ["sparc", "mips"])
def test_spawn_decode_equivalent_to_handwritten(arch):
    """The paper's premise: generated machine layer == handwritten one."""
    desc = load_description(arch)
    spawn_codec = build_codec(arch)
    hand = get_codec(arch)
    rng = random.Random(7)
    for name in desc.instructions:
        for _ in range(40):
            word = _random_word_for(desc, name, rng)
            s = spawn_codec.decode(word)
            h = hand.decode(word)
            assert s.category == h.category, (name, hex(word))
            assert s.reads == h.reads, (name, hex(word))
            assert s.writes == h.writes, (name, hex(word))
            assert s.is_delayed == h.is_delayed, (name, hex(word))
            assert s.annul_untaken == h.annul_untaken, (name, hex(word))
            assert (s.mem_width, s.mem_signed) == (h.mem_width,
                                                   h.mem_signed)
            assert s.cond == h.cond, (name, hex(word))
            assert spawn_codec.control_target(s, 0x1000) \
                == hand.control_target(h, 0x1000), (name, hex(word))


@pytest.mark.parametrize("arch", ["sparc", "mips"])
def test_spawn_encode_equivalent(arch):
    spawn_codec = build_codec(arch)
    hand = get_codec(arch)
    if arch == "sparc":
        cases = [("add", dict(rd=9, rs1=8, simm13=-5)),
                 ("sethi", dict(rd=4, imm22=0x3FF)),
                 ("call", dict(disp30=-100)),
                 ("bne,a", dict(disp22=12)),
                 ("ld", dict(rd=3, rs1=14, simm13=-8)),
                 ("jmpl", dict(rd=15, rs1=9, simm13=0)),
                 ("ta", dict(trap_num=0)),
                 ("save", dict(rd=14, rs1=14, simm13=-96))]
    else:
        cases = [("addu", dict(rd=2, rs=4, rt=5)),
                 ("addiu", dict(rt=2, rs=4, imm16=-3)),
                 ("lw", dict(rt=2, rs=29, imm16=4)),
                 ("beq", dict(rs=4, rt=5, imm16=6)),
                 ("jal", dict(target26=0x1234)),
                 ("syscall", dict())]
    for name, kwargs in cases:
        assert spawn_codec.encode(name, **kwargs) \
            == hand.encode(name, **kwargs), name


def test_spawn_invalid_word():
    spawn_codec = build_codec("sparc")
    assert spawn_codec.decode(0).category is Category.INVALID


def test_spawn_with_control_target():
    spawn_codec = build_codec("sparc")
    hand = get_codec("sparc")
    word = hand.encode("bne", disp22=0)
    assert spawn_codec.with_control_target(word, 0x1000, 0x1404) \
        == hand.with_control_target(word, 0x1000, 0x1404)
    from repro.isa.base import SpanError

    with pytest.raises(SpanError):
        spawn_codec.with_control_target(word, 0, 0x4000000)


@pytest.mark.parametrize("name,builder", [
    ("fib", "sparc"), ("interp", "sparc"), ("mips_fib", "mips"),
])
def test_spawn_executor_differential(name, builder):
    """Programs run identically under description-derived semantics."""
    from repro.sim import Simulator
    from repro.workloads import build_image, build_mips_image

    image = build_image(name) if builder == "sparc" \
        else build_mips_image(name)
    handwritten = Simulator(image)
    handwritten.run()
    spawned = Simulator(image, engine="spawn")
    spawned.run()
    assert spawned.output == handwritten.output
    assert spawned.exit_code == handwritten.exit_code
    assert spawned.instructions_executed \
        == handwritten.instructions_executed


@pytest.mark.parametrize("arch", ["sparc", "mips"])
def test_generated_source_is_importable_and_consistent(arch):
    source = generate_source(arch)
    namespace = {}
    exec(compile(source, "generated_%s.py" % arch, "exec"), namespace)
    spawn_codec = build_codec(arch)
    hand = get_codec(arch)
    # decode() names agree with the codec on canonical encodings.
    desc = load_description(arch)
    for name in list(desc.instructions)[:20]:
        inst_def = desc.instructions[name]
        word = 0
        for field_name, value in inst_def.constraints.items():
            field = desc.fields[field_name]
            word = bits.insert(word, field.lo, field.hi, value)
        assert namespace["decode"](word) == name
    # Field extractors match the analyzer.
    for field in list(desc.fields.values())[:6]:
        extractor = namespace["FIELD_EXTRACTORS"][field.name]
        assert extractor(0xFFFFFFFF) == \
            spawn_codec.analyzer.field_value(field.name, 0xFFFFFFFF)


def test_generated_source_much_longer_than_description():
    """The paper's expansion: 145 description lines -> 6,178 generated."""
    for arch in ("sparc", "mips"):
        desc = load_description(arch)
        generated = generate_source(arch)
        assert len(generated.splitlines()) > 8 * desc.source_lines
