"""Structured shrinking: failure classes survive, fixpoints are stable."""

import copy

import pytest

from repro.core.executable import Executable
from repro.fuzz.gen import GenConfig, build_plan, plan_to_program
from repro.fuzz.shrink import shrink_plan
from repro.tools import instrument_image
from repro.verify import verify_session
from repro.verify.context import VerifyContext
from repro.verify.inject import InjectionError, inject_stale_dispatch_entry


def _items(plan):
    return sum(len(routine["items"]) for routine in plan["routines"])


def _has_switch(plan):
    return any(item["p"] == "switch"
               for routine in plan["routines"]
               for item in routine["items"])


def _find_plan(predicate, limit=300):
    config = GenConfig()
    for seed in range(limit):
        plan = build_plan(seed, config)
        if predicate(plan):
            return plan
    raise AssertionError("no plan matching predicate in %d seeds" % limit)


def _fails_stale_dispatch(plan):
    """True when a planted verify.inject fault is still detected: the
    plan must keep a rewritten dispatch table for the injection to
    exist, and verification of the corrupted image must fail."""
    if not _has_switch(plan):
        return False
    try:
        program = plan_to_program(plan)
        session = instrument_image(program.image, "qpt")
        context = VerifyContext(session.executable, session.edited_image)
        corrupted, _meta = inject_stale_dispatch_entry(context)
        result = verify_session(session.executable, corrupted,
                                use_memo=False, label="shrink-inject")
    except InjectionError:
        return False
    except Exception:
        return False
    return not result.ok


def test_shrink_preserves_planted_fault_class():
    plan = _find_plan(lambda p: p["arch"] == "mips" and _has_switch(p)
                      and _items(p) >= 4)
    assert _fails_stale_dispatch(plan)
    shrunk = shrink_plan(plan, _fails_stale_dispatch, max_probes=25)
    assert _fails_stale_dispatch(shrunk)
    assert len(shrunk["routines"]) <= len(plan["routines"])
    assert _items(shrunk) < _items(plan)


def test_shrink_is_idempotent_on_minimal_plan():
    plan = _find_plan(lambda p: p["arch"] == "mips" and _has_switch(p))
    # Structural predicate only (no pipeline): cheap enough to reach
    # the true fixpoint.
    minimal = shrink_plan(plan, _has_switch)
    again = shrink_plan(minimal, _has_switch)
    assert again == minimal
    # One routine, one switch: nothing inessential left.
    assert len(minimal["routines"]) == 1
    assert [item["p"] for item in minimal["routines"][0]["items"]] \
        == ["switch"]


def test_shrink_returns_plan_unchanged_when_predicate_never_holds():
    plan = _find_plan(lambda p: True)
    original = copy.deepcopy(plan)
    assert shrink_plan(plan, lambda candidate: False) == original
    assert plan == original  # input not mutated


def test_shrunk_plans_still_generate_and_analyze():
    plan = _find_plan(lambda p: _has_switch(p) and len(p["routines"]) >= 3)
    minimal = shrink_plan(plan, _has_switch)
    program = plan_to_program(minimal)
    executable = Executable(program.image)
    executable.read_contents()
    assert executable.all_routines()
