"""Incremental fact store: dirty-set propagation, warm single-routine
re-analysis, adoption, and escalation (the fixpoint recast of paper
section 3.1's refinement stages)."""

import contextlib
import os

import pytest

from repro import obs
from repro.core import Executable
from repro.core.executable import ExecutableError
from repro.core.facts import FactStore
from repro.core.facts import rules as fact_rules
from repro.obs import metrics
from repro.workloads import build_image


@contextlib.contextmanager
def _env(**values):
    saved = {key: os.environ.get(key) for key in values}
    for key, value in values.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@pytest.fixture(autouse=True)
def _clean_metrics():
    metrics.reset()
    yield
    obs.disable()
    metrics.reset()


def _counter(name):
    return metrics.counter(name).value


def _routine(executable, name):
    for routine in executable.all_routines():
        if routine.name == name:
            return routine
    raise AssertionError("no routine named %r" % (name,))


def _populated(name="fib"):
    executable = Executable(build_image(name)).read_contents()
    store = executable.fact_store()
    fact_rules.populate(executable, store)
    return executable, store


# ----------------------------------------------------------------------
# FactStore mechanics
# ----------------------------------------------------------------------

def test_put_bumps_version_only_on_payload_change():
    store = FactStore()
    store.put("routine", 100, {"name": "a"})
    first = store.version("routine", 100)
    store.put("routine", 100, {"name": "a"})
    assert store.version("routine", 100) == first
    store.put("routine", 100, {"name": "b"})
    assert store.version("routine", 100) == first + 1


def test_invalidate_walks_dependents_transitively():
    store = FactStore()
    store.put("routine", 100, {})
    store.put("cfg", 100, {}, (("routine", 100),))
    store.put("liveness", 100, {}, (("cfg", 100),))
    store.put("cfg", 200, {})  # unrelated
    dirtied = store.invalidate("routine", 100)
    assert dirtied == {("routine", 100), ("cfg", 100), ("liveness", 100)}
    assert store.dirty_facts() == dirtied
    assert not store.is_dirty("cfg", 200)


def test_put_clears_dirty_and_rewires_deps():
    store = FactStore()
    store.put("routine", 100, {})
    store.put("cfg", 100, {}, (("routine", 100),))
    store.invalidate("routine", 100)
    store.put("routine", 100, {"v": 2})
    assert not store.is_dirty("routine", 100)
    assert store.is_dirty("cfg", 100)  # still awaiting re-derivation
    # Re-pointing cfg's deps elsewhere detaches it from routine 100.
    store.put("routine", 300, {})
    store.put("cfg", 100, {}, (("routine", 300),))
    assert store.invalidate("routine", 100) == {("routine", 100)}


def test_drop_removes_fact_and_edges():
    store = FactStore()
    store.put("routine", 100, {})
    store.put("cfg", 100, {}, (("routine", 100),))
    store.drop("cfg", 100)
    assert store.get("cfg", 100) is None
    assert store.invalidate("routine", 100) == {("routine", 100)}


def test_summary_round_trip_preserves_dependency_graph():
    store = FactStore()
    store.put("routine", 100, {"name": "a"})
    store.put("cfg", 100, {"blocks": []}, (("routine", 100),))
    store.put("callsites", 100, {"sites": []}, (("cfg", 100),))
    restored = FactStore.from_summary(store.to_summary())
    assert restored is not None
    assert len(restored) == len(store)
    assert restored.get("cfg", 100) == {"blocks": []}
    assert restored.invalidate("routine", 100) == {
        ("routine", 100), ("cfg", 100), ("callsites", 100)}


@pytest.mark.parametrize("mangle", [
    lambda s: "nope",
    lambda s: {"facts": "nope", "deps": []},
    lambda s: {"facts": [["cfg", "notanint", {}]], "deps": []},
    lambda s: {"facts": [[123, 4, {}]], "deps": []},
    # dangling dependency edge: references a fact that is not present
    lambda s: {"facts": [["cfg", 4, {}]],
               "deps": [[["cfg", 4], [["routine", 4]]]]},
])
def test_from_summary_rejects_malformed_tables(mangle):
    store = FactStore()
    store.put("routine", 100, {})
    assert FactStore.from_summary(mangle(store.to_summary())) is None


# ----------------------------------------------------------------------
# Rule derivation and dirty-set propagation on real executables
# ----------------------------------------------------------------------

def test_populate_covers_every_kind_for_every_routine():
    executable, store = _populated("interp")
    routines = executable.all_routines()
    for kind in fact_rules.KIND_ORDER:
        assert len(store.facts_of_kind(kind)) == len(routines)
    assert not store.dirty_facts()


def test_callee_edit_dirties_callers_callsites_fact():
    """The transitivity the dependency graph exists for: editing a
    callee invalidates the *caller's* call-graph fact, but not the
    caller's CFG."""
    executable, store = _populated("fib")
    fib = _routine(executable, "fib")
    main = _routine(executable, "main")
    sites = store.get("callsites", main.start)
    assert any(site.get("routine") == fib.start for site in sites)

    executable.invalidate_routine("fib")
    dirty = store.dirty_facts()
    assert ("callsites", main.start) in dirty
    assert ("cfg", main.start) not in dirty
    assert ("liveness", main.start) not in dirty
    assert _counter("facts.invalidated") == len(dirty)


def test_solve_rederives_only_the_edited_routine():
    executable, store = _populated("interp")
    metrics.reset()
    executable.invalidate_routine("step")
    rederived, refreshed = fact_rules.solve(executable, store)
    assert rederived == 1
    assert refreshed >= 1  # step's own dependents + callers' callsites
    assert _counter("facts.rederived") == 1
    assert _counter("cfg.builds") == 1  # only step's CFG was rebuilt
    assert _counter("facts.escalations") == 0
    assert not store.dirty_facts()


def test_solve_is_idempotent_when_nothing_is_dirty():
    executable, store = _populated("fib")
    before = {key: store.version("cfg", key)
              for key in store.facts_of_kind("cfg")}
    assert fact_rules.solve(executable, store) == (0, 0)
    for key, version in before.items():
        assert store.version("cfg", key) == version


def test_identical_rederivation_keeps_fact_versions_stable():
    executable, store = _populated("fib")
    fib = _routine(executable, "fib")
    version = store.version("cfg", fib.start)
    executable.invalidate_routine("fib")
    fact_rules.solve(executable, store)
    assert store.version("cfg", fib.start) == version


def test_invalidate_routine_rejects_unknown_names():
    executable, _ = _populated("fib")
    with pytest.raises(ExecutableError):
        executable.invalidate_routine("no_such_routine")


def test_signature_change_escalates_to_full_refinement():
    """A re-derived CFG whose interprocedural signature changed (new
    escape target, different dispatch table...) cannot be patched
    locally — the solver must re-run whole-image refinement."""
    executable, store = _populated("fib")
    main = _routine(executable, "main")
    doctored = dict(store.get("cfg", main.start))
    doctored["unreached"] = sorted(set(doctored.get("unreached", []))
                                   | {main.end - 4})
    store.put("cfg", main.start, doctored, (("routine", main.start),))
    metrics.reset()
    executable.invalidate_routine("main")
    fact_rules.solve(executable, store)
    assert _counter("facts.escalations") == 1
    # Escalation leaves a complete, clean store behind.
    assert not store.dirty_facts()
    for routine in executable.all_routines():
        assert store.get("cfg", routine.start) is not None
        assert routine.analysis_summary is not None


# ----------------------------------------------------------------------
# Warm-image single-routine edit (the tentpole acceptance scenario)
# ----------------------------------------------------------------------

def test_warm_image_single_routine_edit_rebuilds_one_cfg(tmp_path):
    with _env(REPRO_CACHE="on", REPRO_CACHE_DIR=str(tmp_path)):
        Executable(build_image("interp")).read_contents()  # seed the cache

        warm = Executable(build_image("interp")).read_contents()
        store = warm.fact_store()
        assert len(store.facts_of_kind("cfg")) == len(warm.all_routines())

        metrics.reset()
        warm.invalidate_routine("step")
        warm.reanalyze()
        assert _counter("facts.rederived") == 1
        assert _counter("cfg.builds") == 1
        # The re-derived view is usable immediately, without touching
        # any other routine's analysis.
        cfg = _routine(warm, "step").control_flow_graph()
        assert cfg.blocks
        assert _counter("cfg.builds") == 1


def test_warm_image_untouched_routines_stay_restored(tmp_path):
    with _env(REPRO_CACHE="on", REPRO_CACHE_DIR=str(tmp_path)):
        Executable(build_image("interp")).read_contents()
        warm = Executable(build_image("interp")).read_contents()
        warm.invalidate_routine("step")
        warm.reanalyze()
        metrics.reset()
        for routine in warm.all_routines():
            routine.control_flow_graph().live_registers()
        assert _counter("cfg.builds") == 0  # everything came from facts


# ----------------------------------------------------------------------
# Adoption: the fuzz shrinker's parent-plan reuse
# ----------------------------------------------------------------------

def test_read_contents_adopts_byte_identical_routines():
    with _env(REPRO_CACHE="off"):
        donor = Executable(build_image("fib")).read_contents()
        from repro.fuzz.campaign import _adoptable_facts

        adoptable = _adoptable_facts(donor)
        assert adoptable
        metrics.reset()
        child = Executable(build_image("fib")).read_contents(adopt=adoptable)
        assert _counter("facts.adopted") > 0
        assert _counter("cfg.builds") == 0
        names = {routine.name for routine in donor.all_routines()}
        assert {r.name for r in child.all_routines()} == names


def test_adoption_ignores_stale_text_hashes():
    with _env(REPRO_CACHE="off"):
        donor = Executable(build_image("fib")).read_contents()
        from repro.fuzz.campaign import _adoptable_facts

        adoptable = _adoptable_facts(donor)
        for record in adoptable.values():
            record["text_hash"] = "0" * 16  # pretend the bytes changed
        metrics.reset()
        child = Executable(build_image("fib")).read_contents(adopt=adoptable)
        assert _counter("facts.adopted") == 0
        assert _counter("cfg.builds") > 0
        assert {r.name for r in child.all_routines()} \
            == {r.name for r in donor.all_routines()}
