"""Simulator semantics: condition codes, windows, delay slots, syscalls."""

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.sim import MemoryFault, Simulator, run_image
from repro.sim.machine import SimulationError
from repro.sim.memory import Memory


def run_sparc(body, **kwargs):
    source = """
        .text
        .global _start
    _start:
    %s
        mov %%l7, %%o0
        mov 2, %%g1
        ta 0
        clr %%o0
        mov 1, %%g1
        ta 0
    """ % body
    image = link([assemble(source, "sparc")])
    simulator = run_image(image, **kwargs)
    return simulator


def result_of(body, **kwargs):
    return int(run_sparc(body, **kwargs).output)


def test_arithmetic():
    assert result_of("mov 20, %l0\nadd %l0, 22, %l7") == 42
    assert result_of("mov 5, %l0\nsub %l0, 9, %l7") == -4
    assert result_of("mov 6, %l0\nmov 7, %l1\nsmul %l0, %l1, %l7") == 42
    assert result_of("mov -20, %l0\nmov 3, %l1\nsdiv %l0, %l1, %l7") == -6


def test_logic_and_shifts():
    assert result_of("mov 12, %l0\nand %l0, 10, %l7") == 8
    assert result_of("mov 12, %l0\nxor %l0, 10, %l7") == 6
    assert result_of("mov 1, %l0\nsll %l0, 10, %l7") == 1024
    assert result_of("mov -8, %l0\nsra %l0, 1, %l7") == -4
    assert result_of("mov -8, %l0\nsrl %l0, 28, %l7") == 15


def test_condition_codes_signed():
    # 5 - 9: negative, no overflow -> bl taken
    body = """
        mov 5, %l0
        cmp %l0, 9
        bl yes
        nop
        mov 0, %l7
        b done
        nop
    yes:
        mov 1, %l7
    done:
    """
    assert result_of(body) == 1


def test_condition_codes_unsigned():
    # 1 < 0xFFFFFFFF unsigned: bgu untaken, bleu taken
    body = """
        mov 1, %l0
        cmp %l0, -1
        bgu yes
        nop
        mov 0, %l7
        b done
        nop
    yes:
        mov 1, %l7
    done:
    """
    assert result_of(body) == 0


def test_overflow_flag():
    body = """
        set 0x7fffffff, %l0
        addcc %l0, 1, %l1
        bvs yes
        nop
        mov 0, %l7
        b done
        nop
    yes:
        mov 1, %l7
    done:
    """
    assert result_of(body) == 1


def test_delay_slot_executes_on_taken_and_untaken():
    body = """
        mov 0, %l7
        cmp %g0, %g0
        be target
        add %l7, 1, %l7     ! delay: executes although branch taken
    target:
        add %l7, 10, %l7
    """
    assert result_of(body) == 11


def test_annulled_branch_untaken_skips_delay():
    body = """
        mov 0, %l7
        cmp %g0, 1
        be,a target
        add %l7, 100, %l7   ! annulled: must NOT execute (untaken)
        add %l7, 1, %l7
    target:
        add %l7, 10, %l7
    """
    assert result_of(body) == 11


def test_annulled_branch_taken_executes_delay():
    body = """
        mov 0, %l7
        cmp %g0, %g0
        be,a target
        add %l7, 100, %l7   ! annulled but taken: executes
        add %l7, 1, %l7     ! skipped by the branch
    target:
        add %l7, 10, %l7
    """
    assert result_of(body) == 110


def test_ba_annulled_never_runs_delay():
    body = """
        mov 0, %l7
        ba,a target
        add %l7, 100, %l7   ! never executes
    target:
        add %l7, 10, %l7
    """
    assert result_of(body) == 10


def test_register_windows_save_restore():
    body = """
        mov 5, %l0
        call f
        nop
        add %o0, 0, %l7
        b end
        nop
    f:
        save %sp, -96, %sp
        mov 37, %l0          ! callee's %l0 is fresh
        add %i0, %l0, %i0
        ret
        restore
    end:
    """
    # %o0 was 5's... caller didn't set %o0; check callee independence:
    source_result = result_of("mov 2, %o0\n" + body)
    assert source_result == 39  # 2 + 37


def test_window_underflow():
    image = link([assemble("""
        .text
        .global _start
    _start:
        restore
    """, "sparc")])
    with pytest.raises(SimulationError):
        Simulator(image).run()


def test_division_by_zero():
    image = link([assemble("""
        .text
        .global _start
    _start:
        mov 1, %l0
        sdiv %l0, %g0, %l1
    """, "sparc")])
    with pytest.raises(SimulationError):
        Simulator(image).run()


def test_illegal_instruction():
    image = link([assemble("""
        .text
        .global _start
    _start:
        .word 0x00000000  ! decodes as invalid on SPARC
    """, "sparc")])
    # .word directive is rejected in .text by the assembler... build raw:
    from repro.binfmt import Image, Section
    from repro.binfmt.image import SEC_EXEC

    raw = Image("sparc", kind="exec", entry=0x1000)
    text = Section(".text", vaddr=0x1000, flags=SEC_EXEC)
    text.append_word(0)
    raw.add_section(text)
    with pytest.raises(SimulationError):
        Simulator(raw).run()


def test_runaway_guard():
    image = link([assemble("""
        .text
        .global _start
    _start:
        b _start
        nop
    """, "sparc")])
    with pytest.raises(SimulationError):
        Simulator(image, max_steps=1000).run()


def _misaligned_load_image():
    return link([assemble("""
        .text
        .global _start
    _start:
        mov 3, %l0
        ld [%l0], %l1
    """, "sparc")])


def test_misaligned_load_faults_in_strict_mode():
    with pytest.raises(MemoryFault):
        Simulator(_misaligned_load_image(), strict_memory=True).run()


def test_misaligned_access_byte_wise_by_default():
    """Non-strict mode performs misaligned accesses byte-wise, matching
    how SPARC systems emulate them in the alignment trap handler."""
    memory = Memory()
    memory.write_bytes(0x1000, bytes(range(1, 9)))
    assert memory.load(0x1001, 4) == 0x02030405
    assert memory.load(0x1001, 2) == 0x0203
    memory.store(0x1003, 4, 0xAABBCCDD)
    assert memory.read_bytes(0x1000, 8) == \
        bytes([1, 2, 3, 0xAA, 0xBB, 0xCC, 0xDD, 8])
    # Signed reassembly and page-boundary straddling both work.
    memory.store(0xFFE, 4, 0x8899AABB)
    assert memory.load(0xFFE, 4, signed=True) == -0x77665545
    assert memory.load(0xFFF, 2) == 0x99AA


def test_misaligned_strict_memory_store_faults():
    memory = Memory(strict=True)
    with pytest.raises(MemoryFault):
        memory.store(0x1002, 4, 1)
    with pytest.raises(MemoryFault):
        memory.load(0x1001, 2)


def test_syscalls_io():
    source = """
        .text
        .global _start
    _start:
        mov 5, %g1          ! read_int
        ta 0
        mov %o0, %l5
        mov 5, %g1
        ta 0
        add %l5, %o0, %o0
        mov 2, %g1          ! print_int
        ta 0
        mov 10, %o0
        mov 3, %g1          ! print_char
        ta 0
        mov 7, %g1          ! read_char (EOF -> -1)
        ta 0
        mov %o0, %o0
        mov 2, %g1
        ta 0
        clr %o0
        mov 1, %g1
        ta 0
    """
    image = link([assemble(source, "sparc")])
    # read_int consumes tokens; read_char reads the raw character stream,
    # so it sees '2' (ASCII 50) here.
    simulator = run_image(image, stdin_text="20 22")
    assert simulator.output == "42\n50"
    # With empty stdin, read_char reports EOF (-1).
    simulator = run_image(image, stdin_text="")
    assert simulator.output == "0\n-1"


def test_sbrk_monotonic():
    source = """
        .text
        .global _start
    _start:
        mov 16, %o0
        mov 6, %g1
        ta 0
        mov %o0, %l5
        mov 16, %o0
        mov 6, %g1
        ta 0
        sub %o0, %l5, %o0
        mov 2, %g1
        ta 0
        clr %o0
        mov 1, %g1
        ta 0
    """
    image = link([assemble(source, "sparc")])
    simulator = run_image(image)
    assert int(simulator.output) == 16


def test_cycles_counter():
    simulator = run_sparc("mov 8, %g1\nta 0\nmov %o0, %l7")
    assert int(simulator.output) > 0


def test_pc_counts():
    simulator = run_sparc("mov 1, %l7", count_pcs=True)
    entry = simulator.image.entry
    assert simulator.pc_counts[entry] == 1


def test_memory_bulk_roundtrip():
    memory = Memory()
    memory.write_bytes(0xFFF, b"span across a page boundary")
    assert memory.read_bytes(0xFFF, 27) == b"span across a page boundary"


def test_memory_widths():
    memory = Memory()
    memory.store(100, 4, 0x80000001)
    assert memory.load(100, 4) == 0x80000001
    assert memory.load(100, 1) == 0x80
    assert memory.load(100, 1, signed=True) == -128
    memory.store(200, 2, 0xBEEF)
    assert memory.load(200, 2, signed=True) == -16657


def test_cstring():
    memory = Memory()
    memory.write_bytes(0x500, b"hello\x00junk")
    assert memory.read_cstring(0x500) == "hello"


def test_flyweight_cache_cap_and_eviction():
    """The prepared-op cache stays bounded; eviction keeps hit/miss
    accounting consistent (a re-missed instruction recompiles and is
    counted as a miss again)."""
    source = """
        .text
        .global _start
    _start:
        mov 100, %l0
        clr %l7
    loop:
        add %l7, 1, %l7
        subcc %l0, 1, %l0
        bne loop
        nop
        mov %l7, %o0
        mov 2, %g1
        ta 0
        clr %o0
        mov 1, %g1
        ta 0
    """
    image = link([assemble(source, "sparc")])
    # Pinned to the per-instruction engine: the prepared-op cache is
    # the subject here, and the block engine only touches it on its
    # single-step fallback.
    simulator = Simulator(image, prepared_cache_cap=4, engine="handwritten")
    simulator.run()
    assert simulator.output == "100"
    cpu = simulator.cpu
    assert len(cpu._prepared) <= 4
    assert cpu.evictions > 0
    # Every execution is either a hit or a compile, even after eviction.
    assert cpu.compiles <= simulator.instructions_executed
    assert cpu.compiles > 4  # the loop body re-misses after eviction

    # An uncapped run of the same program never evicts.
    simulator = Simulator(image, engine="handwritten")
    simulator.run()
    assert simulator.cpu.evictions == 0

    # A cap below one is a configuration error, not a mode.
    with pytest.raises(ValueError):
        Simulator(image, prepared_cache_cap=0)


# -- MIPS ---------------------------------------------------------------

def run_mips(body, **kwargs):
    source = """
        .text
        .global _start
    _start:
    %s
        move $a0, $s7
        li $v0, 2
        syscall
        li $a0, 0
        li $v0, 1
        syscall
    """ % body
    image = link([assemble(source, "mips")])
    return run_image(image, **kwargs)


def mips_result(body, **kwargs):
    return int(run_mips(body, **kwargs).output)


def test_mips_arithmetic():
    assert mips_result("li $t0, 40\naddiu $s7, $t0, 2") == 42
    assert mips_result("li $t0, 6\nli $t1, 7\nmult $t0, $t1\nmflo $s7") == 42
    assert mips_result("li $t0, -20\nli $t1, 3\ndiv $t0, $t1\nmflo $s7") \
        == -6
    assert mips_result("li $t0, -20\nli $t1, 3\ndiv $t0, $t1\nmfhi $s7") \
        == -2


def test_mips_slt():
    assert mips_result("li $t0, -1\nli $t1, 1\nslt $s7, $t0, $t1") == 1
    assert mips_result("li $t0, -1\nli $t1, 1\nsltu $s7, $t0, $t1") == 0


def test_mips_delay_slot():
    body = """
        li $s7, 0
        beq $zero, $zero, over
        addiu $s7, $s7, 1     # delay slot executes
        addiu $s7, $s7, 100   # skipped
    over:
        addiu $s7, $s7, 10
    """
    assert mips_result(body) == 11


def test_mips_branch_likely_untaken_annuls():
    body = """
        li $s7, 0
        li $t0, 1
        beql $t0, $zero, over
        addiu $s7, $s7, 100   # annulled: not executed (branch untaken)
        addiu $s7, $s7, 1
    over:
        addiu $s7, $s7, 10
    """
    assert mips_result(body) == 11


def test_mips_branch_likely_taken_executes_slot():
    body = """
        li $s7, 0
        beql $zero, $zero, over
        addiu $s7, $s7, 100   # likely and taken: executed
        addiu $s7, $s7, 1
    over:
        addiu $s7, $s7, 10
    """
    assert mips_result(body) == 110


def test_mips_jal_ra():
    body = """
        jal sub
        nop
        b fin
        nop
    sub:
        li $s7, 77
        jr $ra
        nop
    fin:
    """
    assert mips_result(body) == 77


def test_telemetry_flush_reports_deltas_not_totals():
    """A simulator flushed twice (cosim does this; resumed runs do too)
    must not re-merge instructions/compiles/evictions it already
    reported (regression: sim.flyweight.evictions double-counting)."""
    from repro.obs import metrics

    source = """
        .text
        .global _start
    _start:
        mov 40, %l0
        add %l0, 2, %o0
        mov 1, %g1
        ta 0
    """
    image = link([assemble(source, "sparc")])
    # Handwritten engine: the flyweight eviction regression under test
    # lives in the per-instruction dispatch loop.
    simulator = Simulator(image, prepared_cache_cap=4, engine="handwritten")
    simulator.run()
    names = ("sim.instructions", "sim.flyweight.compiles",
             "sim.flyweight.evictions", "sim.flyweight.hits")
    before = {name: metrics.counter(name).value for name in names}
    assert before["sim.flyweight.evictions"] > 0  # the cap actually bit
    simulator._record_telemetry()  # reused simulator, nothing new ran
    for name in names:
        assert metrics.counter(name).value == before[name], name
