"""Command-line interface."""

import pytest

from repro.cli import main


def test_build_and_run(tmp_path, capsys):
    out = str(tmp_path / "fib.eelf")
    assert main(["build", "fib", out]) == 0
    assert main(["run", out]) == 0
    captured = capsys.readouterr()
    assert "fib 1597" in captured.out


def test_build_unknown_workload(tmp_path):
    assert main(["build", "nonesuch", str(tmp_path / "x")]) == 1


def test_routines_listing(tmp_path, capsys):
    out = str(tmp_path / "fib.eelf")
    main(["build", "fib", out])
    assert main(["routines", out]) == 0
    captured = capsys.readouterr()
    assert "fib" in captured.out and "main" in captured.out


def test_disasm(tmp_path, capsys):
    out = str(tmp_path / "fib.eelf")
    main(["build", "fib", out])
    assert main(["disasm", out]) == 0
    captured = capsys.readouterr()
    assert "save" in captured.out and "call" in captured.out


def test_profile_roundtrip(tmp_path, capsys):
    src = str(tmp_path / "fib.eelf")
    dst = str(tmp_path / "fib.prof.eelf")
    main(["build", "fib", src])
    assert main(["profile", src, dst, "--mode", "edge"]) == 0
    captured = capsys.readouterr()
    assert "fib 1597" in captured.out
    assert main(["run", dst]) == 0
    captured = capsys.readouterr()
    assert "fib 1597" in captured.out


def test_run_output_ends_with_newline(tmp_path, capsys):
    out = str(tmp_path / "fib.eelf")
    main(["build", "fib", out])
    main(["run", out])
    captured = capsys.readouterr()
    # Program stdout is newline-terminated so the stderr trailer can
    # never interleave mid-line, and the trailer is its own line.
    assert captured.out.endswith("\n")
    assert captured.err.startswith("[exit ")


def test_stats_reports_pipeline_counters(tmp_path, capsys):
    import json

    out = str(tmp_path / "interp.eelf")
    main(["build", "interp", out])
    capsys.readouterr()
    assert main(["stats", out]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == "repro.obs/1"
    counters = report["counters"]
    assert counters["cfg.blocks"] > 0
    assert counters["cfg.delay_hoists"] > 0
    assert counters["indirect.table"] >= 1
    assert counters["sim.instructions"] > 0
    assert "sim.flyweight.hit_rate" in report["derived"]
    span_names = {node["name"] for node in report["spans"]}
    assert "stats" in span_names


def test_stats_warm_run_skips_routine_analysis(tmp_path, capsys, monkeypatch):
    """Second stats run of the same binary restores from the analysis
    cache: cache.hits > 0 and zero cfg.build work (acceptance check)."""
    import json

    monkeypatch.setenv("REPRO_CACHE", "on")
    out = str(tmp_path / "interp.eelf")
    main(["build", "interp", out])
    capsys.readouterr()
    assert main(["stats", out, "--no-run"]) == 0  # populates the cache
    first = json.loads(capsys.readouterr().out)
    assert main(["stats", out, "--no-run", "--jobs", "2"]) == 0
    warm = json.loads(capsys.readouterr().out)

    counters = warm["counters"]
    assert counters["cache.hits"] == 1
    assert counters["cache.misses"] == 0
    assert counters["cfg.builds"] == 0
    assert counters["cache.restored_cfgs"] > 0
    assert warm["cache"]["enabled"] is True
    assert warm["cache"]["hit_rate"] == 1.0
    # Restored counters match what the first run reported.
    assert counters["cfg.blocks"] == first["counters"]["cfg.blocks"]
    assert counters["cfg.edges"] == first["counters"]["cfg.edges"]

    def span_names(nodes):
        names = set()
        for node in nodes:
            names.add(node["name"])
            names |= span_names(node["children"])
        return names

    names = span_names(warm["spans"])
    assert "cfg.build" not in names
    assert "cache.restore" in names


def test_run_stats_json_and_trace(tmp_path, capsys):
    import json

    exe = str(tmp_path / "fib.eelf")
    stats = str(tmp_path / "stats.json")
    main(["build", "fib", exe])
    capsys.readouterr()
    assert main(["run", exe, "--trace", "--stats-json", stats]) == 0
    captured = capsys.readouterr()
    assert "fib 1597" in captured.out
    assert "sim.run" in captured.err  # span tree on stderr
    with open(stats) as handle:
        report = json.load(handle)
    assert report["counters"]["sim.runs"] == 1
    assert report["derived"]["sim.flyweight.hit_rate"] > 0


def test_cachesim(tmp_path, capsys):
    src = str(tmp_path / "sieve.eelf")
    main(["build", "sieve", src])
    assert main(["cachesim", src]) == 0
    captured = capsys.readouterr()
    assert "sieve 303" in captured.out
    assert "misses" in captured.err


def test_run_max_steps_reports_timeout(tmp_path, capsys):
    exe = str(tmp_path / "fib.eelf")
    main(["build", "fib", exe])
    capsys.readouterr()
    assert main(["run", exe, "--max-steps", "100"]) == 1
    captured = capsys.readouterr()
    assert "simulation error" in captured.err
    assert "100 steps" in captured.err


def test_disasm_annotates_routines(tmp_path, capsys):
    exe = str(tmp_path / "fib.eelf")
    main(["build", "fib", exe])
    capsys.readouterr()
    assert main(["disasm", exe, "--jobs", "2"]) == 0
    captured = capsys.readouterr()
    assert "; routine fib" in captured.out


def test_verify_subcommand(capsys):
    assert main(["verify", "mips_sum", "--no-memo"]) == 0
    captured = capsys.readouterr()
    assert "mips_sum[qpt]: PASS" in captured.out
    assert "verified 1/1" in captured.err


def test_verify_rejects_bad_usage(capsys):
    assert main(["verify"]) == 1
    assert main(["verify", "nonesuch"]) == 1
    assert main(["verify", "mips_sum", "--tool", "sfi"]) == 1
    captured = capsys.readouterr()
    assert "available" in captured.err


def test_fuzz_rejects_bad_usage(tmp_path, capsys):
    assert main(["fuzz", "--seeds", "0"]) == 1
    assert main(["fuzz", "--seeds", "-5"]) == 1
    assert main(["fuzz", "--time-budget", "0"]) == 1
    assert main(["fuzz", "--jobs", "0"]) == 1
    assert main(["fuzz", "--corpus-only",
                 "--corpus", str(tmp_path / "absent")]) == 1
    captured = capsys.readouterr()
    assert "must be positive" in captured.err
    assert "does not exist" in captured.err


def test_fuzz_tiny_campaign(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    assert main(["fuzz", "--seeds", "2", "--corpus", corpus]) == 0
    captured = capsys.readouterr()
    assert "2 seeds" in captured.out
    assert "PASS" in captured.out


def test_fuzz_corpus_only_happy_path(tmp_path, capsys):
    import json

    from repro.fuzz.corpus import make_entry, save_entry
    from repro.fuzz.gen import build_plan

    corpus = str(tmp_path / "corpus")
    # A clean plan stored as "fixed" must replay clean.
    entry = make_entry("verify:qpt", "regression guard", 0,
                       build_plan(0), status="fixed")
    save_entry(corpus, entry)
    assert main(["fuzz", "--corpus-only", "--corpus", corpus]) == 0
    captured = capsys.readouterr()
    assert "0 failed" in captured.out
    # Corrupt the stored entry: replay must now flag it.
    path = tmp_path / "corpus" / (entry["id"] + ".json")
    data = json.loads(path.read_text())
    del data["plan"]
    path.write_text(json.dumps(data))
    assert main(["fuzz", "--corpus-only", "--corpus", corpus]) == 1
    captured = capsys.readouterr()
    assert "missing field" in captured.err
