"""Command-line interface."""

import pytest

from repro.cli import main


def test_build_and_run(tmp_path, capsys):
    out = str(tmp_path / "fib.eelf")
    assert main(["build", "fib", out]) == 0
    assert main(["run", out]) == 0
    captured = capsys.readouterr()
    assert "fib 1597" in captured.out


def test_build_unknown_workload(tmp_path):
    assert main(["build", "nonesuch", str(tmp_path / "x")]) == 1


def test_routines_listing(tmp_path, capsys):
    out = str(tmp_path / "fib.eelf")
    main(["build", "fib", out])
    assert main(["routines", out]) == 0
    captured = capsys.readouterr()
    assert "fib" in captured.out and "main" in captured.out


def test_disasm(tmp_path, capsys):
    out = str(tmp_path / "fib.eelf")
    main(["build", "fib", out])
    assert main(["disasm", out]) == 0
    captured = capsys.readouterr()
    assert "save" in captured.out and "call" in captured.out


def test_profile_roundtrip(tmp_path, capsys):
    src = str(tmp_path / "fib.eelf")
    dst = str(tmp_path / "fib.prof.eelf")
    main(["build", "fib", src])
    assert main(["profile", src, dst, "--mode", "edge"]) == 0
    captured = capsys.readouterr()
    assert "fib 1597" in captured.out
    assert main(["run", dst]) == 0
    captured = capsys.readouterr()
    assert "fib 1597" in captured.out


def test_cachesim(tmp_path, capsys):
    src = str(tmp_path / "sieve.eelf")
    main(["build", "sieve", src])
    assert main(["cachesim", src]) == 0
    captured = capsys.readouterr()
    assert "sieve 303" in captured.out
    assert "misses" in captured.err
