"""Direct unit tests for the analysis primitives: dominators + slicing.

Both modules only touch a narrow structural surface (block ids,
successor/predecessor iteration, instruction read/write inquiries), so
hand-built stub CFGs pin their behavior down exactly — no assembler,
no refinement, no real ISA.
"""

from repro.core.analysis.dominators import dominates, dominators
from repro.core.analysis.slicing import Slice, backward_slice


# ----------------------------------------------------------------------
# Stub graph machinery
# ----------------------------------------------------------------------

class StubInstruction:
    def __init__(self, writes=(), reads=(), is_memory=False, is_load=False,
                 is_call=False, is_system=False):
        self._writes = frozenset(writes)
        self._reads = frozenset(reads)
        self.is_memory = is_memory
        self.is_load = is_load
        self.is_call = is_call
        self.is_system = is_system

    def writes_register(self, reg):
        return reg in self._writes

    def reads(self):
        return set(self._reads)


class StubEdge:
    def __init__(self, src, dst):
        self.src = src
        self.dst = dst


class StubBlock:
    def __init__(self, block_id, kind="normal", instructions=()):
        self.id = block_id
        self.kind = kind
        self.instructions = [(4 * i, instruction)
                             for i, instruction in enumerate(instructions)]
        self.succ = []
        self.pred = []

    def successors(self):
        return [edge.dst for edge in self.succ]

    def predecessors(self):
        return [edge.src for edge in self.pred]

    def __repr__(self):
        return "StubBlock(%d)" % self.id


class StubCFG:
    def __init__(self, entry):
        self.entry = entry


def connect(src, dst):
    edge = StubEdge(src, dst)
    src.succ.append(edge)
    dst.pred.append(edge)


def build(edges, count):
    blocks = [StubBlock(i) for i in range(count)]
    for src, dst in edges:
        connect(blocks[src], blocks[dst])
    return blocks


# ----------------------------------------------------------------------
# Dominators
# ----------------------------------------------------------------------

def test_dominators_diamond():
    # 0 -> 1 -> {2, 3} -> 4
    blocks = build([(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)], 5)
    idom = dominators(StubCFG(blocks[0]))
    assert idom[blocks[0]] is blocks[0]
    assert idom[blocks[1]] is blocks[0]
    assert idom[blocks[2]] is blocks[1]
    assert idom[blocks[3]] is blocks[1]
    # The join is dominated by the branch head, not either arm.
    assert idom[blocks[4]] is blocks[1]
    assert dominates(idom, blocks[1], blocks[4])
    assert not dominates(idom, blocks[2], blocks[4])
    assert not dominates(idom, blocks[3], blocks[4])


def test_dominators_loop_back_edge():
    # 0 -> 1 -> 2 -> 3 -> 1 (back edge), 3 -> 4
    blocks = build([(0, 1), (1, 2), (2, 3), (3, 1), (3, 4)], 5)
    idom = dominators(StubCFG(blocks[0]))
    assert idom[blocks[1]] is blocks[0]
    assert idom[blocks[2]] is blocks[1]
    assert idom[blocks[3]] is blocks[2]
    assert idom[blocks[4]] is blocks[3]
    # The loop header dominates every loop block despite the cycle.
    assert dominates(idom, blocks[1], blocks[3])
    assert not dominates(idom, blocks[3], blocks[1])


def test_dominators_irreducible_region():
    # 0 -> {1, 2}, 1 <-> 2, both -> 3: neither cycle member dominates
    # the other, so both (and the exit) are dominated by the fork.
    blocks = build([(0, 1), (0, 2), (1, 2), (2, 1), (1, 3), (2, 3)], 4)
    idom = dominators(StubCFG(blocks[0]))
    assert idom[blocks[1]] is blocks[0]
    assert idom[blocks[2]] is blocks[0]
    assert idom[blocks[3]] is blocks[0]
    assert not dominates(idom, blocks[1], blocks[2])
    assert not dominates(idom, blocks[2], blocks[1])


def test_dominators_unreachable_block_is_omitted():
    blocks = build([(0, 1)], 3)  # block 2 has no path from entry
    idom = dominators(StubCFG(blocks[0]))
    assert blocks[2] not in idom
    assert not dominates(idom, blocks[0], blocks[2])


# ----------------------------------------------------------------------
# Backward slicing
# ----------------------------------------------------------------------

def test_slice_constant_definition_is_easy():
    block = StubBlock(0, instructions=[
        StubInstruction(writes={1}),              # li r1, const
        StubInstruction(writes={9}, reads={1}),   # use
    ])
    result = backward_slice(None, block, 1, 1)
    assert result.easy == [(block, 0)]
    assert not result.hard
    assert result.complete


def test_slice_follows_register_chain_as_hard():
    block = StubBlock(0, instructions=[
        StubInstruction(writes={2}),              # li r2
        StubInstruction(writes={1}, reads={2}),   # add r1 <- r2
    ])
    result = backward_slice(None, block, 2, 1)
    assert result.hard == [(block, 1)]
    assert result.easy == [(block, 0)]
    assert result.complete


def test_slice_load_is_hard_and_slices_address_registers():
    block = StubBlock(0, instructions=[
        StubInstruction(writes={3}),                          # li r3 (base)
        StubInstruction(writes={1}, reads={3}, is_memory=True,
                        is_load=True),                        # ld r1, [r3]
    ])
    result = backward_slice(None, block, 2, 1)
    assert (block, 1) in result.hard
    assert (block, 0) in result.easy
    assert result.complete


def test_slice_value_through_call_is_impossible():
    block = StubBlock(0, instructions=[
        StubInstruction(writes={1}, is_call=True),
    ])
    result = backward_slice(None, block, 1, 1)
    assert result.impossible == [(block, 0)]
    assert not result.complete


def test_slice_undefined_register_reaches_entry_as_impossible():
    entry = StubBlock(0, kind="entry")
    block = StubBlock(1, instructions=[StubInstruction(writes={9})])
    connect(entry, block)
    result = backward_slice(None, block, 1, 5)  # r5 never defined
    assert result.impossible  # parameter/caller state
    assert not result.complete


def test_slice_crossing_call_surrogate_is_impossible():
    surrogate = StubBlock(0, kind="surrogate")
    block = StubBlock(1, instructions=[StubInstruction(writes={9})])
    connect(surrogate, block)
    result = backward_slice(None, block, 1, 5)
    assert result.impossible == [(surrogate, 0)]


def test_slice_terminates_on_definition_free_cycle():
    a = StubBlock(0)
    b = StubBlock(1)
    connect(a, b)
    connect(b, a)
    result = backward_slice(None, a, 0, 7)
    assert isinstance(result, Slice)  # terminated; nothing found
    assert not result.easy and not result.hard


def test_slice_depth_limit_reports_impossible():
    # A long predecessor chain with the definition past the limit.
    blocks = [StubBlock(i) for i in range(10)]
    for i in range(9):
        connect(blocks[i], blocks[i + 1])
    blocks[0].instructions = [(0, StubInstruction(writes={1}))]
    result = backward_slice(None, blocks[9], 0, 1, max_depth=3)
    assert result.impossible
    assert not result.complete
