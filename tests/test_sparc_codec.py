"""Handwritten SPARC codec: decode, encode, classify."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import get_codec
from repro.isa.base import Category, SpanError

codec = get_codec("sparc")


def test_alu_roundtrip_immediate():
    word = codec.encode("add", rd=9, rs1=8, simm13=-42)
    inst = codec.decode(word)
    assert inst.name == "add"
    assert inst.get_field("simm13") == -42
    assert inst.get_field("rd") == 9
    assert inst.category is Category.COMPUTE


def test_alu_roundtrip_register():
    word = codec.encode("xor", rd=2, rs1=3, rs2=4)
    inst = codec.decode(word)
    assert inst.reads == frozenset({3, 4})
    assert inst.writes == frozenset({2})


def test_g0_writes_discarded_from_sets():
    word = codec.encode("subcc", rd=0, rs1=8, simm13=5)  # cmp
    inst = codec.decode(word)
    assert 0 not in inst.writes
    assert 32 in inst.writes  # %icc


def test_cc_ops_write_icc():
    for name in ("addcc", "andcc", "orcc", "xorcc", "subcc"):
        inst = codec.decode(codec.encode(name, rd=1, rs1=2, rs2=3))
        assert 32 in inst.writes, name


def test_sethi():
    word = codec.encode("sethi", rd=4, imm22=0x12345)
    inst = codec.decode(word)
    assert inst.name == "sethi"
    assert inst.get_field("imm22") == 0x12345
    assert inst.writes == frozenset({4})


def test_nop_is_sethi_zero():
    inst = codec.decode(codec.nop_word)
    assert inst.name == "sethi"
    assert inst.writes == frozenset()


def test_call():
    word = codec.encode("call", disp30=0x100)
    inst = codec.decode(word)
    assert inst.category is Category.CALL
    assert inst.is_delayed
    assert inst.writes == frozenset({15})
    assert codec.control_target(inst, 0x1000) == 0x1000 + 0x400


def test_branch_variants():
    plain = codec.decode(codec.encode("bne", disp22=4))
    assert plain.category is Category.BRANCH
    assert plain.cond == "ne"
    assert plain.is_delayed and not plain.annul_untaken
    annulled = codec.decode(codec.encode("bne,a", disp22=4))
    assert annulled.annul_untaken and annulled.is_delayed
    assert annulled.reads == frozenset({32})


def test_ba_annulled_has_no_delay():
    inst = codec.decode(codec.encode("ba,a", disp22=-2))
    assert inst.cond == "a"
    assert not inst.is_delayed
    assert not inst.annul_untaken


def test_branch_always_and_never_read_no_cc():
    for name in ("ba", "bn"):
        inst = codec.decode(codec.encode(name, disp22=1))
        assert inst.reads == frozenset()


def test_branch_target_negative():
    inst = codec.decode(codec.encode("be", disp22=-3))
    assert codec.control_target(inst, 0x2000) == 0x2000 - 12


def test_jmpl_overloads():
    icall = codec.decode(codec.encode("jmpl", rd=15, rs1=9, simm13=0))
    assert icall.category is Category.CALL_INDIRECT
    ret = codec.decode(codec.encode("jmpl", rd=0, rs1=31, simm13=8))
    assert ret.category is Category.RETURN
    retl = codec.decode(codec.encode("jmpl", rd=0, rs1=15, simm13=8))
    assert retl.category is Category.RETURN
    literal = codec.decode(codec.encode("jmpl", rd=0, rs1=0, simm13=64))
    assert literal.category is Category.JUMP
    assert codec.control_target(literal, 0) == 64
    indirect = codec.decode(codec.encode("jmpl", rd=0, rs1=9, simm13=0))
    assert indirect.category is Category.JUMP_INDIRECT


def test_loads_and_stores():
    load = codec.decode(codec.encode("ldsb", rd=3, rs1=14, simm13=-1))
    assert load.category is Category.LOAD
    assert load.mem_width == 1 and load.mem_signed
    store = codec.decode(codec.encode("sth", rd=3, rs1=14, simm13=2))
    assert store.category is Category.STORE
    assert store.mem_width == 2
    assert 3 in store.reads  # stored value is read


def test_trap():
    inst = codec.decode(codec.encode("ta", trap_num=0))
    assert inst.category is Category.SYSTEM
    assert 1 in inst.reads  # %g1 syscall number


def test_save_restore():
    save = codec.decode(codec.encode("save", rd=14, rs1=14, simm13=-96))
    assert save.category is Category.COMPUTE
    assert save.name == "save"


def test_invalid_word():
    inst = codec.decode(0x00000000)
    assert inst.category is Category.INVALID
    assert not inst.is_valid


def test_decode_interning():
    word = codec.encode("add", rd=1, rs1=2, simm13=3)
    assert codec.decode(word) is codec.decode(word)


def test_with_control_target_branch():
    word = codec.encode("bne", disp22=0)
    patched = codec.with_control_target(word, 0x1000, 0x1040)
    assert codec.control_target(codec.decode(patched), 0x1000) == 0x1040


def test_with_control_target_span_error():
    word = codec.encode("bne", disp22=0)
    with pytest.raises(SpanError):
        codec.with_control_target(word, 0, 0x4000000)


def test_with_control_target_misaligned():
    word = codec.encode("call", disp30=0)
    with pytest.raises(SpanError):
        codec.with_control_target(word, 0, 0x1002)


def test_invert_branch():
    word = codec.encode("bne", disp22=7)
    assert codec.decode(codec.invert_branch(word)).cond == "e"
    word = codec.encode("bgu", disp22=7)
    assert codec.decode(codec.invert_branch(word)).cond == "leu"


def test_invert_non_branch_raises():
    with pytest.raises(ValueError):
        codec.invert_branch(codec.encode("add", rd=1, rs1=1, simm13=1))


def test_clear_annul():
    word = codec.encode("bne,a", disp22=7)
    cleared = codec.decode(codec.clear_annul(word))
    assert not cleared.annul_untaken
    assert cleared.cond == "ne"


def test_disassemble_smoke():
    assert codec.disassemble(codec.encode("add", rd=9, rs1=8, simm13=5)) \
        == "add %o0, 5, %o1"
    assert "call" in codec.disassemble(codec.encode("call", disp30=4), 0)
    assert codec.disassemble(codec.nop_word) == "nop"
    assert codec.disassemble(
        codec.encode("jmpl", rd=0, rs1=31, simm13=8)) == "ret"


def test_encode_range_checks():
    with pytest.raises(SpanError):
        codec.encode("add", rd=1, rs1=1, simm13=5000)
    with pytest.raises(SpanError):
        codec.encode("bne", disp22=1 << 22)


def test_encode_unknown_raises():
    with pytest.raises(ValueError):
        codec.encode("frobnicate")


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_decode_total(word):
    """Decoding never raises: unknown words classify as INVALID."""
    inst = codec.decode(word)
    assert inst.category in Category


@given(st.integers(min_value=-4096, max_value=4095),
       st.integers(min_value=0, max_value=31),
       st.integers(min_value=0, max_value=31))
def test_alu_imm_roundtrip_property(simm13, rd, rs1):
    word = codec.encode("add", rd=rd, rs1=rs1, simm13=simm13)
    inst = codec.decode(word)
    assert inst.get_field("simm13") == simm13
    assert inst.get_field("rd") == rd
    assert inst.get_field("rs1") == rs1
