"""Memory-system tools: Active Memory, Blizzard, SFI, Elsie."""

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.sim import run_image
from repro.tools.active_memory import (
    ActiveMemory,
    DirectMappedCache,
    trace_driven_misses,
)
from repro.tools.blizzard import (
    BlizzardAccessControl,
    STATE_INVALID,
    TABLE_SIZE,
)
from repro.tools.elsie import ElsieSimulatorBuilder
from repro.tools.sfi import Sandboxer
from repro.workloads import build_image, expected_output


def test_cache_model_direct_mapped():
    cache = DirectMappedCache(size_bytes=64, block_shift=5)  # 2 lines
    assert cache.access(0x00) is None  # cold miss, nothing evicted
    assert cache.access(0x04) is False  # same block: hit
    assert cache.access(0x20) is None  # second line
    evicted = cache.access(0x40)  # maps to line 0: evicts block 0
    assert evicted == 0
    assert cache.misses == 3 and cache.accesses == 4


@pytest.mark.parametrize("name", ["fib", "qsort", "tree"])
def test_active_memory_matches_trace_baseline(name):
    image = build_image(name)
    _, trace_cache = trace_driven_misses(image)
    tool = ActiveMemory(image).instrument()
    simulator, cache = tool.run()
    assert simulator.output == expected_output(name)
    assert cache.misses == trace_cache.misses


def test_active_memory_slowdown_in_paper_band():
    """Paper: 2-7x slowdown for cache simulation by editing."""
    image = build_image("sieve")
    baseline = run_image(image)
    tool = ActiveMemory(image).instrument()
    simulator, _ = tool.run()
    slowdown = simulator.instructions_executed / \
        baseline.instructions_executed
    assert 1.5 < slowdown < 7.0


def test_active_memory_different_cache_sizes():
    image = build_image("matmul")
    small = ActiveMemory(image, cache_size=1024).instrument().run()[1]
    large = ActiveMemory(image, cache_size=65536).instrument().run()[1]
    assert small.misses >= large.misses


def test_blizzard_no_faults_when_readwrite():
    image = build_image("fib")
    tool = BlizzardAccessControl(image).instrument()
    simulator, faults = tool.run()
    assert simulator.output == expected_output("fib")
    assert faults == []


def test_blizzard_warmup_faults_when_invalid():
    image = build_image("qsort")
    table = bytes([STATE_INVALID]) * TABLE_SIZE
    tool = BlizzardAccessControl(image, initial_state=table).instrument()
    simulator, faults = tool.run()
    assert simulator.output == expected_output("qsort")
    assert faults  # cold-start coherence faults
    # Each faulted block faults exactly once (the handler upgrades it).
    blocks = [addr >> 5 for addr in faults]
    assert len(blocks) == len(set(blocks))


def test_blizzard_cc_liveness_optimization_pays():
    """Paper section 5: the live-register optimization gives a faster
    test when condition codes are dead."""
    image = build_image("qsort")
    fast = BlizzardAccessControl(image).instrument()
    fast_run, _ = fast.run()
    slow = BlizzardAccessControl(image, always_save_cc=True).instrument()
    slow_run, _ = slow.run()
    assert fast_run.output == slow_run.output
    assert fast_run.instructions_executed < slow_run.instructions_executed


def test_blizzard_skips_stack_accesses():
    image = build_image("fib")
    tool = BlizzardAccessControl(image).instrument()
    # fib's locals are all frame-relative: few (if any) shared sites.
    full = ActiveMemory(image).instrument()
    assert tool.sites < full.sites


def test_sfi_clean_program_unaffected():
    image = build_image("strings")
    tool = Sandboxer(image).instrument()
    simulator, violation = tool.run()
    assert violation is None
    assert simulator.output == expected_output("strings")


def test_sfi_catches_wild_store():
    wild = """
        .text
        .global _start
    _start:
        set 0x30000000, %l0
        mov 7, %l1
        st %l1, [%l0]
        clr %o0
        mov 1, %g1
        ta 0
    """
    image = link([assemble(wild, "sparc")])
    tool = Sandboxer(image).instrument()
    simulator, violation = tool.run()
    assert violation == 0x30000000


def test_sfi_fault_hook_can_continue():
    wild = """
        .text
        .global _start
    _start:
        set 0x30000000, %l0
        mov 7, %l1
        st %l1, [%l0]
        mov 5, %o0
        mov 2, %g1
        ta 0
        clr %o0
        mov 1, %g1
        ta 0
    """
    image = link([assemble(wild, "sparc")])
    tool = Sandboxer(image).instrument()
    seen = []
    simulator, violation = tool.run(on_fault=lambda addr:
                                    seen.append(addr) or 0)
    assert violation is None
    assert seen == [0x30000000]
    assert simulator.output == "5"


def test_elsie_replaces_memory_instructions():
    image = build_image("fib")
    tool = ElsieSimulatorBuilder(image).instrument()
    assert tool.replaced > 0
    simulator, stats = tool.run()
    assert simulator.output == expected_output("fib")
    assert stats["loads"] > 0 and stats["stores"] > 0
    assert stats["memory_cycles"] >= stats["loads"] + stats["stores"]


def test_elsie_counts_match_trace():
    image = build_image("bubble")
    # Elsie only simulates accesses in editable blocks; compare against a
    # direct count over the same run for sanity (within a few percent).
    counts = {"n": 0}

    def hook(is_store, addr, width):
        counts["n"] += 1

    from repro.sim import Simulator

    sim = Simulator(image, mem_hook=hook)
    sim.run()
    tool = ElsieSimulatorBuilder(image).instrument()
    _, stats = tool.run()
    simulated = stats["loads"] + stats["stores"]
    assert simulated <= counts["n"]
    assert simulated > counts["n"] * 0.9
