"""Block-compiling engine: observable equivalence with the interpreter.

The block engine promises to be indistinguishable from the handwritten
per-instruction engine for every observable: program output, exit code,
exact instruction counts under ``max_steps``, per-pc profiles, category
telemetry, memory-hook traces, and ``run_until`` stop behaviour.  These
tests pin that contract over the full workload corpus, the fuzz
reproducer corpus, and hand-built programs that target the tricky
boundaries (self-modifying text, stops on fused back-edges, resumed
step budgets).
"""

import glob
import json
import os

import pytest

from repro import obs
from repro.asm import assemble
from repro.binfmt import link
from repro.fuzz.gen import plan_to_program
from repro.sim import Simulator, run_image
from repro.sim.machine import ENGINES, SimulationTimeout, default_engine
from repro.verify import corpus_names
from repro.workloads import builder

ENGINE_PAIR = ("handwritten", "block")


def build_workload(name):
    if name in builder.mips_program_names():
        return builder.build_mips_image(name)
    return builder.build_image(name)


def sparc_image(body):
    source = """
        .text
        .global _start
    _start:
    %s
        mov %%l7, %%o0
        mov 2, %%g1
        ta 0
        clr %%o0
        mov 1, %%g1
        ta 0
    """ % body
    return link([assemble(source, "sparc")])


def observe(image, engine, **kwargs):
    """Run *image* under *engine*; capture every observable as a tuple."""
    try:
        simulator = run_image(image, count_pcs=True, engine=engine, **kwargs)
    except Exception as exc:  # timeout/fault parity is part of the contract
        return ("raise", type(exc).__name__, str(exc))
    return ("exit", simulator.output, simulator.exit_code,
            simulator.instructions_executed, simulator.pc_counts)


# ----------------------------------------------------------------------
# Equivalence sweeps


@pytest.mark.parametrize("name", corpus_names())
def test_engine_equivalence_corpus(name):
    image = build_workload(name)
    baseline = observe(image, "handwritten")
    assert observe(image, "block") == baseline
    assert baseline[0] == "exit"


def _corpus_entries():
    root = os.path.join(os.path.dirname(__file__), os.pardir, "fuzz-corpus")
    entries = []
    for path in sorted(glob.glob(os.path.join(root, "*.json"))):
        with open(path) as handle:
            entries.append(json.load(handle))
    return entries


def test_engine_equivalence_fuzz_reproducers():
    entries = _corpus_entries()
    assert entries, "fuzz corpus missing"
    for entry in entries:
        image = plan_to_program(entry["plan"]).image
        baseline = observe(image, "handwritten", max_steps=500_000)
        assert observe(image, "block", max_steps=500_000) == baseline, \
            "engines diverge on reproducer %s" % entry["id"]


# ----------------------------------------------------------------------
# Self-modifying text invalidates compiled blocks


def test_block_invalidation_on_text_write():
    # The loop body patches its own first instruction: iteration one
    # executes `add %l7, 1` then overwrites it with the donor word
    # `add %l7, 2`, so iteration two must see the new text.  A block
    # engine that kept executing the stale compiled body would print 3
    # instead of 5.
    body = """
        set patch, %l1
        set donor, %l3
        ld [%l3], %l2
        clr %l7
        mov 2, %l0
    loop:
    patch:
        add %l7, 1, %l7
        st %l2, [%l1]
        subcc %l0, 1, %l0
        bne loop
        nop
        b finish
        nop
    donor:
        add %l7, 2, %l7
    finish:
    """
    image = sparc_image(body)
    baseline = observe(image, "handwritten")
    assert observe(image, "block") == baseline
    assert baseline[1] == "3"  # 1 + 2 across the two iterations

    simulator = Simulator(image, engine="block")
    simulator.run()
    assert simulator.output == "3"
    assert simulator.cpu.text_version > 0
    assert simulator.cpu.block_invalidations >= 1


# ----------------------------------------------------------------------
# run_until stop-pc contract


def _counting_loop():
    # _start: clr, then a loop whose only CTI is an unconditional
    # branch straight back to `loop` — the block compiler fuses that
    # back-edge, so a stop pc on `loop` exercises truncation of a
    # fused continuation.
    body = """
        clr %l7
    loop:
        add %l7, 1, %l7
        cmp %l7, 400
        be finish
        nop
        b loop
        nop
    finish:
    """
    image = sparc_image(body)
    loop_pc = image.entry + 4
    return image, loop_pc


def test_run_until_stops_on_fused_back_edge():
    image, loop_pc = _counting_loop()
    traces = {}
    for engine in ENGINE_PAIR:
        simulator = Simulator(image, engine=engine)
        stops = frozenset([loop_pc])
        trace = []
        # First call stops before the loop body ever runs; later calls
        # must pause at every revolution even once the block is warm.
        for _ in range(6):
            steps = simulator.cpu.run_until(stops, 10_000)
            trace.append((steps, simulator.cpu.pc,
                          simulator.cpu.r[23]))  # %l7
        traces[engine] = trace
    assert traces["block"] == traces["handwritten"]
    steps, pc, counter = traces["block"][1]
    assert pc == loop_pc and counter == 1


def test_run_until_budget_exhaustion_parity():
    image, loop_pc = _counting_loop()
    outcomes = {}
    for engine in ENGINE_PAIR:
        simulator = Simulator(image, engine=engine)
        with pytest.raises(SimulationTimeout) as excinfo:
            simulator.cpu.run_until(frozenset([0xDEAD0000]), 37)
        outcomes[engine] = (excinfo.value.steps, excinfo.value.pc,
                            simulator.instructions_executed)
    assert outcomes["block"] == outcomes["handwritten"]
    assert outcomes["block"][0] == 37


def test_run_until_counts_pcs_and_categories():
    # Satellite fix: run_until must account pcs and categories exactly
    # like run() — historically it skipped both.
    image, loop_pc = _counting_loop()
    profiles = {}
    obs.enable()
    try:
        for engine in ENGINE_PAIR:
            simulator = Simulator(image, engine=engine, count_pcs=True)
            total = 0
            for _ in range(10):
                total += simulator.cpu.run_until(frozenset([loop_pc]),
                                                 10_000)
            profiles[engine] = (total, dict(simulator.pc_counts),
                                dict(simulator.cpu.category_counts))
    finally:
        obs.disable()
        obs.reset()
    assert profiles["block"] == profiles["handwritten"]
    total, pc_counts, categories = profiles["block"]
    assert total > 0
    assert sum(pc_counts.values()) == total
    assert sum(categories.values()) == total


# ----------------------------------------------------------------------
# Resumed runs and cumulative budgets (satellite fix)


@pytest.mark.parametrize("engine", ENGINE_PAIR)
def test_resumed_run_budget_cumulative(engine):
    image, _loop_pc = _counting_loop()
    simulator = Simulator(image, max_steps=50, engine=engine)
    with pytest.raises(SimulationTimeout) as excinfo:
        simulator.run()
    assert excinfo.value.steps == 50
    assert simulator.instructions_executed == 50

    # Raising the budget and resuming runs exactly 30 more
    # instructions; the reported step count stays cumulative.
    simulator.max_steps = 80
    with pytest.raises(SimulationTimeout) as excinfo:
        simulator.run()
    assert excinfo.value.steps == 80
    assert simulator.instructions_executed == 80


# ----------------------------------------------------------------------
# Configuration validation and cache accounting


def test_cap_validation():
    image = sparc_image("mov 7, %l7")
    for kwargs in ({"prepared_cache_cap": 0}, {"block_cache_cap": 0},
                   {"block_max_len": 0}, {"prepared_cache_cap": -3}):
        with pytest.raises(ValueError):
            Simulator(image, **kwargs)
    with pytest.raises(ValueError):
        Simulator(image, engine="jit-of-the-week")


def test_block_cache_eviction_accounting():
    image = build_workload("fib")
    simulator = Simulator(image, engine="block", block_cache_cap=2)
    simulator.run()
    cpu = simulator.cpu
    assert cpu.block_evictions > 0
    for cache in cpu._block_caches.values():
        assert len(cache) <= 2
    # hit/miss arithmetic stays exact: every lookup is one or the other.
    assert cpu.block_hits + cpu.block_misses > 0


def test_block_max_len_respected():
    # A tiny block cap still produces identical results (blocks just
    # chain more often).
    image = build_workload("fib")
    baseline = observe(image, "handwritten")
    simulator = Simulator(image, count_pcs=True, engine="block",
                          block_max_len=2)
    simulator.run()
    assert ("exit", simulator.output, simulator.exit_code,
            simulator.instructions_executed,
            simulator.pc_counts) == baseline


# ----------------------------------------------------------------------
# Memory hook parity


def test_mem_hook_fires_per_access():
    body = """
        set buffer, %l1
        mov 258, %l2
        st %l2, [%l1]
        ld [%l1], %l3
        sth %l2, [%l1]
        lduh [%l1], %l4
        stb %l2, [%l1]
        ldub [%l1], %l5
        ldsb [%l1], %l6
        add %l3, %l4, %l7
        add %l7, %l5, %l7
        b finish
        nop
    buffer:
        .word 0
    finish:
    """
    image = sparc_image(body)
    traces = {}
    for engine in ENGINE_PAIR:
        events = []

        def hook(is_store, addr, width, events=events):
            events.append((is_store, addr, width))

        simulator = Simulator(image, engine=engine, mem_hook=hook)
        simulator.run()
        traces[engine] = (events, simulator.output)
    assert traces["block"] == traces["handwritten"]
    events, _output = traces["block"]
    assert len(events) == 7


# ----------------------------------------------------------------------
# Engine selection


def test_default_engine_env(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_ENGINE", "handwritten")
    assert default_engine() == "handwritten"
    monkeypatch.setenv("REPRO_SIM_ENGINE", "block")
    assert default_engine() == "block"
    monkeypatch.delenv("REPRO_SIM_ENGINE")
    assert default_engine() in ENGINES
