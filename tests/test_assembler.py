"""Assembler: directives, operand forms, pseudo-instructions, errors."""

import pytest

from repro.asm import AsmError, assemble
from repro.binfmt import link
from repro.isa import get_codec
from repro.sim import run_image

sparc = get_codec("sparc")
mips = get_codec("mips")


def _words(obj, section=".text"):
    return obj.get_section(section).words()


def test_comments_and_labels():
    obj = assemble("""
    ! full line comment
    a: b: nop  ; trailing comment
    # hash comment
    """, "sparc")
    assert len(_words(obj)) == 1
    names = {s.name for s in obj.symbols}
    assert {"a", "b"} <= names


def test_duplicate_label():
    with pytest.raises(AsmError):
        assemble("x: nop\nx: nop\n", "sparc")


def test_global_marks_func():
    obj = assemble(".text\n.global f\nf: nop\n", "sparc")
    symbol = obj.find_symbol("f")
    assert symbol.kind == "func" and symbol.binding == "global"


def test_type_directive():
    obj = assemble(".text\n.type f, func\nf: nop\n", "sparc")
    assert obj.find_symbol("f").kind == "func"
    assert obj.find_symbol("f").binding == "local"


def test_data_directives():
    obj = assemble("""
        .data
    w:  .word 1, -2, 0x10
    h:  .half 0x1234
    b:  .byte 1, 2, 3
        .align 4
    s:  .asciz "hi!"
    """, "sparc")
    data = obj.get_section(".data")
    assert data.word_at(0) == 1
    assert data.word_at(4) == 0xFFFFFFFE
    assert bytes(data.data[12:14]) == b"\x12\x34"


def test_bss_space():
    obj = assemble(".bss\nbuf: .space 100\n", "sparc")
    assert obj.get_section(".bss").size == 100


def test_string_with_comment_chars():
    obj = assemble('.data\ns: .asciz "a!b;c#d"\n', "sparc")
    assert b"a!b;c#d" in bytes(obj.get_section(".data").data)


def test_unknown_mnemonic():
    with pytest.raises(AsmError):
        assemble("bogus %o0\n", "sparc")


def test_unknown_directive():
    with pytest.raises(AsmError):
        assemble(".frobnicate 3\n", "sparc")


def test_sparc_operand_forms():
    obj = assemble("""
        add %o0, %o1, %o2
        add %o0, -5, %o2
        ld [%fp - 8], %l0
        ld [%l0 + %l1], %l2
        st %l0, [%sp + 4]
        sethi %hi(0x12345678), %l0
        or %l0, %lo(0x12345678), %l0
    """, "sparc")
    words = _words(obj)
    assert sparc.decode(words[0]).get_field("rs2") == 9  # %o1
    assert sparc.decode(words[1]).get_field("simm13") == -5
    assert sparc.decode(words[2]).get_field("simm13") == -8
    value = (sparc.decode(words[5]).get_field("imm22") << 10) \
        | sparc.decode(words[6]).get_field("simm13")
    assert value == 0x12345678


def test_sparc_pseudo_ops():
    obj = assemble("""
        mov 3, %o0
        cmp %o0, 4
        tst %o1
        clr %o2
        inc %o3
        dec 2, %o4
        neg %o5
        ret
        retl
    """, "sparc")
    words = _words(obj)
    assert sparc.decode(words[0]).name == "or"
    assert sparc.decode(words[1]).name == "subcc"
    assert sparc.decode(words[7]).category.value == "return"


def test_sparc_set_is_two_words():
    obj = assemble("set 0x1234, %l0\nset sym, %l1\nsym: nop\n", "sparc")
    assert len(_words(obj)) == 5


def test_sparc_branch_reloc():
    obj = assemble("start: bne start\nnop\n", "sparc")
    relocs = obj.relocations[".text"]
    assert any(r.kind == "DISP22" for r in relocs)


def test_sparc_call_register_form():
    obj = assemble("call %l0\nnop\n", "sparc")
    inst = sparc.decode(_words(obj)[0])
    assert inst.category.value == "call_indirect"


def test_mips_operand_forms():
    obj = assemble("""
        addu $v0, $a0, $a1
        addiu $v0, $a0, -3
        lw $t0, 8($sp)
        sw $t0, -4($sp)
        lui $t1, %hi(0x12345678)
        addiu $t1, $t1, %lo(0x12345678)
        sll $t2, $t3, 5
    """, "mips")
    words = _words(obj)
    assert mips.decode(words[0]).name == "addu"
    assert mips.decode(words[1]).get_field("imm16") == -3
    assert mips.decode(words[2]).get_field("imm16") == 8


def test_mips_pseudo_ops():
    obj = assemble("""
        nop
        move $t0, $t1
        li $t2, 5
        li $t3, 0x123456
        la $t4, somewhere
        b somewhere
        nop
        beqz $t0, somewhere
        nop
        bnez $t0, somewhere
        nop
    somewhere:
        negu $t5, $t6
    """, "mips")
    words = _words(obj)
    assert mips.decode(words[1]).name == "addu"  # move
    assert mips.decode(words[2]).name == "addiu"  # small li
    # large li is lui+ori (2 words), la is lui+addiu (2 words)
    assert len(words) == 14


def test_mips_numeric_registers():
    obj = assemble("addu $2, $4, $5\n", "mips")
    assert mips.decode(_words(obj)[0]).get_field("rd") == 2


def test_end_to_end_hello(tmp_path):
    source = """
        .text
        .global _start
    _start:
        set msg, %o0
        mov 4, %g1
        ta 0
        clr %o0
        mov 1, %g1
        ta 0
        .rodata
    msg: .asciz "hello\\n"
    """
    image = link([assemble(source, "sparc")])
    simulator = run_image(image)
    assert simulator.output == "hello\n"
    assert simulator.exit_code == 0


def test_instruction_outside_text():
    with pytest.raises(AsmError):
        assemble(".data\nadd %o0, %o1, %o2\n", "sparc")
