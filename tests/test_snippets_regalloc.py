"""Snippets and register scavenging (paper section 3.5)."""

import pytest

from repro.core.regalloc import RegallocError, allocate_snippet
from repro.core.snippet import CodeSnippet, TaggedCodeSnippet
from repro.isa import get_codec, get_conventions

conventions = get_conventions("sparc")
codec = get_codec("sparc")


def counter_words(p0, p1):
    return conventions.counter_increment(0x1000400, p0, p1)


def test_scavenges_dead_registers():
    snippet = CodeSnippet(counter_words(16, 17), alloc_regs=(16, 17))
    live = frozenset({8, 9, 24})
    allocated = allocate_snippet(snippet, live, conventions)
    assert not allocated.spilled
    used = set(allocated.mapping.values())
    assert not (used & live)
    assert len(used) == 2


def test_forbidden_registers_respected():
    snippet = CodeSnippet(counter_words(16, 17), alloc_regs=(16, 17),
                          forbidden_regs=frozenset(range(16, 24)))
    allocated = allocate_snippet(snippet, frozenset(), conventions)
    assert not (set(allocated.mapping.values()) & set(range(16, 24)))


def test_spills_when_no_dead_registers():
    snippet = CodeSnippet(counter_words(16, 17), alloc_regs=(16, 17))
    live = frozenset(conventions.scavenge_candidates)
    allocated = allocate_snippet(snippet, live, conventions)
    assert len(allocated.spilled) == 2
    # Spill/unspill wrap the body.
    assert len(allocated.words) == len(snippet.words) + 4
    first = codec.decode(allocated.words[0])
    assert first.category.value == "store"
    last = codec.decode(allocated.words[-1])
    assert last.category.value == "load"


def test_exhaustion_raises():
    many = tuple(range(16, 24))
    snippet = CodeSnippet([codec.nop_word], alloc_regs=many + (8, 9, 10, 11,
                                                              12, 13, 1, 2,
                                                              3, 4))
    live = frozenset()
    # More placeholders than scavenge candidates exist.
    snippet2 = CodeSnippet([codec.nop_word],
                           alloc_regs=tuple(range(30)))
    with pytest.raises(RegallocError):
        allocate_snippet(snippet2, live, conventions)


def test_cc_save_wrap_when_cc_live():
    snippet = CodeSnippet(counter_words(16, 17), alloc_regs=(16, 17),
                          clobbers_cc=True)
    icc = codec.regs.number("%icc")
    allocated = allocate_snippet(snippet, frozenset({icc}), conventions)
    names = [codec.decode(w).name for w in allocated.words]
    assert names[0] == "rdpsr" or "rdpsr" in names
    assert "wrpsr" in names
    rd_at = names.index("rdpsr")
    wr_at = names.index("wrpsr")
    assert rd_at < wr_at


def test_no_cc_save_when_cc_dead():
    snippet = CodeSnippet(counter_words(16, 17), alloc_regs=(16, 17),
                          clobbers_cc=True)
    allocated = allocate_snippet(snippet, frozenset(), conventions)
    names = [codec.decode(w).name for w in allocated.words]
    assert "rdpsr" not in names


def test_callback_invoked_with_address():
    seen = {}

    def callback(words, address, mapping):
        seen["address"] = address
        seen["mapping"] = mapping
        return words

    snippet = CodeSnippet(counter_words(16, 17), alloc_regs=(16, 17),
                          callback=callback)
    allocated = allocate_snippet(snippet, frozenset(), conventions)
    allocated.run_callback(0x5000)
    assert seen["address"] == 0x5000
    assert set(seen["mapping"]) == {16, 17}


def test_callback_may_patch_words():
    def callback(words, address, mapping):
        words[0] = codec.nop_word
        return words

    snippet = CodeSnippet(counter_words(16, 17), alloc_regs=(16, 17),
                          callback=callback)
    allocated = allocate_snippet(snippet, frozenset(), conventions)
    words = allocated.run_callback(0x5000)
    assert words[0] == codec.nop_word


def test_callback_cannot_change_length():
    def callback(words, address, mapping):
        return words + [codec.nop_word]

    snippet = CodeSnippet([codec.nop_word], callback=callback)
    allocated = allocate_snippet(snippet, frozenset(), conventions)
    with pytest.raises(RegallocError):
        allocated.run_callback(0)


def test_tagged_snippet_find_and_set():
    snippet = TaggedCodeSnippet(counter_words(16, 17),
                                alloc_regs=(16, 17))
    word = snippet.find_inst(0)
    snippet.set_inst(0, codec.nop_word)
    assert snippet.find_inst(0) == codec.nop_word
    assert snippet.find_inst(1) != word


def test_mips_allocation():
    mips_conv = get_conventions("mips")
    snippet = CodeSnippet(mips_conv.counter_increment(0x1000400, 8, 9),
                          alloc_regs=(8, 9))
    allocated = allocate_snippet(snippet, frozenset({8, 9}), mips_conv)
    used = set(allocated.mapping.values())
    assert not used & {8, 9}
