"""Compile-and-run tests for every minic language construct."""

import pytest

from repro.minic import (
    CompileError,
    CompilerOptions,
    GCC_LIKE,
    SUNPRO_LIKE,
    compile_to_assembly,
    compile_to_image,
)
from repro.sim import run_image


def run_main(body, options=GCC_LIKE, prelude=""):
    source = "%s\nint main(void) { %s }" % (prelude, body)
    return run_image(compile_to_image(source, options)).output


def test_print_int():
    assert run_main("print_int(42); return 0;") == "42"


def test_arithmetic_precedence():
    assert run_main("print_int(2 + 3 * 4 - 10 / 2); return 0;") == "9"
    assert run_main("print_int((2 + 3) * 4); return 0;") == "20"
    assert run_main("print_int(17 % 5); return 0;") == "2"
    assert run_main("print_int(-17 % 5); return 0;") == "-2"


def test_bitwise_and_shifts():
    assert run_main("print_int(12 & 10); return 0;") == "8"
    assert run_main("print_int(12 | 3); return 0;") == "15"
    assert run_main("print_int(12 ^ 10); return 0;") == "6"
    assert run_main("print_int(1 << 10); return 0;") == "1024"
    assert run_main("print_int(-16 >> 2); return 0;") == "-4"
    assert run_main("print_int(~0); return 0;") == "-1"


def test_comparisons_as_values():
    assert run_main("print_int(3 < 4); print_int(4 < 3); return 0;") == "10"
    assert run_main("print_int(3 == 3); print_int(3 != 3); return 0;") \
        == "10"


def test_logical_short_circuit():
    prelude = """
    int calls;
    int bump(void) { calls = calls + 1; return 1; }
    """
    out = run_main(
        "calls = 0; if (0 && bump()) { } print_int(calls);"
        " if (1 || bump()) { } print_int(calls); return 0;",
        prelude=prelude,
    )
    assert out == "00"


def test_ternary():
    assert run_main("print_int(5 > 3 ? 7 : 9); return 0;") == "7"


def test_locals_and_compound_assign():
    body = """
    int x; x = 10;
    x += 5; x -= 3; x *= 2; x /= 4; x %= 4;
    print_int(x); return 0;
    """
    assert run_main(body) == "2"


def test_incdec():
    body = """
    int x; int y;
    x = 5;
    y = x++;
    print_int(y); print_int(x);
    y = ++x;
    print_int(y);
    return 0;
    """
    assert run_main(body) == "567"


def test_while_for_dowhile():
    assert run_main("""
        int i; int s; s = 0;
        for (i = 0; i < 5; i = i + 1) { s = s + i; }
        print_int(s);
        while (s > 0) { s = s - 3; }
        print_int(s);
        do { s = s + 1; } while (s < 2);
        print_int(s);
        return 0;
    """) == "10-22"


def test_break_continue():
    assert run_main("""
        int i; int s; s = 0;
        for (i = 0; i < 10; i = i + 1) {
            if (i == 3) { continue; }
            if (i == 6) { break; }
            s = s + i;
        }
        print_int(s);
        return 0;
    """) == "12"  # 0+1+2+4+5


def test_global_arrays_and_pointers():
    prelude = "int data[5];"
    body = """
    int i; int *p;
    for (i = 0; i < 5; i = i + 1) { data[i] = i * i; }
    p = data;
    print_int(p[3]);
    print_int(*(p + 4));
    return 0;
    """
    assert run_main(body, prelude=prelude) == "916"


def test_address_of_and_deref():
    body = """
    int x; int *p;
    x = 7;
    p = &x;
    *p = 11;
    print_int(x);
    return 0;
    """
    assert run_main(body) == "11"


def test_char_arrays_and_strings():
    prelude = 'char msg[] = "abc";'
    body = """
    print_int(msg[0]);
    msg[0] = 'z';
    print_str(msg);
    return 0;
    """
    assert run_main(body, prelude=prelude) == "97zbc"


def test_local_arrays():
    body = """
    int a[4]; int i; int s;
    for (i = 0; i < 4; i = i + 1) { a[i] = i + 1; }
    s = 0;
    for (i = 0; i < 4; i = i + 1) { s = s + a[i]; }
    print_int(s);
    return 0;
    """
    assert run_main(body) == "10"


def test_recursion():
    prelude = """
    int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
    """
    assert run_main("print_int(fact(6)); return 0;", prelude=prelude) \
        == "720"


def test_switch_dense_uses_table():
    source = """
    int pick(int x) {
        switch (x) {
        case 0: return 10;
        case 1: return 11;
        case 2: return 12;
        case 3: return 13;
        default: return 99;
        }
    }
    int main(void) { return 0; }
    """
    text, _ = compile_to_assembly(source, GCC_LIKE)
    assert "jmp" in text and ".word" in text  # dispatch table emitted
    text_chain, _ = compile_to_assembly(
        source, GCC_LIKE.named(dispatch_tables=False))
    assert ".Ltab" not in text_chain


def test_switch_semantics_table_and_chain():
    prelude = """
    int pick(int x) {
        switch (x) {
        case 2: return 20;
        case 3: return 30;
        case 4: return 40;
        case 5: return 50;
        case 9: return 90;
        }
        return -1;
    }
    """
    body = """
    int i;
    for (i = 0; i < 11; i = i + 1) { print_int(pick(i)); print_char(' '); }
    return 0;
    """
    expected = "-1 -1 20 30 40 50 -1 -1 -1 90 -1 "
    for options in (GCC_LIKE, GCC_LIKE.named(dispatch_tables=False),
                    SUNPRO_LIKE):
        assert run_main(body, options, prelude) == expected


def test_sparse_switch_uses_chain():
    source = """
    int pick(int x) {
        switch (x) {
        case 0: return 1;
        case 100: return 2;
        case 1000: return 3;
        case 10000: return 4;
        }
        return 0;
    }
    int main(void) { return pick(100); }
    """
    text, _ = compile_to_assembly(source, GCC_LIKE)
    assert ".Ltab" not in text  # too sparse for a table


def test_tail_call_option_changes_code():
    source = """
    static int helper(int x) { return x + 1; }
    int outer(int x) { return helper(x); }
    int main(void) { print_int(outer(4)); return 0; }
    """
    plain, _ = compile_to_assembly(source, GCC_LIKE)
    tail, _ = compile_to_assembly(source, SUNPRO_LIKE)
    assert "jmp %g1" in tail
    assert "jmp %g1" not in plain
    assert run_image(compile_to_image(source, SUNPRO_LIKE)).output == "5"


def test_tables_in_text_option():
    source = """
    int pick(int x) {
        switch (x) {
        case 0: return 1;
        case 1: return 2;
        case 2: return 3;
        case 3: return 4;
        }
        return 0;
    }
    int main(void) { return 0; }
    """
    in_text, _ = compile_to_assembly(
        source, GCC_LIKE.named(tables_in_text=True))
    # The table rows must appear before the .rodata/.data sections.
    text_part = in_text.split(".rodata")[0] if ".rodata" in in_text \
        else in_text
    assert ".word" in text_part


def test_builtin_library_calls():
    assert run_main('print_int(strlen("hello")); return 0;') == "5"
    assert run_main('print_int(abs_int(-9)); return 0;') == "9"
    assert run_main('print_int(max_int(3, 8)); return 0;') == "8"


def test_read_int_builtin():
    source = "int main(void) { print_int(read_int() + read_int());" \
        " return 0; }"
    image = compile_to_image(source)
    assert run_image(image, stdin_text="20 22").output == "42"


def test_compile_errors():
    with pytest.raises(CompileError):
        compile_to_image("int main(void) { return undefined_var; }")
    with pytest.raises(CompileError):
        compile_to_image("int main(void) { break; }")
    with pytest.raises(CompileError):
        compile_to_image(
            "int f(int a, int b, int c, int d, int e, int g, int h)"
            " { return 0; }\nint main(void) { return 0; }"
        )


def test_exit_code_from_main():
    image = compile_to_image("int main(void) { return 3; }")
    assert run_image(image).exit_code == 3


def test_hide_statics_option():
    source = """
    static int helper(int x) { return x * 2; }
    int main(void) { print_int(helper(21)); return 0; }
    """
    image = compile_to_image(source, GCC_LIKE.named(hide_statics=True))
    assert image.find_symbol("helper") is None
    assert image.find_symbol("main") is not None
    assert run_image(image).output == "42"


def test_strip_option():
    image = compile_to_image("int main(void) { return 0; }",
                             GCC_LIKE.named(strip=True))
    assert not image.symbols
    assert run_image(image).exit_code == 0
