"""Differential corpus gate: metadata-on vs metadata-off (ISSUE 10).

For every workload in the corpus — 15 SPARC minic programs plus the 3
handwritten MIPS ones — build a metadata-carrying copy and run the
pipeline twice, once trusting the table and once with trust disabled.
The fast path may change speed, never results: fact-store summaries,
routine identities, qpt-instrumented output bytes, and cosim verdicts
must all be identical.  The analysis cache is off for the comparison —
with it on, the second run would restore the first run's facts and the
differential would compare a path against itself.
"""

import pytest

from repro.binfmt.meta import attach_meta
from repro.binfmt.serialize import image_from_bytes, image_to_bytes
from repro.core import trust
from repro.core.executable import Executable
from repro.core.facts import rules as fact_rules
from repro.verify import corpus_names
from repro.workloads import builder

_CORPUS = corpus_names()


@pytest.fixture(scope="module", autouse=True)
def _cache_off():
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_CACHE", "off")
    yield
    patcher.undo()


_META_IMAGES = {}


def _meta_image(name):
    """A metadata-carrying copy of workload *name* (built once)."""
    if name not in _META_IMAGES:
        if name in builder.mips_program_names():
            base = builder.build_mips_image(name)
        else:
            base = builder.build_image(name)
        image = image_from_bytes(image_to_bytes(base))
        executable = Executable(image).read_contents(trust_meta=False)
        attach_meta(image, trust.meta_from_executable(executable))
        _META_IMAGES[name] = image_to_bytes(image)
    return image_from_bytes(_META_IMAGES[name])


def _analyze(name, trusted):
    executable = Executable(_meta_image(name)) \
        .read_contents(trust_meta=trusted)
    store = executable.fact_store()
    fact_rules.populate(executable, store)
    return executable, store


def test_corpus_is_the_expected_size():
    assert len(_CORPUS) == 18


@pytest.mark.parametrize("name", _CORPUS)
def test_fact_stores_identical(name):
    trusted, trusted_store = _analyze(name, True)
    discovered, discovered_store = _analyze(name, False)
    assert trusted.meta_status == ("trusted", None)
    assert trusted.analysis_provenance == "metadata"
    assert discovered.analysis_provenance == "discovery"

    def identities(executable):
        return sorted((r.name, r.start, r.end, tuple(r.entries), r.hidden)
                      for r in executable.all_routines())

    assert identities(trusted) == identities(discovered)
    assert trusted_store.to_summary() == discovered_store.to_summary()


@pytest.mark.parametrize("name", _CORPUS)
def test_qpt_output_and_cosim_verdicts_identical(name, monkeypatch):
    from repro.tools import instrument_image
    from repro.verify import verify_session

    sessions = {}
    for trusted in (True, False):
        monkeypatch.setenv("REPRO_TRUST_META", "on" if trusted else "off")
        sessions[trusted] = instrument_image(_meta_image(name), "qpt",
                                             mode="edge")
    monkeypatch.delenv("REPRO_TRUST_META")
    on_bytes = image_to_bytes(sessions[True].edited_image)
    off_bytes = image_to_bytes(sessions[False].edited_image)
    assert on_bytes == off_bytes, \
        "qpt output differs between trust paths on %s" % name

    verdicts = {}
    for trusted, session in sessions.items():
        result = verify_session(session.executable, session.edited_image,
                                configure_edited=session.configure_edited,
                                use_memo=False,
                                label="%s[meta=%s]" % (name, trusted))
        verdicts[trusted] = (result.ok, result.syncs,
                            sorted(f.code for f in result.findings))
    assert verdicts[True] == verdicts[False]
    assert verdicts[True][0], "cosim failed on %s" % name
