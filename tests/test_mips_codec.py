"""Handwritten MIPS codec: decode, encode, classify."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import get_codec
from repro.isa.base import Category, SpanError

codec = get_codec("mips")


def test_rtype_roundtrip():
    word = codec.encode("addu", rd=2, rs=4, rt=5)
    inst = codec.decode(word)
    assert inst.name == "addu"
    assert inst.reads == frozenset({4, 5})
    assert inst.writes == frozenset({2})


def test_zero_register_filtered():
    word = codec.encode("addu", rd=0, rs=4, rt=5)
    assert codec.decode(word).writes == frozenset()


def test_shift():
    inst = codec.decode(codec.encode("sll", rd=2, rt=3, shamt=7))
    assert inst.get_field("shamt") == 7
    assert inst.reads == frozenset({3})


def test_nop_decodes_as_sll():
    inst = codec.decode(0)
    assert inst.name == "sll"
    assert inst.writes == frozenset()


def test_immediate_sign():
    inst = codec.decode(codec.encode("addiu", rt=2, rs=3, imm16=-4))
    assert inst.get_field("imm16") == -4


def test_branches():
    beq = codec.decode(codec.encode("beq", rs=4, rt=5, imm16=3))
    assert beq.category is Category.BRANCH
    assert beq.is_delayed and not beq.annul_untaken
    assert codec.control_target(beq, 0x100) == 0x100 + 4 + 12

    likely = codec.decode(codec.encode("bnel", rs=4, rt=5, imm16=3))
    assert likely.annul_untaken  # branch-likely = annulled variant


def test_regimm_branches():
    bltz = codec.decode(codec.encode("bltz", rs=9, imm16=-2))
    assert bltz.category is Category.BRANCH
    assert bltz.cond == "ltz"
    bgezl = codec.decode(codec.encode("bgezl", rs=9, imm16=-2))
    assert bgezl.annul_untaken


def test_jumps():
    j = codec.decode(codec.encode("j", target26=0x400))
    assert j.category is Category.JUMP
    assert codec.control_target(j, 0x1000) == 0x1000


def test_j_region_semantics():
    j = codec.decode(codec.encode("j", target26=0x40))
    assert codec.control_target(j, 0x10000000) == 0x10000100


def test_jal_writes_ra():
    jal = codec.decode(codec.encode("jal", target26=0x400))
    assert jal.category is Category.CALL
    assert jal.writes == frozenset({31})


def test_jr_overloads():
    ret = codec.decode(codec.encode("jr", rs=31))
    assert ret.category is Category.RETURN
    jump = codec.decode(codec.encode("jr", rs=25))
    assert jump.category is Category.JUMP_INDIRECT


def test_jalr():
    inst = codec.decode(codec.encode("jalr", rs=25))
    assert inst.category is Category.CALL_INDIRECT
    assert inst.writes == frozenset({31})


def test_memory():
    lb = codec.decode(codec.encode("lb", rt=8, rs=29, imm16=-4))
    assert lb.category is Category.LOAD
    assert lb.mem_width == 1 and lb.mem_signed
    sw = codec.decode(codec.encode("sw", rt=8, rs=29, imm16=0))
    assert sw.category is Category.STORE
    assert 8 in sw.reads


def test_lui():
    inst = codec.decode(codec.encode("lui", rt=8, uimm16=0x1234))
    assert inst.get_field("uimm16") == 0x1234
    assert inst.reads == frozenset()


def test_multdiv_hi_lo():
    mult = codec.decode(codec.encode("mult", rs=4, rt=5))
    assert codec.regs.number("$hi") in mult.writes
    assert codec.regs.number("$lo") in mult.writes
    mflo = codec.decode(codec.encode("mflo", rd=2))
    assert codec.regs.number("$lo") in mflo.reads


def test_syscall():
    inst = codec.decode(codec.encode("syscall"))
    assert inst.category is Category.SYSTEM
    assert 2 in inst.reads  # $v0


def test_invalid():
    assert codec.decode(0xFC000000).category is Category.INVALID


def test_invert_branch():
    word = codec.encode("beq", rs=1, rt=2, imm16=5)
    assert codec.decode(codec.invert_branch(word)).name == "bne"
    word = codec.encode("bltzl", rs=1, imm16=5)
    assert codec.decode(codec.invert_branch(word)).name == "bgezl"


def test_clear_annul_converts_likely():
    word = codec.encode("beql", rs=1, rt=2, imm16=5)
    cleared = codec.decode(codec.clear_annul(word))
    assert cleared.name == "beq"
    assert not cleared.annul_untaken


def test_with_control_target():
    word = codec.encode("bne", rs=1, rt=2, imm16=0)
    patched = codec.with_control_target(word, 0x1000, 0x1100)
    assert codec.control_target(codec.decode(patched), 0x1000) == 0x1100
    with pytest.raises(SpanError):
        codec.with_control_target(word, 0x1000, 0x1000000)


def test_j_region_violation():
    word = codec.encode("j", target26=0)
    with pytest.raises(SpanError):
        codec.with_control_target(word, 0x1000, 0x20000000)


def test_disassemble_smoke():
    assert codec.disassemble(0) == "nop"
    assert "addu" in codec.disassemble(codec.encode("addu", rd=2, rs=4,
                                                    rt=5))
    assert "lw" in codec.disassemble(codec.encode("lw", rt=2, rs=29,
                                                  imm16=8))


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_decode_total(word):
    assert codec.decode(word).category in Category
