"""Bit-manipulation utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import bits

words = st.integers(min_value=0, max_value=0xFFFFFFFF)


def test_mask():
    assert bits.mask(0) == 0
    assert bits.mask(1) == 1
    assert bits.mask(13) == 0x1FFF
    assert bits.mask(32) == 0xFFFFFFFF


def test_extract_basic():
    assert bits.extract(0xDEADBEEF, 0, 7) == 0xEF
    assert bits.extract(0xDEADBEEF, 28, 31) == 0xD
    assert bits.extract(0xFFFFFFFF, 5, 5) == 1


def test_extract_signed():
    assert bits.extract_signed(0x1FFF, 0, 12) == -1
    assert bits.extract_signed(0x0FFF, 0, 12) == 4095
    assert bits.extract_signed(0x1000, 0, 12) == -4096


def test_insert_roundtrip_example():
    word = bits.insert(0, 0, 12, -5)
    assert bits.extract_signed(word, 0, 12) == -5


def test_insert_preserves_other_bits():
    word = bits.insert(0xFFFFFFFF, 8, 15, 0)
    assert word == 0xFFFF00FF


def test_bad_range_raises():
    with pytest.raises(ValueError):
        bits.extract(0, 5, 3)
    with pytest.raises(ValueError):
        bits.insert(0, 5, 3, 1)


def test_sign_extend():
    assert bits.sign_extend(0xFF, 8) == -1
    assert bits.sign_extend(0x7F, 8) == 127
    assert bits.sign_extend(0x80, 8) == -128


def test_to_s32_and_u32():
    assert bits.to_s32(0xFFFFFFFF) == -1
    assert bits.to_s32(0x7FFFFFFF) == 0x7FFFFFFF
    assert bits.to_u32(-1) == 0xFFFFFFFF


def test_fits():
    assert bits.fits_signed(-4096, 13)
    assert not bits.fits_signed(4096, 13)
    assert bits.fits_unsigned(0x3FFFFF, 22)
    assert not bits.fits_unsigned(-1, 22)


def test_words_bytes_roundtrip():
    ws = [0, 1, 0xDEADBEEF, 0xFFFFFFFF]
    assert bits.bytes_to_words(bits.words_to_bytes(ws)) == ws


def test_bytes_to_words_unaligned():
    with pytest.raises(ValueError):
        bits.bytes_to_words(b"\x00\x01\x02")


@given(words, st.integers(min_value=0, max_value=31),
       st.integers(min_value=0, max_value=31))
def test_insert_extract_roundtrip(word, a, b):
    lo, hi = min(a, b), max(a, b)
    value = word & bits.mask(hi - lo + 1)
    assert bits.extract(bits.insert(0, lo, hi, value), lo, hi) == value


@given(words)
def test_s32_u32_roundtrip(word):
    assert bits.to_u32(bits.to_s32(word)) == word


@given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1),
       st.integers(min_value=1, max_value=32))
def test_sign_extend_idempotent(value, width):
    truncated = value & bits.mask(width)
    extended = bits.sign_extend(truncated, width)
    assert extended & bits.mask(width) == truncated
