"""CFG analyses: dominators, loops, liveness, slicing, indirect jumps."""

from repro.asm import assemble
from repro.binfmt import link
from repro.core import Executable
from repro.core.analysis.dominators import dominates, dominators
from repro.core.analysis.loops import natural_loops
from repro.minic import GCC_LIKE, SUNPRO_LIKE, compile_to_image
from repro.workloads import build_image

LOOPY = """
int f(int n) {
    int i; int j; int s;
    s = 0;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < i; j = j + 1) {
            s = s + j;
        }
    }
    return s;
}
int main(void) { print_int(f(6)); return 0; }
"""


def _cfg(name, source, options=GCC_LIKE):
    exe = Executable(compile_to_image(source, options)).read_contents()
    return exe.routine(name).control_flow_graph()


def test_dominators_entry_dominates_all():
    cfg = _cfg("f", LOOPY)
    idom = dominators(cfg)
    for block in cfg.blocks:
        if block in idom:
            assert dominates(idom, cfg.entry, block)


def test_dominators_linear_chain():
    cfg = _cfg("main", "int main(void) { return 0; }")
    idom = dominators(cfg)
    first = cfg.entry.succ[0].dst
    assert idom[first] is cfg.entry


def test_natural_loops_nesting():
    cfg = _cfg("f", LOOPY)
    loops = natural_loops(cfg)
    assert len(loops) == 2
    inner, outer = loops[0], loops[1]
    assert len(inner.body) < len(outer.body)
    # Inner loop is nested inside the outer loop body.
    assert inner.header.id in outer.body


def test_loop_free_routine_has_no_loops():
    cfg = _cfg("main", "int main(void) { return 0; }")
    assert natural_loops(cfg) == []


def test_liveness_dead_after_last_use():
    source = """
    int f(int a) {
        return a + 1;
    }
    int main(void) { print_int(f(1)); return 0; }
    """
    cfg = _cfg("f", source)
    liveness = cfg.live_registers()
    # At routine entry (before the save) all windowed registers are
    # caller state and must be treated as live.
    entry_block = cfg.entry.succ[0].dst
    live = liveness.live_before(entry_block, 0)
    assert 16 in live and 24 in live  # %l0, %i0
    # %g2-%g4 (application globals untouched here) stay dead.
    assert 2 not in live and 3 not in live


def test_liveness_call_clobbers():
    cfg = _cfg("main", "int main(void) { print_int(1); return 0; }")
    liveness = cfg.live_registers()
    surrogate = next(b for b in cfg.blocks if b.kind == "surrogate")
    # Argument registers are live into the call.
    assert 8 in liveness.live_in[surrogate.id]


def test_liveness_scavenging_inside_body():
    """Past the save, most locals are genuinely dead at block heads."""
    cfg = _cfg("f", LOOPY)
    liveness = cfg.live_registers()
    blocks = cfg.normal_blocks()
    inner = max(blocks, key=lambda b: b.start)
    live = liveness.live_before(inner, 0)
    dead = [r for r in range(16, 24) if r not in live]
    assert dead, "some %l registers are scavengeable"


def test_backward_slice_finds_address_computation():
    image = build_image("interp")
    exe = Executable(image).read_contents()
    step = exe.routine("step")
    cfg = step.control_flow_graph()
    jumps = [b for b in cfg.normal_blocks()
             if b.last_instruction is not None
             and b.last_instruction.category.value == "jump_indirect"]
    assert jumps
    block = jumps[0]
    inst = block.last_instruction
    slice_ = cfg.backward_slice(block, len(block.instructions) - 1,
                                inst.field("rs1"))
    # The slice reaches the sethi/or pair and the table load.
    names = {block.instructions[i][1].name
             for (block, i) in slice_.instructions()}
    assert "ld" in names
    assert "sethi" in names or "sll" in names


def test_indirect_jump_dispatch_table():
    exe = Executable(build_image("interp")).read_contents()
    cfg = exe.routine("step").control_flow_graph()
    tables = [i for i in cfg.indirect_jumps if i.status == "table"]
    assert len(tables) == 1
    info = tables[0]
    assert info.index_bound == 12  # cases 0..11 in the interpreter switch
    assert len(info.targets) == info.index_bound
    for target in info.targets:
        assert exe.is_text_address(target)
    # Computed edges connect to the case blocks.
    computed = [e for e in cfg.all_edges() if e.kind == "computed"]
    assert len(computed) >= 10


def test_tail_call_jumps_classified():
    exe = Executable(build_image("tailcalls", SUNPRO_LIKE)).read_contents()
    statuses = []
    for routine in exe.all_routines():
        cfg = routine.control_flow_graph()
        statuses.extend(i.status for i in cfg.indirect_jumps)
    assert "tailcall" in statuses
    assert "unanalyzable" not in statuses


def test_gcc_like_corpus_has_no_unanalyzable_jumps():
    """The paper's gcc measurement: 0 of 1,325 indirect jumps
    unanalyzable."""
    for name in ("interp", "qsort", "fib"):
        exe = Executable(build_image(name)).read_contents()
        for routine in exe.all_routines():
            cfg = routine.control_flow_graph()
            for info in cfg.indirect_jumps:
                assert info.status != "unanalyzable"


OPAQUE_JUMP = """
    .text
    .global _start
_start:
    set slot, %l0
    set target, %l1
    st %l1, [%l0]
    ld [%l0], %l2      ! target flows through memory: slice fails
    jmp %l2
    nop
target:
    mov 7, %o0
    mov 2, %g1
    ta 0
    clr %o0
    mov 1, %g1
    ta 0
    .data
slot: .word 0
"""


def test_unanalyzable_jump_through_memory():
    image = link([assemble(OPAQUE_JUMP, "sparc")])
    exe = Executable(image).read_contents()
    cfg = exe.routine("_start").control_flow_graph()
    assert any(i.status == "unanalyzable" for i in cfg.indirect_jumps)
    assert cfg.incomplete
