"""minic lexer and parser."""

import pytest

from repro.minic import ast
from repro.minic.lexer import LexError, tokenize
from repro.minic.parser import ParseError, parse


def test_tokens():
    tokens = tokenize("int x = 0x1F + 'a'; // comment\n/* block */ y")
    kinds = [t.kind for t in tokens]
    assert kinds == ["kw", "id", "op", "num", "op", "num", "op", "id",
                     "eof"]
    assert tokens[3].value == 0x1F
    assert tokens[5].value == ord("a")


def test_string_escapes():
    tokens = tokenize(r'"a\nb\tc\0"')
    assert tokens[0].value == "a\nb\tc\0"


def test_bad_character():
    with pytest.raises(LexError):
        tokenize("int @ x;")


def test_parse_function_shapes():
    program = parse("""
    int add(int a, int b) { return a + b; }
    static int s(void) { return 0; }
    int main(void) { return add(1, 2); }
    """)
    assert [f.name for f in program.functions] == ["add", "s", "main"]
    assert program.function("s").static
    assert len(program.function("add").params) == 2


def test_parse_globals():
    program = parse("""
    int x;
    int y = 5;
    int arr[10];
    int init[] = { 1, 2, 3 };
    char msg[] = "hi";
    static int hidden_global;
    """)
    by_name = {g.name: g for g in program.globals}
    assert by_name["y"].init == 5
    assert by_name["arr"].array == 10
    assert by_name["init"].array == 3
    assert by_name["msg"].array == 3  # "hi" + NUL
    assert by_name["hidden_global"].static


def test_parse_statements():
    program = parse("""
    int f(int n) {
        int i;
        for (i = 0; i < n; i = i + 1) {
            if (i == 2) { continue; }
            while (n > 0) { break; }
            do { n = n - 1; } while (n > 10);
        }
        switch (n) {
        case 1: return 1;
        case 2: break;
        default: return 0;
        }
        return n;
    }
    """)
    body = program.function("f").body.statements
    assert any(isinstance(s, ast.For) for s in body)
    switch = [s for s in body if isinstance(s, ast.Switch)][0]
    assert [value for value, _ in switch.cases] == [1, 2]
    assert switch.default is not None


def test_parse_expressions():
    program = parse("""
    int f(int *p, int x) {
        x += 2;
        x = p[1] + *p - -x;
        x = x < 3 ? 1 : 0;
        x = (int)p;
        p = (int *)x;
        x++;
        --x;
        return x && p || !x;
    }
    """)
    assert program.function("f") is not None


def test_prototypes_skipped():
    program = parse("""
    static int odd(int n);
    static int odd(int n) { return n & 1; }
    """)
    assert len(program.functions) == 1


def test_parse_errors():
    with pytest.raises(ParseError):
        parse("int f( { }")
    with pytest.raises(ParseError):
        parse("int f(void) { return; ")
    with pytest.raises(ParseError):
        parse("int f(void) { switch (1) { x = 1; } }")
