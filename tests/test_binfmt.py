"""EELF images: serialization round-trips and the linker."""

import pytest
from hypothesis import given, strategies as st

from repro.asm import assemble
from repro.binfmt import (
    Image,
    LinkError,
    Relocation,
    Section,
    Symbol,
    link,
    read_image,
    write_image,
)
from repro.binfmt.image import SEC_EXEC, SEC_NOBITS, SEC_WRITE
from repro.binfmt.serialize import FormatError, image_from_bytes, \
    image_to_bytes


def _sample_image():
    image = Image("sparc", kind="exec", entry=0x1000)
    text = Section(".text", vaddr=0x1000, flags=SEC_EXEC)
    text.append_word(0x01000000)
    text.append_word(0xDEADBEEF)
    image.add_section(text)
    data = Section(".data", vaddr=0x2000, flags=SEC_WRITE,
                   data=bytearray(b"hello world\x00"))
    image.add_section(data)
    bss = Section(".bss", vaddr=0x3000, flags=SEC_WRITE | SEC_NOBITS)
    bss.nobits_size = 64
    image.add_section(bss)
    image.add_symbol(Symbol("main", 0x1000, kind="func"))
    image.add_symbol(Symbol("buffer", 0x3000, kind="object",
                            binding="local", section=".bss"))
    return image


def test_roundtrip_bytes():
    image = _sample_image()
    back = image_from_bytes(image_to_bytes(image))
    assert back.arch == "sparc"
    assert back.entry == 0x1000
    assert back.get_section(".text").word_at(0x1004) == 0xDEADBEEF
    assert back.get_section(".data").data == image.get_section(".data").data
    assert back.get_section(".bss").size == 64
    assert back.find_symbol("main").value == 0x1000
    assert back.find_symbol("buffer").binding == "local"


def test_roundtrip_file(tmp_path):
    path = str(tmp_path / "a.out")
    write_image(_sample_image(), path)
    back = read_image(path)
    assert back.find_symbol("main") is not None


def test_bad_magic():
    with pytest.raises(FormatError):
        image_from_bytes(b"NOPE" + b"\x00" * 64)


def test_truncated():
    blob = image_to_bytes(_sample_image())
    with pytest.raises(FormatError):
        image_from_bytes(blob[: len(blob) // 2])


def test_section_queries():
    image = _sample_image()
    assert image.section_at(0x1004).name == ".text"
    assert image.section_at(0x2003).name == ".data"
    assert image.section_at(0x9999) is None
    assert image.word_at(0x1000) == 0x01000000
    with pytest.raises(KeyError):
        image.word_at(0x3000)  # .bss has no file bytes


def test_strip_and_hide():
    image = _sample_image()
    image.hide_symbols(["main"])
    assert image.find_symbol("main") is None
    assert image.find_symbol("buffer") is not None
    image.strip()
    assert not image.symbols


def test_relocation_roundtrip():
    image = Image("sparc", kind="obj")
    text = Section(".text", flags=SEC_EXEC)
    text.append_word(0)
    image.add_section(text)
    image.add_relocation(".text", Relocation(0, "HI22", "foo", 4))
    back = image_from_bytes(image_to_bytes(image))
    reloc = back.relocations[".text"][0]
    assert (reloc.kind, reloc.symbol, reloc.addend) == ("HI22", "foo", 4)


@given(st.binary(min_size=0, max_size=64),
       st.integers(min_value=0, max_value=0xFFFFFFF0))
def test_roundtrip_arbitrary_data(data, entry):
    image = Image("mips", kind="exec", entry=entry)
    section = Section(".data", vaddr=0x2000, flags=SEC_WRITE,
                      data=bytearray(data))
    image.add_section(section)
    back = image_from_bytes(image_to_bytes(image))
    assert bytes(back.get_section(".data").data) == data
    assert back.entry == entry


# ----------------------------------------------------------------------
# Linker
# ----------------------------------------------------------------------

def test_link_two_objects():
    a = assemble("""
        .text
        .global _start
    _start:
        call helper
        nop
        mov 1, %g1
        ta 0
    """, "sparc")
    b = assemble("""
        .text
        .global helper
    helper:
        retl
        nop
    """, "sparc")
    image = link([a, b])
    assert image.entry == image.find_symbol("_start").value
    helper = image.find_symbol("helper")
    # The call displacement must reach helper.
    from repro.isa import get_codec

    codec = get_codec("sparc")
    start = image.find_symbol("_start").value
    call = codec.decode(image.word_at(start))
    assert codec.control_target(call, start) == helper.value


def test_link_data_and_bss_layout():
    obj = assemble("""
        .text
        .global _start
    _start:
        nop
        .data
    d:  .word 7
        .bss
    b:  .space 16
    """, "sparc")
    image = link([obj])
    text = image.get_section(".text")
    data = image.get_section(".data")
    bss = image.get_section(".bss")
    assert text.vaddr < data.vaddr < bss.vaddr
    assert data.word_at(image.find_symbol("d").value) == 7
    assert bss.size >= 16


def test_link_word_relocation():
    obj = assemble("""
        .text
        .global _start
    _start:
        nop
    target:
        nop
        .data
    tbl: .word target, target+4
    """, "sparc")
    image = link([obj])
    target = image.find_symbol("target").value
    table = image.find_symbol("tbl").value
    assert image.word_at(table) == target
    assert image.word_at(table + 4) == target + 4


def test_link_undefined_symbol():
    obj = assemble("""
        .text
        .global _start
    _start:
        call nowhere
        nop
    """, "sparc")
    with pytest.raises(LinkError):
        link([obj])


def test_link_duplicate_global():
    a = assemble(".text\n.global _start\n_start: nop\n", "sparc")
    b = assemble(".text\n.global _start\n_start: nop\n", "sparc")
    with pytest.raises(LinkError):
        link([a, b])


def test_link_missing_entry():
    obj = assemble(".text\n.global foo\nfoo: nop\n", "sparc")
    with pytest.raises(LinkError):
        link([obj])


def test_link_mixed_arch():
    a = assemble(".text\n.global _start\n_start: nop\n", "sparc")
    b = assemble(".text\n.global x\nx: nop\n", "mips")
    with pytest.raises(LinkError):
        link([a, b])


def test_local_symbol_wins_over_global():
    # Each object's local label resolves within the object.
    a = assemble("""
        .text
        .global _start
    _start:
        b near
        nop
    near:
        nop
    """, "sparc")
    b = assemble("""
        .text
        .global near
    near:
        nop
    """, "sparc")
    image = link([a, b])
    from repro.isa import get_codec

    codec = get_codec("sparc")
    start = image.find_symbol("_start").value
    branch = codec.decode(image.word_at(start))
    # Branch goes to the local 'near' (start + 8), not the global one.
    assert codec.control_target(branch, start) == start + 8
