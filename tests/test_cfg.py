"""CFG construction: delay-slot normalization (Figure 3), surrogates,
uneditable marking."""

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.core import Executable
from repro.core.cfg import (
    BK_DELAY,
    BK_ENTRY,
    BK_EXIT,
    BK_NORMAL,
    BK_SURROGATE,
    CFGError,
)
from repro.workloads import build_image


def exe_for(source, arch="sparc"):
    image = link([assemble(source, arch)])
    return Executable(image).read_contents()


def cfg_of(source, name="_start", arch="sparc"):
    exe = exe_for(source, arch)
    return exe.routine(name).control_flow_graph()


def test_nonannulled_branch_duplicates_delay():
    """Figure 3: the delay instruction of a plain conditional branch is
    duplicated along both edges."""
    cfg = cfg_of("""
        .text
        .global _start
    _start:
        cmp %o0, 0
        bne over
        add %l1, %l2, %l1
        mov 1, %l3
    over:
        mov 1, %g1
        ta 0
    """)
    delays = [b for b in cfg.blocks if b.kind == BK_DELAY]
    assert len(delays) == 2
    words = {b.instructions[0][1].word for b in delays}
    assert len(words) == 1  # same instruction, duplicated


def test_annulled_branch_single_delay_on_taken_edge():
    """Figure 3's exact case: annulled conditional branch."""
    cfg = cfg_of("""
        .text
        .global _start
    _start:
        cmp %o0, 0
        bne,a over
        add %l1, %l2, %l1
        mov 1, %l3
    over:
        mov 1, %g1
        ta 0
    """)
    delays = [b for b in cfg.blocks if b.kind == BK_DELAY]
    assert len(delays) == 1
    delay = delays[0]
    # The delay block hangs off the branch's taken edge.
    incoming = delay.pred[0]
    assert incoming.kind == "taken"
    # Fall-through bypasses the delay instruction.
    branch_block = incoming.src
    fall = branch_block.fall_edge()
    assert fall.dst.kind == BK_NORMAL


def test_ba_annulled_has_no_delay_block():
    cfg = cfg_of("""
        .text
        .global _start
    _start:
        ba,a over
        add %l1, %l2, %l1   ! never executes
    over:
        mov 1, %g1
        ta 0
    """)
    assert not any(b.kind == BK_DELAY for b in cfg.blocks)
    # The skipped word is unreached.
    assert len(cfg.unreached) == 1


def test_call_gets_delay_and_surrogate():
    cfg = cfg_of("""
        .text
        .global _start
    _start:
        call f
        mov 1, %o0
        mov 1, %g1
        ta 0
        .global f
    f:
        retl
        nop
    """)
    surrogates = [b for b in cfg.blocks if b.kind == BK_SURROGATE]
    assert len(surrogates) == 1
    surrogate = surrogates[0]
    assert not surrogate.editable
    delay = surrogate.pred[0].src
    assert delay.kind == BK_DELAY and not delay.editable
    continuation = surrogate.succ[0].dst
    assert continuation.kind == BK_NORMAL


def test_return_delay_uneditable():
    exe = exe_for("""
        .text
        .global _start
    _start:
        mov 1, %g1
        ta 0
        .global f
    f:
        retl
        nop
    """)
    cfg = exe.routine("f").control_flow_graph()
    delays = [b for b in cfg.blocks if b.kind == BK_DELAY]
    assert len(delays) == 1
    assert not delays[0].editable
    assert delays[0].succ[0].dst.kind == BK_EXIT


def test_entry_exit_pseudo_blocks():
    cfg = cfg_of("""
        .text
        .global _start
    _start:
        mov 1, %g1
        ta 0
    """)
    assert cfg.entry.kind == BK_ENTRY and not cfg.entry.editable
    assert cfg.exit.kind == BK_EXIT and not cfg.exit.editable
    assert cfg.entry.succ[0].dst.kind == BK_NORMAL


def test_syscall_does_not_break_block():
    cfg = cfg_of("""
        .text
        .global _start
    _start:
        mov 2, %g1
        ta 0
        mov 3, %g1
        ta 0
        mov 1, %g1
        ta 0
    """)
    assert len(cfg.normal_blocks()) == 1
    assert len(cfg.normal_blocks()[0]) == 6


def test_branch_into_delay_slot():
    """A delay-slot word that is also a branch target becomes a normal
    block of its own in addition to the delay copies."""
    cfg = cfg_of("""
        .text
        .global _start
    _start:
        cmp %o0, 0
        bne slot
        nop
        ba over
    slot:
        add %l1, 1, %l1
    over:
        mov 1, %g1
        ta 0
    """)
    # 'slot' is the delay word of `ba over` and a branch target.
    slot_blocks = [b for b in cfg.blocks if b.start is not None
                   and any(addr == b.start for addr, _ in b.instructions)
                   and b.kind == BK_NORMAL]
    starts = {b.start for b in cfg.normal_blocks()}
    exe_start = cfg.routine.start
    assert exe_start + 16 in starts  # slot: is its own block


def test_editable_fractions_in_paper_range():
    """15-20% of blocks and edges are uneditable (section 3.3)."""
    total_blocks = editable_blocks = 0
    total_edges = editable_edges = 0
    for name in ("fib", "qsort", "interp", "tree"):
        exe = Executable(build_image(name)).read_contents()
        for routine in exe.all_routines():
            cfg = routine.control_flow_graph()
            blocks_editable, blocks_total, edges_editable, edges_total = \
                cfg.editable_stats()
            total_blocks += blocks_total
            editable_blocks += blocks_editable
            total_edges += edges_total
            editable_edges += edges_editable
    uneditable_block_fraction = 1 - editable_blocks / total_blocks
    uneditable_edge_fraction = 1 - editable_edges / total_edges
    # The paper reports 15-20% on SPEC92; minic routines are much
    # smaller (the runtime's leaf routines are 2-3 instructions), so the
    # per-routine entry/exit/surrogate overhead inflates the fraction.
    # The bench (E3) reports the exact numbers; here we pin the order of
    # magnitude: a substantial minority, never a majority of blocks.
    assert 0.10 < uneditable_block_fraction < 0.60
    assert 0.10 < uneditable_edge_fraction < 0.65


def test_block_census_kinds():
    exe = Executable(build_image("fib")).read_contents()
    cfg = exe.routine("fib").control_flow_graph()
    census = cfg.block_census()
    assert census["entry"] == 1
    assert census["exit"] == 1
    assert census["surrogate"] == 2  # two recursive calls
    assert census["delay"] > 0


def test_edit_restrictions():
    exe = Executable(build_image("fib")).read_contents()
    cfg = exe.routine("fib").control_flow_graph()
    surrogate = next(b for b in cfg.blocks if b.kind == BK_SURROGATE)
    from repro.core.snippet import CodeSnippet

    snippet = CodeSnippet([0])
    with pytest.raises(CFGError):
        surrogate.add_code_before(0, snippet)
    for edge in surrogate.succ:
        with pytest.raises(CFGError):
            edge.add_code_along(snippet)
    block = cfg.normal_blocks()[0]
    last_index = len(block.instructions) - 1
    if block.instructions[last_index][1].is_control:
        with pytest.raises(CFGError):
            block.add_code_after(last_index, snippet)
        with pytest.raises(CFGError):
            block.delete_instruction(last_index)


def test_mips_branch_likely_normalization():
    cfg = cfg_of("""
        .text
        .global _start
    _start:
        beql $t0, $zero, over
        addiu $t1, $t1, 1
        addiu $t2, $t2, 1
    over:
        li $v0, 1
        syscall
    """, arch="mips")
    delays = [b for b in cfg.blocks if b.kind == BK_DELAY]
    assert len(delays) == 1  # annulled: taken edge only
    assert delays[0].pred[0].kind == "taken"


def test_mips_plain_branch_duplicates():
    cfg = cfg_of("""
        .text
        .global _start
    _start:
        beq $t0, $zero, over
        addiu $t1, $t1, 1
        addiu $t2, $t2, 1
    over:
        li $v0, 1
        syscall
    """, arch="mips")
    delays = [b for b in cfg.blocks if b.kind == BK_DELAY]
    assert len(delays) == 2
