"""Machine conventions: constant synthesis, counters, spills, rebinding."""

import pytest

from repro.isa import get_codec, get_conventions


@pytest.fixture(params=["sparc", "mips"])
def arch(request):
    return request.param


def test_load_const_small(arch):
    conventions = get_conventions(arch)
    words = conventions.load_const(8, 42)
    assert len(words) == 1


def test_load_const_large(arch):
    conventions = get_conventions(arch)
    words = conventions.load_const(8, 0x12345678)
    assert len(words) == 2


def test_load_const_negative(arch):
    conventions = get_conventions(arch)
    assert len(conventions.load_const(8, -1 & 0xFFFFFFFF)) <= 2


def test_counter_increment_shape(arch):
    conventions = get_conventions(arch)
    codec = get_codec(arch)
    words = conventions.counter_increment(0x1000400, *conventions.
                                          placeholder_regs[:2])
    assert len(words) == 4
    categories = [codec.decode(w).category.value for w in words]
    assert "load" in categories and "store" in categories


def test_spill_unspill_distinct_slots(arch):
    conventions = get_conventions(arch)
    a = conventions.spill(8, 0)[0]
    b = conventions.spill(8, 1)[0]
    assert a != b
    assert conventions.unspill(8, 0) != conventions.unspill(8, 1)


def test_rebind_registers(arch):
    conventions = get_conventions(arch)
    codec = get_codec(arch)
    p0, p1 = conventions.placeholder_regs[:2]
    words = conventions.counter_increment(0x1000400, p0, p1)
    rebound = conventions.rebind_registers(words, {p0: 4, p1: 5})
    for word in rebound:
        inst = codec.decode(word)
        assert p0 not in inst.reads | inst.writes
        assert p1 not in inst.reads | inst.writes


def test_rebind_empty_mapping_is_identity(arch):
    conventions = get_conventions(arch)
    words = conventions.counter_increment(0x1000400, *conventions.
                                          placeholder_regs[:2])
    assert conventions.rebind_registers(words, {}) == words


def test_long_jump_ends_in_indirect(arch):
    conventions = get_conventions(arch)
    codec = get_codec(arch)
    words = conventions.long_jump(conventions.placeholder_regs[0],
                                  0x12345678)
    kinds = [codec.decode(w).category.value for w in words]
    assert "jump_indirect" in kinds or "jump" in kinds


def test_sparc_cc_save_restore():
    conventions = get_conventions("sparc")
    codec = get_codec("sparc")
    save = conventions.save_cc(16)[0]
    restore = conventions.restore_cc(16)[0]
    assert codec.decode(save).name == "rdpsr"
    assert codec.decode(restore).name == "wrpsr"


def test_sparc_direct_jump_annulled():
    conventions = get_conventions("sparc")
    codec = get_codec("sparc")
    word = conventions.direct_jump_annulled(0x1000, 0x2000)
    inst = codec.decode(word)
    assert inst.cond == "a" and not inst.is_delayed
    assert codec.control_target(inst, 0x1000) == 0x2000


def test_mips_direct_jump_region():
    conventions = get_conventions("mips")
    from repro.isa.base import SpanError

    with pytest.raises(SpanError):
        conventions.direct_jump(0x1000, 0x30000000)
