"""Shared test configuration.

The analysis cache defaults to ``~/.cache/repro-eel``; pointing it at a
per-session temporary directory keeps the test suite hermetic (no state
leaks between suite runs or into the developer's real cache).  An
explicitly exported ``REPRO_CACHE_DIR`` is respected so CI can exercise
a pre-warmed cache deliberately.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_analysis_cache(tmp_path_factory):
    if os.environ.get("REPRO_CACHE_DIR"):
        yield
        return
    directory = tmp_path_factory.mktemp("analysis-cache")
    os.environ["REPRO_CACHE_DIR"] = str(directory)
    try:
        yield
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)
