"""Interprocedural call graph."""

from repro.core import Executable
from repro.core.analysis.callgraph import CallGraph
from repro.minic import SUNPRO_LIKE
from repro.workloads import build_image


def graph_for(name, options=None):
    image = build_image(name) if options is None \
        else build_image(name, options)
    return CallGraph(Executable(image).read_contents())


def test_direct_calls_found():
    graph = graph_for("fib")
    callees = {r.name for r in graph.callees("main")}
    assert "fib" in callees
    assert "print_int" in callees
    # fib is recursive: it calls itself.
    assert "fib" in {r.name for r in graph.callees("fib")}


def test_callers():
    graph = graph_for("fib")
    assert "main" in graph.callers_of("fib")
    assert "_start" in graph.callers_of("main")


def test_leaf_routines():
    graph = graph_for("fib")
    leaves = {getattr(r, "name", r) for r in graph.leaf_routines()}
    # The syscall wrappers are leaves.
    assert "print_int" in leaves
    assert "main" not in leaves


def test_reachable_from_start():
    graph = graph_for("fib")
    reachable = graph.reachable_from("_start")
    assert {"_start", "main", "fib", "print_int"} <= reachable
    # Unused library routines are not reachable.
    assert "memset_words" not in reachable


def test_bottom_up_order():
    graph = graph_for("fib")
    order = graph.bottom_up_order()
    assert order.index("fib") < order.index("main")
    assert order.index("main") < order.index("_start")


def test_tail_calls_are_edges():
    graph = graph_for("tailcalls", SUNPRO_LIKE)
    tail_sites = [s for s in graph.sites if s.kind == "tailcall"]
    assert tail_sites
    names = {(s.caller.name, s.target.name if s.target else None)
             for s in tail_sites}
    assert ("is_even", "is_odd") in names
    assert ("is_odd", "is_even") in names


def test_no_indirect_calls_in_corpus():
    graph = graph_for("interp")
    assert not graph.has_indirect_calls()
