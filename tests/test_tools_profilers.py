"""Profiling tools: branch counter, qpt2 (block/edge), classic baseline."""

import pytest

from repro.core import Executable
from repro.minic import SUNPRO_LIKE
from repro.sim import run_image
from repro.tools.branch_count import BranchCounter, count_branches
from repro.tools.qpt import QptProfiler, profile
from repro.tools.qpt_classic import ClassicProfiler, profile_classic
from repro.workloads import build_image, expected_output


def ground_truth_block_counts(image):
    base = run_image(image, count_pcs=True)
    exe = Executable(image).read_contents()
    truth = {}
    for routine in exe.all_routines():
        cfg = routine.control_flow_graph()
        for block in cfg.normal_blocks():
            truth[(routine.name, block.start)] = base.pc_counts.get(
                block.start, 0)
    return base, truth


def test_branch_counter_fib():
    image = build_image("fib")
    simulator, counts = count_branches(image)
    assert simulator.output == expected_output("fib")
    nonzero = {desc: count for desc, count in counts if count}
    # fib has one conditional branch, taken + fall-through sum to the
    # number of calls.
    assert sum(nonzero.values()) == 5167


def test_branch_counter_processes_hidden_routines():
    from repro.minic import GCC_LIKE, compile_to_image

    source = """
    static int helper(int n) {
        if (n > 2) { return 1; }
        return 0;
    }
    int main(void) {
        int i;
        for (i = 0; i < 4; i = i + 1) { print_int(helper(i)); }
        return 0;
    }
    """
    image = compile_to_image(source, GCC_LIKE.named(hide_statics=True))
    tool = BranchCounter(image).run()
    edited = tool.edited_image()
    simulator = run_image(edited)
    assert simulator.output == "0001"
    counts = tool.counts(simulator)
    hidden_counts = [c for (desc, c) in counts
                     if str(desc[0]).startswith("hidden_")]
    assert hidden_counts and sum(hidden_counts) > 0


@pytest.mark.parametrize("mode", ["block", "edge"])
@pytest.mark.parametrize("name", ["fib", "interp"])
def test_qpt_counts_match_ground_truth(mode, name):
    image = build_image(name)
    base, truth = ground_truth_block_counts(image)
    tool, simulator = profile(image, mode=mode)
    assert simulator.output == base.output
    counts = tool.block_counts(simulator)
    assert counts, "profiler produced counts"
    for key, value in counts.items():
        assert truth.get(key, 0) == value, key


def test_qpt_edge_mode_instruments_fewer_sites():
    """Ball-Larus placement: spanning-tree edges go uncounted."""
    image = build_image("qsort")
    block_tool = QptProfiler(image, mode="block").run()
    edge_tool = QptProfiler(image, mode="edge").run()
    assert edge_tool.counters.used < block_tool.counters.used


def test_qpt_edge_mode_cheaper_at_runtime():
    image = build_image("hanoi")
    base = run_image(image)
    _, block_run = profile(image, mode="block")
    _, edge_run = profile(image, mode="edge")
    assert edge_run.instructions_executed < block_run.instructions_executed


def test_qpt_edge_counts_flow_conservation():
    image = build_image("fib")
    tool, simulator = profile(image, mode="edge")
    edge_counts = tool.edge_counts(simulator)
    assert edge_counts
    assert all(count >= 0 for count in edge_counts.values())


def test_qpt_rejects_bad_mode():
    with pytest.raises(ValueError):
        QptProfiler(build_image("fib"), mode="banana")


@pytest.mark.parametrize("name", ["fib", "interp"])
def test_classic_profiler_preserves_behavior(name):
    image = build_image(name)
    tool, simulator = profile_classic(image)
    assert simulator.output == expected_output(name)


def test_classic_profiler_sunpro_tailcalls():
    image = build_image("tailcalls", SUNPRO_LIKE)
    tool, simulator = profile_classic(image)
    assert simulator.output == expected_output("tailcalls")


def test_classic_counts_are_plausible():
    image = build_image("fib")
    tool, simulator = profile_classic(image)
    counts = tool.counts(simulator)
    exe = Executable(image).read_contents()
    fib_start = exe.routine("fib").start
    assert counts.get(fib_start) == 5167


def test_classic_rejects_mips():
    from repro.workloads import build_mips_image

    with pytest.raises(ValueError):
        ClassicProfiler(build_mips_image("mips_fib"))
