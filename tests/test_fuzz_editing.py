"""Differential fuzzing: random programs survive the identity transform.

A seeded generator produces random (but valid and terminating) minic
programs; each is compiled under both compiler personalities, run, put
through EEL's identity transform, and run again.  Output and exit code
must survive the round trip — this exercises symbol refinement, CFG
normalization, indirect-jump analysis, layout, and re-folding against
code shapes no hand-written test anticipates.
"""

import random

import pytest

from repro.core import Executable
from repro.minic import GCC_LIKE, SUNPRO_LIKE, compile_to_image
from repro.sim import run_image


class ProgramGenerator:
    """Generates small, terminating minic programs."""

    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.counter = 0

    def fresh(self, prefix):
        self.counter += 1
        return "%s%d" % (prefix, self.counter)

    def expr(self, names, depth=0):
        rng = self.rng
        if depth > 2 or rng.random() < 0.4:
            if names and rng.random() < 0.6:
                return rng.choice(names)
            return str(rng.randint(-50, 50))
        op = rng.choice(["+", "-", "*", "&", "|", "^"])
        return "(%s %s %s)" % (self.expr(names, depth + 1), op,
                               self.expr(names, depth + 1))

    # Loop counters are reserved: statements may read them but never
    # assign them, which guarantees every generated loop terminates.
    TARGETS = ("x", "y")

    def statement(self, names, depth, loop_depth=0):
        rng = self.rng
        kind = rng.randint(0, 5 if depth < 2 else 3)
        if kind == 0:
            return "%s = %s;" % (rng.choice(self.TARGETS),
                                 self.expr(names))
        if kind == 1:
            return "acc = acc + (%s);" % self.expr(names)
        if kind == 2:
            return "print_int(%s & 1023); print_char(' ');" \
                % self.expr(names)
        if kind == 3:
            target = rng.choice(self.TARGETS)
            return "%s = %s > %s ? %s : %s;" % (
                target, self.expr(names), self.expr(names),
                self.expr(names), self.expr(names))
        if kind == 4:
            body = " ".join(self.statement(names, depth + 1, loop_depth)
                            for _ in range(rng.randint(1, 3)))
            return "if (%s > %s) { %s } else { %s }" % (
                self.expr(names), self.expr(names), body,
                self.statement(names, depth + 1, loop_depth))
        # Bounded loop over a reserved counter (i, j by nesting level).
        var = "i" if loop_depth == 0 else "j"
        body = " ".join(self.statement(names + [var], depth + 1,
                                       loop_depth + 1)
                        for _ in range(rng.randint(1, 2)))
        return ("for (%s = 0; %s < %d; %s = %s + 1) { %s }"
                % (var, var, rng.randint(1, 8), var, var, body))

    def switch_function(self, name):
        rng = self.rng
        cases = sorted(rng.sample(range(0, 12), rng.randint(4, 7)))
        arms = "\n".join("    case %d: return %d;" % (value,
                                                      rng.randint(0, 99))
                         for value in cases)
        return ("static int %s(int x) {\n  switch (x) {\n%s\n"
                "    default: return -1;\n  }\n}\n" % (name, arms))

    def helper_function(self, name):
        names = ["a", "b"]
        body = " ".join(self.statement(names, 1)
                        for _ in range(self.rng.randint(1, 3)))
        return ("static int %s(int a) {\n"
                "  int b; int acc; int x; int y; int i; int j;\n"
                "  b = a * 2; acc = 0; x = a; y = b; i = 0; j = 0;\n"
                "  %s\n  return acc + b + x + y;\n}\n"
                % (name, body))

    def program(self):
        rng = self.rng
        parts = []
        switch = self.fresh("sw")
        helper = self.fresh("fn")
        parts.append(self.switch_function(switch))
        parts.append(self.helper_function(helper))
        names = ["x", "y"]
        statements = [self.statement(names, 0)
                      for _ in range(rng.randint(3, 7))]
        statements.append("print_int(%s(x & 15));" % switch)
        statements.append("print_int(%s(y & 31));" % helper)
        return (
            "%s\nint main(void) {\n"
            "  int x; int y; int i; int j; int acc;\n"
            "  x = %d; y = %d; i = 0; j = 0; acc = 0;\n  %s\n"
            "  print_int(acc & 65535);\n  return 0;\n}\n"
            % ("\n".join(parts), rng.randint(0, 99), rng.randint(0, 99),
               "\n  ".join(statements))
        )


def _identity(image):
    exe = Executable(image).read_contents()
    for routine in exe.all_routines():
        routine.produce_edited_routine()
    out = exe.edited_image()
    out.entry = exe.edited_addr(exe.start_address())
    return out


@pytest.mark.parametrize("seed", range(12))
def test_random_program_identity_roundtrip(seed):
    source = ProgramGenerator(seed).program()
    for options in (GCC_LIKE, SUNPRO_LIKE,
                    GCC_LIKE.named(hide_statics=True)):
        image = compile_to_image(source, options)
        baseline = run_image(image, max_steps=2_000_000)
        edited = _identity(image)
        roundtrip = run_image(edited, max_steps=4_000_000)
        assert roundtrip.output == baseline.output, (seed, options)
        assert roundtrip.exit_code == baseline.exit_code, (seed, options)


@pytest.mark.parametrize("seed", range(6))
def test_random_program_profiles_exactly(seed):
    from repro.tools.qpt import profile

    source = ProgramGenerator(1000 + seed).program()
    image = compile_to_image(source)
    base = run_image(image, count_pcs=True, max_steps=2_000_000)
    exe = Executable(image).read_contents()
    truth = {}
    for routine in exe.all_routines():
        cfg = routine.control_flow_graph()
        for block in cfg.normal_blocks():
            truth[(routine.name, block.start)] = base.pc_counts.get(
                block.start, 0)
    tool, simulator = profile(image, mode="edge")
    assert simulator.output == base.output
    for key, value in tool.block_counts(simulator).items():
        assert truth.get(key, 0) == value, (seed, key)
