"""Symbol-table refinement (paper section 3.1 stages 1-4)."""

from repro.core import Executable
from repro.minic import GCC_LIKE, SUNPRO_LIKE, compile_to_image
from repro.sim import run_image
from repro.workloads import build_image

SOURCE = """
static int helper(int x) { return x * 3; }
static int onlytail(int x) { return helper(x); }
int main(void) {
    print_int(onlytail(2) + helper(1));
    return 0;
}
"""


def test_named_routines_found():
    exe = Executable(build_image("fib")).read_contents()
    names = {r.name for r in exe.routines()}
    assert {"_start", "main", "fib", "print_int", "strlen"} <= names
    assert len(exe.hidden_routines()) == 0


def test_temporary_labels_pruned():
    exe = Executable(build_image("fib")).read_contents()
    names = {r.name for r in exe.routines()}
    assert not any(name.startswith(".L") for name in names)


def test_routine_extents_cover_text_without_overlap():
    exe = Executable(build_image("interp")).read_contents()
    routines = sorted(exe.all_routines(), key=lambda r: r.start)
    for earlier, later in zip(routines, routines[1:]):
        assert earlier.end == later.start
    text = exe.image.get_section(".text")
    assert routines[0].start == text.vaddr
    assert routines[-1].end == text.end


def test_hidden_routines_discovered_via_calls():
    image = compile_to_image(SOURCE, GCC_LIKE.named(hide_statics=True))
    exe = Executable(image).read_contents()
    named = {r.name for r in exe.routines()}
    assert "helper" not in named and "onlytail" not in named
    hidden = list(exe.hidden_routines())
    assert len(hidden) == 2
    for routine in hidden:
        assert routine.name.startswith("hidden_0x")
        assert routine.hidden


def test_hidden_routine_via_tail_call_only():
    # With tail calls the only reference to `helper` from `onlytail` is a
    # frame-pop jump; refinement still finds it through the literal
    # target (stage 4 escape analysis).  The analysis is conservative:
    # it may also split off dead return trailers as extra "routines"
    # (the paper: "may find invalid entries").
    image = compile_to_image(SOURCE,
                             SUNPRO_LIKE.named(hide_statics=True))
    exe = Executable(image).read_contents()
    named = Executable(compile_to_image(SOURCE, SUNPRO_LIKE)) \
        .read_contents()
    expected = {named.routine("helper").start,
                named.routine("onlytail").start}
    found = {r.start for r in exe.hidden_routines()}
    assert expected <= found


def test_stripped_executable_seeded_from_calls():
    image = compile_to_image(SOURCE, GCC_LIKE.named(strip=True))
    exe = Executable(image).read_contents()
    all_routines = exe.all_routines()
    assert all_routines, "stripped executable still yields routines"
    # Every routine reached by a direct call is discovered.
    starts = {r.start for r in all_routines}
    named = Executable(compile_to_image(SOURCE, GCC_LIKE)).read_contents()
    for routine in named.routines():
        if routine.name in ("main", "helper", "onlytail", "print_int"):
            assert routine.start in starts, routine.name


def test_stripped_names_are_not_recreated():
    """The paper: in a stripped executable the analysis finds routines
    but cannot recreate names."""
    image = compile_to_image(SOURCE, GCC_LIKE.named(strip=True))
    exe = Executable(image).read_contents()
    for routine in exe.all_routines():
        assert routine.name.startswith(("hidden_0x", "text_start", "entry"))


def test_dispatch_table_in_text_claimed_as_data():
    image = build_image("interp", GCC_LIKE.named(tables_in_text=True))
    exe = Executable(image).read_contents()
    step = next(r for r in exe.all_routines()
                if r.contains(_routine_start(exe, "step")))
    cfg = step.control_flow_graph()
    infos = [i for i in cfg.indirect_jumps if i.status == "table"]
    assert infos, "switch dispatch table found"
    table = infos[0]
    # The table's words lie inside the text segment yet are data.
    assert exe.is_text_address(table.table_addr)
    claimed = exe.claimed_data(step)
    assert table.table_addr in claimed


def _routine_start(exe, name):
    routine = exe.routine(name)
    assert routine is not None
    return routine.start


def test_tables_in_text_program_still_analyzes_and_runs():
    image = build_image("interp", GCC_LIKE.named(tables_in_text=True))
    baseline = run_image(image)
    exe = Executable(image).read_contents()
    for routine in exe.all_routines():
        routine.produce_edited_routine()
    out = exe.edited_image()
    out.entry = exe.edited_addr(exe.start_address())
    assert run_image(out).output == baseline.output


# ----------------------------------------------------------------------
# Stage-1 mislabeling regressions
# ----------------------------------------------------------------------

def _fresh_image(name):
    """A private, mutable copy (build_image memoizes the Image)."""
    from repro.binfmt.serialize import image_from_bytes, image_to_bytes

    return image_from_bytes(image_to_bytes(build_image(name)))


def test_l_prefixed_routine_survives_stage1():
    """Regression: the compiler-temp filter used to prune every symbol
    starting with ``L`` or ``.L`` — including genuine routines such as
    ``List_append``.  Only compiler-temp *shapes* (``.L...`` and
    ``L<digit>``) may be dropped."""
    image = _fresh_image("fib")
    for symbol in image.symbols:
        if symbol.name == "fib":
            symbol.name = "List_append"
    exe = Executable(image).read_contents()
    names = {r.name for r in exe.routines()}
    assert "List_append" in names
    assert len(exe.hidden_routines()) == 0


def test_compiler_temp_shapes_still_pruned():
    from repro.binfmt.image import BIND_LOCAL, SYM_FUNC, Symbol

    image = _fresh_image("fib")
    fib = image.find_symbol("fib")
    for temp in (".L3", "L5"):
        image.add_symbol(Symbol(temp, fib.value + 8, kind=SYM_FUNC,
                                binding=BIND_LOCAL))
    exe = Executable(image).read_contents()
    names = {r.name for r in exe.all_routines()}
    assert ".L3" not in names and "L5" not in names
    assert "fib" in names


def _stage1_with_alias(alias, position, anchor="main"):
    """The stage-1 name map with *alias* inserted before/after *anchor*
    (``main`` is a global function symbol in the fib image)."""
    from repro.core import symtab_refine

    image = _fresh_image("fib")
    index = next(i for i, s in enumerate(image.symbols)
                 if s.name == anchor)
    target = image.symbols[index]
    alias.value = target.value
    image.symbols.insert(index if position == "before" else index + 1,
                         alias)
    return symtab_refine._stage1_initial_set(Executable(image)), target.value


def test_duplicate_address_prefers_global_over_local():
    """Two symbols at one address: binding outranks insertion order, so
    the choice cannot depend on symbol-table iteration order."""
    from repro.binfmt.image import BIND_LOCAL, SYM_FUNC, Symbol

    for position in ("before", "after"):
        alias = Symbol("aaa_local_alias", 0, kind=SYM_FUNC,
                       binding=BIND_LOCAL)
        named, addr = _stage1_with_alias(alias, position)
        assert named[addr] == "main", position


def test_duplicate_address_ties_break_lexically():
    """Equal rank (both global functions): the lexically smaller name
    wins in either insertion order — deterministic, not first-seen."""
    from repro.binfmt.image import BIND_GLOBAL, SYM_FUNC, Symbol

    for position in ("before", "after"):
        alias = Symbol("aaa_alias", 0, kind=SYM_FUNC, binding=BIND_GLOBAL)
        named, addr = _stage1_with_alias(alias, position)
        assert named[addr] == "aaa_alias", position


def test_duplicate_address_prefers_function_kind():
    """An object-kind symbol never outranks (or splits) the function
    symbol sharing its address."""
    from repro.binfmt.image import BIND_GLOBAL, SYM_OBJECT, Symbol

    for position in ("before", "after"):
        alias = Symbol("aaa_data_alias", 0, kind=SYM_OBJECT,
                       binding=BIND_GLOBAL)
        named, addr = _stage1_with_alias(alias, position)
        assert named[addr] == "main", position
