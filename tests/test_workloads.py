"""Workload corpus: golden outputs under both compiler personalities."""

import pytest

from repro.minic import GCC_LIKE, SUNPRO_LIKE
from repro.sim import run_image
from repro.workloads import (
    build_image,
    build_mips_image,
    expected_output,
    mips_program_names,
    program_names,
)

GOLDEN = {
    "ackermann": "ack 17 61\n",
    "bubble": "bubble 2749 0 70\n",
    "crc": "crc 1898470575\n",
    "fib": "fib 1597\n",
    "hanoi": "hanoi 4095\n",
    "interp": "100 81 64 49 36 25 16 9 4 1 interp done\n",
    "matmul": "matmul 61969\n",
    "nqueens": "nqueens 40\n",
    "qsort": "qsort 451491574\n",
    "sieve": "sieve 303\n",
    "strings": "yrarbil gnitide elbatucexe\nhash 7985920\n",
    "tailcalls": "tail 1 21 111\n",
    "tree": "tree 150 2481711\n",
    "lexer": "lexer 16 0 2 3 3 2 4 23\n",
    "automaton": "automaton 465 469 461 510 525 570\n",
}


def test_corpus_is_complete():
    assert set(program_names()) == set(GOLDEN)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_output_gcc_like(name):
    simulator = run_image(build_image(name))
    assert simulator.output == GOLDEN[name]
    assert simulator.exit_code == 0


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_same_output_sunpro_like(name):
    simulator = run_image(build_image(name, SUNPRO_LIKE))
    assert simulator.output == GOLDEN[name]


def test_expected_output_helper():
    assert expected_output("fib") == GOLDEN["fib"]


def test_sunpro_emits_tail_calls_somewhere():
    from repro.minic import compile_to_assembly
    from repro.workloads.programs import PROGRAMS

    text, _ = compile_to_assembly(PROGRAMS["tailcalls"], SUNPRO_LIKE)
    assert "jmp %g1" in text


@pytest.mark.parametrize("name", mips_program_names())
def test_mips_workloads(name):
    from repro.workloads.mips_programs import MIPS_PROGRAMS

    simulator = run_image(build_mips_image(name))
    assert simulator.output == MIPS_PROGRAMS[name][1]
    assert simulator.exit_code == 0


def test_build_is_cached():
    assert build_image("fib") is build_image("fib")
