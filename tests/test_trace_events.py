"""Durable event log, trace reconstruction, anomalies, and export."""

import json
import os
import threading

import pytest

from repro import obs
from repro.obs import context, events
from repro.obs.export import metric_name, prometheus_text


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable()
    obs.reset()
    events.unconfigure()
    yield
    obs.disable()
    obs.reset()
    events.unconfigure()


# ----------------------------------------------------------------------
# EventLog writing and rotation
# ----------------------------------------------------------------------

def test_emit_stamps_schema_header_and_timestamp(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = events.EventLog(path)
    log.emit("request.admit", op="ping", id=1)
    log.close()
    records = events.load_events(path)
    assert records[0]["kind"] == "log.open"
    assert records[0]["schema"] == events.SCHEMA
    assert records[1]["kind"] == "request.admit"
    assert records[1]["op"] == "ping"
    assert records[1]["ts"] > 0


def test_emit_stamps_attached_trace_context(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = events.EventLog(path)
    ctx = context.TraceContext("aabbccddeeff0011")
    with context.attached(ctx):
        log.emit("request.admit", op="ping")
    log.emit("request.admit", op="ping", trace_id="explicit-wins")
    log.close()
    _header, implicit, explicit = events.load_events(path)
    assert implicit["trace_id"] == "aabbccddeeff0011"
    assert explicit["trace_id"] == "explicit-wins"


def test_rotation_never_drops_the_in_flight_record(tmp_path):
    """Every emitted record must survive rotation: the record that
    crosses the size threshold lands in the rotated-out file, and the
    next record opens the fresh one."""
    path = str(tmp_path / "events.jsonl")
    log = events.EventLog(path, max_bytes=4096, max_files=16)
    total = 200
    for index in range(total):
        log.emit("fuzz.seed", seed=index, payload="x" * 64)
    log.close()
    assert os.path.exists(path + ".1"), "rotation never happened"
    records = [r for r in events.load_events(path)
               if r["kind"] == "fuzz.seed"]
    assert [r["seed"] for r in records] == list(range(total))


def test_rotation_caps_file_count(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = events.EventLog(path, max_bytes=512, max_files=3)
    for index in range(400):
        log.emit("fuzz.seed", seed=index, payload="y" * 64)
    log.close()
    assert os.path.exists(path)
    assert os.path.exists(path + ".1")
    assert os.path.exists(path + ".2")
    assert not os.path.exists(path + ".3")
    # The survivors are the *newest* records, still in order.
    seeds = [r["seed"] for r in events.load_events(path)
             if r["kind"] == "fuzz.seed"]
    assert seeds == sorted(seeds)
    assert seeds[-1] == 399


def test_concurrent_emitters_never_tear_lines(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = events.EventLog(path, max_bytes=1 << 20)
    per_thread = 100

    def emitter(tag):
        for index in range(per_thread):
            log.emit("fuzz.seed", seed=index, tag=tag)

    threads = [threading.Thread(target=emitter, args=(t,))
               for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    log.close()
    records = [r for r in events.load_events(path)
               if r["kind"] == "fuzz.seed"]
    assert len(records) == 4 * per_thread


def test_iter_events_skips_torn_trailing_line(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = events.EventLog(path)
    log.emit("request.admit", op="ping")
    log.close()
    with open(path, "ab") as handle:
        handle.write(b'{"ts": 1.0, "kind": "request.fin')  # crashed writer
    records = events.load_events(path)
    assert [r["kind"] for r in records] == ["log.open", "request.admit"]


def test_iter_events_raises_on_mid_file_corruption(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with open(path, "w") as handle:
        handle.write('{"ts": 1.0, "kind": "log.open"}\n')
        handle.write("garbage line\n")
        handle.write('{"ts": 2.0, "kind": "request.admit"}\n')
    with pytest.raises(ValueError):
        events.load_events(path)


def test_global_emit_is_noop_until_configured(tmp_path):
    assert not events.is_configured()
    assert events.emit("request.admit", op="ping") is None
    path = str(tmp_path / "events.jsonl")
    events.configure(path)
    assert events.is_configured()
    events.emit("request.admit", op="ping")
    events.unconfigure()
    assert [r["kind"] for r in events.load_events(path)] == \
        ["log.open", "request.admit"]


# ----------------------------------------------------------------------
# Trace reconstruction
# ----------------------------------------------------------------------

def _request_events(trace_id, op="run", status="ok", handler_s=0.01,
                    attempts=0, spans=None):
    admit = {"ts": 1.0, "kind": "request.admit", "trace_id": trace_id,
             "op": op, "id": 1, "queue_depth": 0}
    kind = "request.finish" if status == "ok" else "request.error"
    finish = {"ts": 2.0, "kind": kind, "trace_id": trace_id, "op": op,
              "id": 1, "queue_wait_s": 0.001, "handler_s": handler_s,
              "attempts": attempts}
    if status != "ok":
        finish["code"] = status
    if spans is not None:
        finish["spans"] = spans
    return [admit, finish]


def test_build_traces_pairs_admit_with_finish():
    stream = _request_events("t1") + _request_events("t2", status="timeout")
    traces = events.build_traces(stream)
    assert set(traces) == {"t1", "t2"}
    assert traces["t1"].status == "ok"
    assert traces["t1"].queue_wait_s == 0.001
    assert traces["t2"].status == "error:timeout"
    orphan = events.build_traces(
        [{"ts": 1.0, "kind": "request.admit", "trace_id": "t3",
          "op": "run"}])["t3"]
    assert orphan.status == "in-flight"


def test_connected_spans_detects_orphans():
    good = [{"name": "serve.request", "span_id": "a", "trace_id": "t",
             "children": [{"name": "serve.op", "span_id": "b",
                           "parent_span_id": "a", "children": []}]}]
    assert events.connected_spans(good)
    orphaned = [{"name": "serve.request", "span_id": "a", "trace_id": "t",
                 "children": [{"name": "serve.op", "span_id": "b",
                               "parent_span_id": "missing",
                               "children": []}]}]
    assert not events.connected_spans(orphaned)
    assert not events.connected_spans([])


def test_render_trace_shows_tree_and_latency_split():
    spans = [{"name": "serve.request", "span_id": "a", "trace_id": "t9",
              "duration_s": 0.01, "attrs": {"op": "run"},
              "children": [{"name": "sim.run", "span_id": "b",
                            "parent_span_id": "a", "duration_s": 0.008,
                            "attrs": {}, "children": []}]}]
    stream = _request_events("t9", spans=spans, attempts=1)
    record = events.build_traces(stream)["t9"]
    text = events.render_trace(record)
    assert "trace t9" in text
    assert "queue.wait" in text
    assert "serve.request" in text
    assert "sim.run" in text
    assert "retried 1 time(s)" in text


# ----------------------------------------------------------------------
# Anomaly flagging
# ----------------------------------------------------------------------

def test_find_anomalies_flags_outliers_retries_and_degradation():
    stream = []
    for index in range(20):
        stream += _request_events("fast%d" % index, handler_s=0.010)
    stream += _request_events("slow", handler_s=0.500)
    stream += _request_events("againful", attempts=2)
    stream.append({"ts": 50.0, "kind": "worker.death", "op": "chaos"})
    stream.append({"ts": 51.0, "kind": "worker.degraded"})
    stream.append({"ts": 60.0, "kind": "drain.finish", "clean": True})
    anomalies = events.find_anomalies(stream)
    text = "\n".join(anomalies)
    assert "p99-outlier: trace slow" in text
    assert "retries: trace againful" in text
    assert "degraded-window: 9.0s" in text
    assert "worker-deaths: 1" in text


def test_find_anomalies_quiet_log_is_empty():
    stream = []
    for index in range(20):
        stream += _request_events("t%d" % index, handler_s=0.010)
    assert events.find_anomalies(stream) == []


# ----------------------------------------------------------------------
# repro trace CLI
# ----------------------------------------------------------------------

def test_cli_trace_summary_and_single_trace(tmp_path, capsys):
    from repro import cli

    path = str(tmp_path / "events.jsonl")
    log = events.EventLog(path)
    for event in _request_events("deadbeef00000001", attempts=1):
        fields = {k: v for k, v in event.items()
                  if k not in ("ts", "kind")}
        log.emit(event["kind"], **fields)
    log.close()

    rc = cli.main(["trace", path])
    assert rc == 0
    out = capsys.readouterr().out
    assert "1 traced request(s)" in out
    assert "deadbeef00000001" in out
    assert "retries: trace deadbeef00000001" in out

    rc = cli.main(["trace", path, "--id", "deadbeef"])
    assert rc == 0
    assert "trace deadbeef00000001" in capsys.readouterr().out

    rc = cli.main(["trace", path, "--id", "nope"])
    assert rc == 1
    assert "no trace" in capsys.readouterr().err


def test_cli_trace_missing_file(tmp_path, capsys):
    from repro import cli

    rc = cli.main(["trace", str(tmp_path / "absent.jsonl")])
    assert rc == 1
    assert "no event log" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Prometheus export
# ----------------------------------------------------------------------

def test_metric_name_sanitization():
    assert metric_name("serve.latency.run") == "repro_serve_latency_run"
    assert metric_name("phase.cfg.build") == "repro_phase_cfg_build"
    assert metric_name("weird-name!") == "repro_weird_name_"


def test_prometheus_text_exports_counters_and_summaries():
    obs.counter("serve.requests").inc(5)
    histogram = obs.histogram("serve.latency.run")
    for value in (0.01, 0.02, 0.03):
        histogram.observe(value)
    text = prometheus_text()
    lines = text.splitlines()
    assert "# TYPE repro_serve_requests counter" in lines
    assert "repro_serve_requests 5" in lines
    assert "# TYPE repro_serve_latency_run summary" in lines
    assert 'repro_serve_latency_run{quantile="0.5"} 0.02' in lines
    assert "repro_serve_latency_run_count 3" in lines
    assert any(line.startswith("repro_serve_latency_run_sum")
               for line in lines)
    assert text.endswith("\n")


def test_prometheus_text_from_report_dict():
    report = {"counters": {"fuzz.seeds": 7},
              "gauges": {"serve.queue_depth": 3},
              "histograms": {}, "derived": {"sim.flyweight.hit_rate": 0.9}}
    text = prometheus_text(report)
    assert "repro_fuzz_seeds 7" in text
    assert "repro_serve_queue_depth 3" in text
    assert "repro_derived_sim_flyweight_hit_rate 0.9" in text


def test_cli_export_from_stats_json(tmp_path, capsys):
    from repro import cli
    from repro.obs import report as obs_report

    obs.counter("serve.requests").inc(2)
    path = str(tmp_path / "stats.json")
    with open(path, "w") as handle:
        json.dump(obs_report.build_report(), handle)
    rc = cli.main(["export", "--stats-json", path])
    assert rc == 0
    assert "repro_serve_requests 2" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Fuzz campaigns write per-seed events with stage timings
# ----------------------------------------------------------------------

def test_fuzz_campaign_emits_seed_events_with_timings(tmp_path):
    from repro.fuzz import campaign

    path = str(tmp_path / "events.jsonl")
    events.configure(path)
    try:
        result = campaign.run_campaign(2, base_seed=0, jobs=1,
                                       corpus_dir=None)
    finally:
        events.unconfigure()
    stream = events.load_events(path)
    kinds = [record["kind"] for record in stream]
    assert kinds[1] == "campaign.begin"
    assert kinds.count("fuzz.seed") == len(result.outcomes) == 2
    assert kinds[-1] == "campaign.end"
    seed_records = [r for r in stream if r["kind"] == "fuzz.seed"]
    for record in seed_records:
        assert "status" in record
        timings = record["timings"]
        assert "gen" in timings
        assert "analyze" in timings
        assert all(value >= 0 for value in timings.values())
    end = stream[-1]
    assert end["seeds"] == 2
    assert "elapsed_s" in end
