"""Telemetry subsystem: spans, metrics, report schema, and overhead."""

import json
import time

import pytest

from repro import obs
from repro.obs import metrics, report, trace


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Each test starts and ends with telemetry off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

def test_span_nesting_records_hierarchy():
    obs.enable()
    with obs.span("outer", tool="test"):
        with obs.span("inner.a"):
            pass
        with obs.span("inner.b") as sp:
            sp.set(extra=1)
    forest = trace.TRACER.tree()
    assert len(forest) == 1
    outer = forest[0]
    assert outer["name"] == "outer"
    assert outer["attrs"] == {"tool": "test"}
    assert [child["name"] for child in outer["children"]] == \
        ["inner.a", "inner.b"]
    assert outer["children"][1]["attrs"] == {"extra": 1}
    assert outer["duration_s"] >= 0
    assert all(child["duration_s"] >= 0 for child in outer["children"])


def test_span_duration_measures_wall_time():
    obs.enable()
    with obs.span("sleepy"):
        time.sleep(0.01)
    node = trace.TRACER.tree()[0]
    assert node["duration_s"] >= 0.009


def test_disabled_spans_record_nothing():
    assert not obs.is_enabled()
    with obs.span("ghost", attr=1) as sp:
        # The disabled path hands back the shared no-op span.
        assert sp is trace._NULL_SPAN
        sp.set(more=2)
    assert trace.TRACER.tree() == []


def test_span_exit_pops_even_on_exception():
    obs.enable()
    with pytest.raises(RuntimeError):
        with obs.span("boom"):
            raise RuntimeError("x")
    assert trace.TRACER._stack == []
    assert trace.TRACER.tree()[0]["duration_s"] is not None


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def test_counter_aggregation_and_interning():
    first = obs.counter("test.hits")
    first.inc()
    first.inc(4)
    # Same name -> same object; values aggregate.
    assert obs.counter("test.hits") is first
    assert metrics.snapshot()["counters"]["test.hits"] == 5


def test_registry_reset_keeps_references_valid():
    counter = obs.counter("test.reset")
    counter.inc(7)
    metrics.reset()
    assert counter.value == 0
    counter.inc()  # interned reference still feeds the registry
    assert metrics.snapshot()["counters"]["test.reset"] == 1


def test_gauge_and_histogram():
    obs.gauge("test.gauge").set(42)
    histogram = obs.histogram("test.hist")
    for value in (1, 2, 9):
        histogram.observe(value)
    snap = metrics.snapshot()
    assert snap["gauges"]["test.gauge"] == 42
    summary = snap["histograms"]["test.hist"]
    assert sorted(summary) == [
        "count", "max", "mean", "min", "p50", "p95", "p99", "sum",
    ]
    assert summary["count"] == 3
    assert summary["sum"] == 12
    assert summary["min"] == 1
    assert summary["max"] == 9
    assert summary["mean"] == 4.0
    assert summary["p50"] == 2


def test_histogram_percentiles_exact_when_under_capacity():
    histogram = obs.histogram("test.pct")
    for value in range(1, 101):  # 1..100, well under the reservoir cap
        histogram.observe(value)
    assert histogram.percentile(0.50) == pytest.approx(50.5)
    assert histogram.percentile(0.95) == pytest.approx(95.05)
    assert histogram.percentile(0.99) == pytest.approx(99.01)
    assert histogram.percentile(0.0) == 1
    assert histogram.percentile(1.0) == 100


def test_histogram_reservoir_stays_bounded_and_representative():
    histogram = obs.histogram("test.reservoir")
    for value in range(10_000):
        histogram.observe(float(value))
    assert histogram.count == 10_000
    assert len(histogram._reservoir) == histogram.capacity
    # Sampling is uniform (seeded per-name RNG -> deterministic), so
    # the median estimate lands near the true median.
    assert abs(histogram.percentile(0.5) - 5000.0) < 1500
    # Exact aggregates are unaffected by sampling.
    assert histogram.minimum == 0.0
    assert histogram.maximum == 9999.0


def test_histogram_percentile_empty_is_none():
    assert obs.histogram("test.empty").percentile(0.5) is None


# ----------------------------------------------------------------------
# Phase latency histograms (gated on tracing: disabled stays free)
# ----------------------------------------------------------------------

def test_phase_spans_feed_latency_histograms():
    obs.enable()
    with obs.span("cfg.build"):
        pass
    with obs.span("sim.run"):
        pass
    snap = metrics.snapshot()
    assert snap["histograms"]["phase.cfg.build"]["count"] == 1
    assert snap["histograms"]["phase.sim.run"]["count"] == 1
    built = report.build_report()
    assert "cfg.build" in built["phases"]
    assert built["phases"]["cfg.build"]["count"] == 1
    assert "phase.cfg.build.p50" in built["derived"]


def test_disabled_spans_do_not_feed_phase_histograms():
    assert not obs.is_enabled()
    with obs.span("cfg.build"):
        pass
    assert "phase.cfg.build" not in metrics.snapshot()["histograms"]


# ----------------------------------------------------------------------
# Trace contexts: span identity and cross-thread propagation
# ----------------------------------------------------------------------

def test_spans_adopt_attached_context():
    from repro.obs import context

    obs.enable()
    ctx = context.TraceContext("feedc0ffee000001", "aaaa0001")
    with context.attached(ctx):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
    assert outer.trace_id == "feedc0ffee000001"
    assert outer.parent_span_id == "aaaa0001"  # the remote parent
    assert inner.trace_id == "feedc0ffee000001"
    assert inner.parent_span_id == outer.span_id
    node = trace.TRACER.tree()[0]
    assert node["trace_id"] == "feedc0ffee000001"
    assert node["children"][0]["parent_span_id"] == node["span_id"]


def test_spans_without_context_carry_no_trace_ids():
    obs.enable()
    with obs.span("plain"):
        pass
    node = trace.TRACER.tree()[0]
    assert sorted(node) == ["attrs", "children", "duration_s", "name"]


def test_context_crosses_threads_via_attach():
    import threading

    from repro.obs import context

    obs.enable()
    ctx = context.TraceContext()
    recorded = {}

    def worker():
        token = context.attach(ctx)
        try:
            with trace.TRACER.request_span("serve.request") as sp:
                with obs.span("child"):
                    pass
            recorded["span"] = sp
        finally:
            context.detach(token)

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    sp = recorded["span"]
    assert sp.trace_id == ctx.trace_id
    assert sp.children[0].trace_id == ctx.trace_id
    # Detached request spans never land in the global forest.
    assert trace.TRACER.tree() == []


def test_request_span_disabled_is_null():
    assert trace.TRACER.request_span("serve.request") is trace._NULL_SPAN


# ----------------------------------------------------------------------
# Report schema
# ----------------------------------------------------------------------

def test_report_schema_stability(tmp_path):
    obs.enable()
    with obs.span("stage"):
        obs.counter("sim.flyweight.hits").inc(90)
        obs.counter("sim.flyweight.misses").inc(10)
        obs.counter("indirect.table").inc(3)
        obs.counter("indirect.unanalyzable").inc(1)
    built = report.build_report()
    # Top-level key set is the schema contract: widen deliberately only.
    assert sorted(built) == [
        "cache", "counters", "derived", "facts", "fleet", "gauges",
        "histograms", "meta", "phases", "schema", "serve", "sim", "spans",
    ]
    assert built["schema"] == "repro.obs/1"
    assert sorted(built["cache"]) == [
        "dir", "enabled", "evictions", "hit_rate", "hits", "invalidations",
        "latency", "misses", "stores",
    ]
    assert sorted(built["cache"]["latency"]) == ["load", "store"]
    assert sorted(built["serve"]) == [
        "coalesced", "degraded", "errors", "latency", "ok", "ok_rate",
        "queue_wait", "rejected", "requests", "retries", "timeouts",
        "worker_deaths",
    ]
    assert sorted(built["fleet"]) == [
        "forward_rate", "forwarded", "hot_restarts", "queue_wait",
        "queues", "rejected", "requests", "rerouted", "respawns",
        "retries", "shard_deaths", "shards",
    ]
    assert built["fleet"]["shards"] == {}  # populated only by a gateway
    assert sorted(built["sim"]) == [
        "blocks", "default_engine", "flyweight", "instructions", "runs",
    ]
    assert sorted(built["sim"]["flyweight"]) == [
        "compiles", "evictions", "hit_rate", "hits", "misses",
    ]
    assert sorted(built["sim"]["blocks"]) == [
        "compiles", "evictions", "hit_rate", "hits", "invalidations",
        "misses",
    ]
    from repro.sim import ENGINES
    assert built["sim"]["default_engine"] in ENGINES
    assert sorted(built["meta"]) == [
        "present", "reject_reasons", "rejects", "trust_rate", "trusted",
    ]
    assert built["derived"]["sim.flyweight.hit_rate"] == 0.9
    assert built["derived"]["indirect.resolved"] == 3
    assert built["derived"]["indirect.fallback"] == 1
    span_node = built["spans"][0]
    assert sorted(span_node) == ["attrs", "children", "duration_s", "name"]
    # dump() writes valid, key-sorted JSON that round-trips.
    path = tmp_path / "stats.json"
    report.dump(str(path))
    on_disk = json.loads(path.read_text())
    assert on_disk["schema"] == built["schema"]
    assert on_disk["counters"] == built["counters"]


def test_bench_results_schema(tmp_path):
    path = tmp_path / "BENCH_RESULTS.json"
    payload = report.write_bench_results(
        str(path), [report.bench_record("e12.fib.slowdown", 1.31, "x")]
    )
    assert payload["schema"] == "repro.obs.bench/1"
    on_disk = json.loads(path.read_text())
    assert on_disk["results"] == [
        {"name": "e12.fib.slowdown", "value": 1.31, "unit": "x"}
    ]


# ----------------------------------------------------------------------
# End-to-end: the pipeline populates the report
# ----------------------------------------------------------------------

def test_stats_pipeline_populates_required_counters(monkeypatch):
    from repro.core import Executable
    from repro.sim import run_image
    from repro.workloads import build_image

    # Force a fresh analysis: a cache hit would replace the refinement
    # stage spans this test asserts on with a single cache.restore span.
    monkeypatch.setenv("REPRO_CACHE", "off")
    image = build_image("interp")  # has a switch -> dispatch table
    obs.enable()
    exe = Executable(image).read_contents()
    for routine in exe.all_routines():
        routine.control_flow_graph()
    # One run per engine: the per-instruction engine feeds the
    # flyweight counters, the block engine feeds the block cache.
    run_image(image, engine="handwritten")
    run_image(image, engine="block")
    built = report.build_report()
    counters = built["counters"]
    assert counters["cfg.blocks"] > 0
    assert counters["cfg.edges"] > 0
    assert counters["cfg.delay_hoists"] > 0
    assert counters["indirect.table"] >= 1
    assert counters["sim.instructions"] > 0
    assert 0 < built["derived"]["sim.flyweight.hit_rate"] < 1
    assert 0 < built["derived"]["sim.blocks.hit_rate"] <= 1
    assert counters["sim.blocks.compiles"] > 0
    # Refinement stage timings appear as spans under exe.read_contents.
    names = _all_span_names(built["spans"])
    assert "refine.stage1_symtab" in names
    assert "refine.stage3_interproc" in names
    assert "refine.stage4_cfg" in names
    assert "sim.run" in names


def _all_span_names(nodes):
    names = set()
    for node in nodes:
        names.add(node["name"])
        names |= _all_span_names(node["children"])
    return names


# ----------------------------------------------------------------------
# Disabled-mode overhead
# ----------------------------------------------------------------------

def _busy_image(iterations):
    from repro.minic import compile_to_image

    return compile_to_image(
        "int main(void) { int i; i = 0; while (i < %d) { i = i + 1; } "
        "print_int(i); return 0; }" % iterations
    )


def test_disabled_simulation_is_untelemetered():
    """With telemetry off, the simulator takes the seed fast path: no
    spans, no per-category accounting."""
    from repro.sim import Simulator

    simulator = Simulator(_busy_image(1000))
    simulator.run()
    assert simulator.cpu.category_counts is None
    assert trace.TRACER.tree() == []


def test_disabled_overhead_bound():
    """Disabled telemetry must stay within 5% of a 1M-instruction run.

    The per-instruction fast path is identical to the seed loop, so the
    only possible regression is the per-*call-site* guard.  Measure the
    guard directly: 1M disabled span() calls must cost well under 5% of
    what a 1M-instruction simulation costs (~1s on this substrate).
    """
    from repro.sim import Simulator

    image = _busy_image(250_000)  # 4-instruction loop body -> ~1M steps
    # The 5% bound is calibrated against the per-instruction engine;
    # the block engine executes the same work several times faster and
    # would turn this into a test of block-compilation throughput.
    simulator = Simulator(image, engine="handwritten")
    started = time.perf_counter()
    simulator.run()
    sim_elapsed = time.perf_counter() - started
    assert simulator.instructions_executed >= 1_000_000

    span = trace.span
    started = time.perf_counter()
    for _ in range(1_000_000):
        span("overhead.probe")
    guard_elapsed = time.perf_counter() - started

    assert guard_elapsed < 0.05 * sim_elapsed, (
        "disabled span() guard cost %.3fs vs %.3fs simulation"
        % (guard_elapsed, sim_elapsed)
    )
