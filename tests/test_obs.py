"""Telemetry subsystem: spans, metrics, report schema, and overhead."""

import json
import time

import pytest

from repro import obs
from repro.obs import metrics, report, trace


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Each test starts and ends with telemetry off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

def test_span_nesting_records_hierarchy():
    obs.enable()
    with obs.span("outer", tool="test"):
        with obs.span("inner.a"):
            pass
        with obs.span("inner.b") as sp:
            sp.set(extra=1)
    forest = trace.TRACER.tree()
    assert len(forest) == 1
    outer = forest[0]
    assert outer["name"] == "outer"
    assert outer["attrs"] == {"tool": "test"}
    assert [child["name"] for child in outer["children"]] == \
        ["inner.a", "inner.b"]
    assert outer["children"][1]["attrs"] == {"extra": 1}
    assert outer["duration_s"] >= 0
    assert all(child["duration_s"] >= 0 for child in outer["children"])


def test_span_duration_measures_wall_time():
    obs.enable()
    with obs.span("sleepy"):
        time.sleep(0.01)
    node = trace.TRACER.tree()[0]
    assert node["duration_s"] >= 0.009


def test_disabled_spans_record_nothing():
    assert not obs.is_enabled()
    with obs.span("ghost", attr=1) as sp:
        # The disabled path hands back the shared no-op span.
        assert sp is trace._NULL_SPAN
        sp.set(more=2)
    assert trace.TRACER.tree() == []


def test_span_exit_pops_even_on_exception():
    obs.enable()
    with pytest.raises(RuntimeError):
        with obs.span("boom"):
            raise RuntimeError("x")
    assert trace.TRACER._stack == []
    assert trace.TRACER.tree()[0]["duration_s"] is not None


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def test_counter_aggregation_and_interning():
    first = obs.counter("test.hits")
    first.inc()
    first.inc(4)
    # Same name -> same object; values aggregate.
    assert obs.counter("test.hits") is first
    assert metrics.snapshot()["counters"]["test.hits"] == 5


def test_registry_reset_keeps_references_valid():
    counter = obs.counter("test.reset")
    counter.inc(7)
    metrics.reset()
    assert counter.value == 0
    counter.inc()  # interned reference still feeds the registry
    assert metrics.snapshot()["counters"]["test.reset"] == 1


def test_gauge_and_histogram():
    obs.gauge("test.gauge").set(42)
    histogram = obs.histogram("test.hist")
    for value in (1, 2, 9):
        histogram.observe(value)
    snap = metrics.snapshot()
    assert snap["gauges"]["test.gauge"] == 42
    assert snap["histograms"]["test.hist"] == {
        "count": 3, "sum": 12, "min": 1, "max": 9, "mean": 4.0,
    }


# ----------------------------------------------------------------------
# Report schema
# ----------------------------------------------------------------------

def test_report_schema_stability(tmp_path):
    obs.enable()
    with obs.span("stage"):
        obs.counter("sim.flyweight.hits").inc(90)
        obs.counter("sim.flyweight.misses").inc(10)
        obs.counter("indirect.table").inc(3)
        obs.counter("indirect.unanalyzable").inc(1)
    built = report.build_report()
    # Top-level key set is the schema contract: widen deliberately only.
    assert sorted(built) == [
        "cache", "counters", "derived", "gauges", "histograms", "schema",
        "serve", "spans",
    ]
    assert built["schema"] == "repro.obs/1"
    assert sorted(built["cache"]) == [
        "dir", "enabled", "evictions", "hit_rate", "hits", "invalidations",
        "misses", "stores",
    ]
    assert sorted(built["serve"]) == [
        "coalesced", "degraded", "errors", "ok", "ok_rate", "rejected",
        "requests", "retries", "timeouts", "worker_deaths",
    ]
    assert built["derived"]["sim.flyweight.hit_rate"] == 0.9
    assert built["derived"]["indirect.resolved"] == 3
    assert built["derived"]["indirect.fallback"] == 1
    span_node = built["spans"][0]
    assert sorted(span_node) == ["attrs", "children", "duration_s", "name"]
    # dump() writes valid, key-sorted JSON that round-trips.
    path = tmp_path / "stats.json"
    report.dump(str(path))
    on_disk = json.loads(path.read_text())
    assert on_disk["schema"] == built["schema"]
    assert on_disk["counters"] == built["counters"]


def test_bench_results_schema(tmp_path):
    path = tmp_path / "BENCH_RESULTS.json"
    payload = report.write_bench_results(
        str(path), [report.bench_record("e12.fib.slowdown", 1.31, "x")]
    )
    assert payload["schema"] == "repro.obs.bench/1"
    on_disk = json.loads(path.read_text())
    assert on_disk["results"] == [
        {"name": "e12.fib.slowdown", "value": 1.31, "unit": "x"}
    ]


# ----------------------------------------------------------------------
# End-to-end: the pipeline populates the report
# ----------------------------------------------------------------------

def test_stats_pipeline_populates_required_counters(monkeypatch):
    from repro.core import Executable
    from repro.sim import run_image
    from repro.workloads import build_image

    # Force a fresh analysis: a cache hit would replace the refinement
    # stage spans this test asserts on with a single cache.restore span.
    monkeypatch.setenv("REPRO_CACHE", "off")
    image = build_image("interp")  # has a switch -> dispatch table
    obs.enable()
    exe = Executable(image).read_contents()
    for routine in exe.all_routines():
        routine.control_flow_graph()
    run_image(image)
    built = report.build_report()
    counters = built["counters"]
    assert counters["cfg.blocks"] > 0
    assert counters["cfg.edges"] > 0
    assert counters["cfg.delay_hoists"] > 0
    assert counters["indirect.table"] >= 1
    assert counters["sim.instructions"] > 0
    assert 0 < built["derived"]["sim.flyweight.hit_rate"] < 1
    # Refinement stage timings appear as spans under exe.read_contents.
    names = _all_span_names(built["spans"])
    assert "refine.stage1_symtab" in names
    assert "refine.stage3_interproc" in names
    assert "refine.stage4_cfg" in names
    assert "sim.run" in names


def _all_span_names(nodes):
    names = set()
    for node in nodes:
        names.add(node["name"])
        names |= _all_span_names(node["children"])
    return names


# ----------------------------------------------------------------------
# Disabled-mode overhead
# ----------------------------------------------------------------------

def _busy_image(iterations):
    from repro.minic import compile_to_image

    return compile_to_image(
        "int main(void) { int i; i = 0; while (i < %d) { i = i + 1; } "
        "print_int(i); return 0; }" % iterations
    )


def test_disabled_simulation_is_untelemetered():
    """With telemetry off, the simulator takes the seed fast path: no
    spans, no per-category accounting."""
    from repro.sim import Simulator

    simulator = Simulator(_busy_image(1000))
    simulator.run()
    assert simulator.cpu.category_counts is None
    assert trace.TRACER.tree() == []


def test_disabled_overhead_bound():
    """Disabled telemetry must stay within 5% of a 1M-instruction run.

    The per-instruction fast path is identical to the seed loop, so the
    only possible regression is the per-*call-site* guard.  Measure the
    guard directly: 1M disabled span() calls must cost well under 5% of
    what a 1M-instruction simulation costs (~1s on this substrate).
    """
    from repro.sim import Simulator

    image = _busy_image(250_000)  # 4-instruction loop body -> ~1M steps
    simulator = Simulator(image)
    started = time.perf_counter()
    simulator.run()
    sim_elapsed = time.perf_counter() - started
    assert simulator.instructions_executed >= 1_000_000

    span = trace.span
    started = time.perf_counter()
    for _ in range(1_000_000):
        span("overhead.probe")
    guard_elapsed = time.perf_counter() - started

    assert guard_elapsed < 0.05 * sim_elapsed, (
        "disabled span() guard cost %.3fs vs %.3fs simulation"
        % (guard_elapsed, sim_elapsed)
    )
