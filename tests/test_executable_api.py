"""The Executable facade: Figure 1's API surface and additions."""

import pytest

from repro.core import Executable
from repro.core.executable import ExecutableError, RoutineList
from repro.sim import run_image
from repro.workloads import build_image, expected_output


def test_routine_list_worklist_interface():
    routines = RoutineList(["a", "b"])
    assert not routines.is_empty()
    assert routines.first() == "a"
    routines.remove("a")
    routines.add("c")
    assert list(routines) == ["b", "c"]
    assert len(routines) == 2
    assert routines[0] == "b"


def test_routine_list_errors_are_executable_errors():
    empty = RoutineList()
    with pytest.raises(ExecutableError, match="empty"):
        empty.first()
    routines = RoutineList(["a"])
    with pytest.raises(ExecutableError, match="not in this list"):
        routines.remove("missing")
    # Normal worklist drain still works after the failed remove.
    routines.remove("a")
    assert routines.is_empty()


def test_figure1_protocol():
    """The exact call sequence of the paper's Figure 1."""
    exe = Executable(build_image("fib"))
    exe.read_contents()
    for routine in exe.routines():
        graph = routine.control_flow_graph()
        assert graph.blocks
        routine.produce_edited_routine()
        routine.delete_control_flow_graph()
    hidden = exe.hidden_routines()
    while not hidden.is_empty():
        routine = hidden.first()
        hidden.remove(routine)
        routine.produce_edited_routine()
        exe.routines().add(routine)
    x = exe.edited_addr(exe.start_address())
    image = exe.edited_image()
    image.entry = x
    assert run_image(image).output == expected_output("fib")


def test_routine_queries():
    exe = Executable(build_image("fib")).read_contents()
    fib = exe.routine("fib")
    assert fib is not None
    assert exe.routine_at(fib.start + 8) is fib
    assert exe.routine("nonexistent") is None
    assert fib.entry == fib.start
    assert fib.size == fib.end - fib.start
    instructions = fib.instructions()
    assert len(instructions) == fib.size // 4


def test_add_data_alignment_and_separation():
    exe = Executable(build_image("fib")).read_contents()
    a = exe.add_data("__blob_a", 100)
    b = exe.add_data("__blob_b", 8, initial=b"\x01\x02\x03\x04aaaa")
    assert a % 1024 == 0 and b % 1024 == 0
    assert b >= a + 100
    exe.routine("main").produce_edited_routine()
    image = exe.edited_image()
    assert image.get_section("__blob_a").size >= 100
    assert image.get_section("__blob_b").data[:4] == bytearray(
        b"\x01\x02\x03\x04")
    assert image.find_symbol("__blob_a").value == a


def test_add_routine_assembled_and_linked():
    exe = Executable(build_image("fib")).read_contents()
    counter = exe.add_data("__hook_count", 4)
    hook_addr = exe.add_routine("__hook", """
        .text
        .global __hook
    __hook:
        set %d, %%g2
        ld [%%g2], %%g3
        add %%g3, 1, %%g3
        st %%g3, [%%g2]
        retl
        nop
    """ % counter)
    assert hook_addr == exe._new_text_base
    exe.routine("main").produce_edited_routine()
    image = exe.edited_image()
    symbol = image.find_symbol("__hook")
    assert symbol is not None and symbol.value == hook_addr
    # The routine's code is present at its address.
    from repro.isa import get_codec

    codec = get_codec("sparc")
    first = codec.decode(image.word_at(hook_addr))
    assert first.name == "sethi"


def test_added_routine_may_reference_program_symbols():
    exe = Executable(build_image("fib")).read_contents()
    addr = exe.add_routine("__wrapper", """
        .text
        .global __wrapper
    __wrapper:
        mov %o7, %g4
        call print_int
        nop
        jmp %g4 + 8
        nop
    """)
    assert addr
    # The call displacement resolves to the real print_int.
    exe.routine("main").produce_edited_routine()
    image = exe.edited_image()
    from repro.isa import get_codec

    codec = get_codec("sparc")
    call_word = image.word_at(addr + 4)
    inst = codec.decode(call_word)
    target = codec.control_target(inst, addr + 4)
    original = Executable(build_image("fib")).read_contents()
    assert target == original.routine("print_int").start


def test_add_routine_undefined_symbol():
    exe = Executable(build_image("fib")).read_contents()
    with pytest.raises(ExecutableError):
        exe.add_routine("__broken", """
            .text
            .global __broken
        __broken:
            call no_such_routine
            nop
        """)


def test_non_executable_image_rejected():
    from repro.asm import assemble

    obj = assemble(".text\nnop\n", "sparc")
    with pytest.raises(ExecutableError):
        Executable(obj)


def test_claim_data_bookkeeping():
    exe = Executable(build_image("fib")).read_contents()
    fib = exe.routine("fib")
    exe.claim_data(fib.start + 16, 8)
    claimed = exe.claimed_data(fib)
    assert fib.start + 16 in claimed and fib.start + 20 in claimed
    other = exe.routine("main")
    assert not exe.claimed_data(other)
