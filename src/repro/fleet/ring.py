"""Shard routing: rendezvous (highest-random-weight) hashing.

The gateway routes every request by a *content key* — the workload
name or the image's content hash — so the same executable always
lands on the same shard and finds that shard's warm analysis state.
Rendezvous hashing gives each (slot, key) pair a deterministic score
and routes the key to the highest-scoring slot; unlike modulo hashing,
removing one slot only moves the keys that lived there (every other
key keeps its warm shard), which is exactly the property a shard
death or rolling restart needs.

:func:`preference` returns the *full* ranking, best first: the
gateway takes the first live slot, so a key whose home shard is down
deterministically fails over to its second choice — and snaps back
home once the respawn lands, again without disturbing other keys.
"""

import hashlib


def content_key(op, params):
    """The routing key of a request, or None when it has no affinity.

    Requests naming a ``workload`` route by name (cheap, stable);
    inline images route by content digest, so two clients shipping
    the same bytes coalesce on one shard's warm analysis.  Ops that
    reference no executable (ping, stats, chaos...) have no affinity
    and are routed by load instead.
    """
    name = params.get("workload")
    if isinstance(name, str) and name:
        return "workload:" + name
    blob = params.get("image")
    if isinstance(blob, str) and blob:
        digest = hashlib.sha256(blob.encode("ascii", "replace"))
        return "image:" + digest.hexdigest()[:24]
    return None


def _score(slot, key):
    data = ("%d|%s" % (slot, key)).encode("utf-8")
    return hashlib.sha256(data).digest()


def preference(key, slots):
    """All slot indices ``0..slots-1`` ranked for *key*, best first."""
    return sorted(range(slots), key=lambda s: _score(s, key), reverse=True)


def route(key, slots, live=None):
    """The best slot for *key*, restricted to *live* slots.

    *live* is an optional set of currently healthy slot indices; when
    given, the highest-ranked live slot wins (rendezvous failover).
    Returns None when no slot is live.
    """
    for slot in preference(key, slots):
        if live is None or slot in live:
            return slot
    return None
