"""Fleet configuration: gateway address, shard count, and knobs.

Follows the :class:`repro.serve.config.ServeConfig` contract — every
environment knob goes through :mod:`repro.env`, so a malformed value
warns once and falls back rather than crashing the gateway.  Shard
daemons are real child processes; their sockets and event logs live
under ``run_dir`` (``shard-<i>-g<gen>.sock``, ``events-shard<i>.jsonl``)
so one directory holds one fleet's whole on-disk footprint.
"""

import os
import sys
import tempfile

from repro.env import env_float, env_int


def default_gateway_path():
    """Per-user default rendezvous point for the fleet gateway."""
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), "repro-fleet-%d.sock" % uid)


class FleetConfig:
    """Validated gateway/shard-manager settings."""

    def __init__(self, address=None, shards=None, run_dir=None,
                 shard_jobs=None, queue_size=None, starvation_limit=None,
                 forwarders=None, retries=None, retry_after_s=None,
                 health_interval_s=None, respawn_limit=None,
                 shard_timeout_s=None, spawn_timeout_s=None,
                 drain_timeout_s=None, events_path=None,
                 shard_events=None, python=None):
        env = os.environ
        # Gateway listen address: a Unix socket path, or tcp://host:port.
        self.address = address or env.get("REPRO_FLEET_ADDRESS") \
            or default_gateway_path()
        self.shards = shards if shards is not None \
            else env_int("REPRO_FLEET_SHARDS", 2, minimum=1)
        self.run_dir = run_dir or env.get("REPRO_FLEET_DIR") \
            or os.path.join(tempfile.gettempdir(),
                            "repro-fleet-%d" % os.getpid())
        # Worker threads inside each shard daemon.
        self.shard_jobs = shard_jobs if shard_jobs is not None \
            else env_int("REPRO_FLEET_SHARD_JOBS", 2, minimum=1)
        # Gateway admission queue bound (both classes together).
        self.queue_size = queue_size if queue_size is not None \
            else env_int("REPRO_FLEET_QUEUE", 256, minimum=1)
        # After this many consecutive interactive dispatches while bulk
        # work waits, one bulk job is dispatched — the starvation bound.
        self.starvation_limit = starvation_limit \
            if starvation_limit is not None \
            else env_int("REPRO_FLEET_STARVATION", 8, minimum=1)
        # Forwarding threads: concurrent requests in flight to shards.
        self.forwarders = forwarders if forwarders is not None \
            else env_int("REPRO_FLEET_FORWARDERS", 8, minimum=1)
        # Gateway-side retries for draining/overloaded shard answers
        # (distinct from ServeClient retries — the gateway owns rerouting).
        self.retries = retries if retries is not None \
            else env_int("REPRO_FLEET_RETRIES", 6, minimum=0)
        self.retry_after_s = retry_after_s if retry_after_s is not None \
            else env_float("REPRO_FLEET_RETRY_AFTER", 0.1, minimum=0.0)
        self.health_interval_s = health_interval_s \
            if health_interval_s is not None \
            else env_float("REPRO_FLEET_HEALTH_INTERVAL", 1.0, minimum=0.05)
        # Automatic respawns per slot before the slot is left dark.
        self.respawn_limit = respawn_limit if respawn_limit is not None \
            else env_int("REPRO_FLEET_RESPAWNS", 5, minimum=0)
        # Per-request timeout the shard daemons enforce.
        self.shard_timeout_s = shard_timeout_s \
            if shard_timeout_s is not None \
            else env_float("REPRO_FLEET_SHARD_TIMEOUT", 60.0, minimum=0.01)
        # How long a freshly spawned shard gets to answer its first ping.
        self.spawn_timeout_s = spawn_timeout_s \
            if spawn_timeout_s is not None \
            else env_float("REPRO_FLEET_SPAWN_TIMEOUT", 30.0, minimum=0.1)
        self.drain_timeout_s = drain_timeout_s \
            if drain_timeout_s is not None \
            else env_float("REPRO_FLEET_DRAIN_TIMEOUT", 30.0, minimum=0.1)
        # Gateway's own durable event log (fleet.* + request.* events).
        self.events_path = events_path if events_path is not None \
            else env.get("REPRO_FLEET_EVENTS") or None
        # Give each shard a derived event log under run_dir.  On by
        # default whenever the gateway itself logs events.
        self.shard_events = shard_events if shard_events is not None \
            else bool(self.events_path)
        # Interpreter used to spawn shard daemons.
        self.python = python or sys.executable

    def shard_socket(self, index, generation):
        return os.path.join(self.run_dir,
                            "shard-%d-g%d.sock" % (index, generation))

    def shard_events_path(self, index):
        if not self.shard_events:
            return None
        return os.path.join(self.run_dir, "events-shard%d.jsonl" % index)
