"""repro.fleet — sharded multi-process serving behind one gateway.

The paper's tool/library split scales past one process here: N shard
daemons (each a full :mod:`repro.serve` daemon with its own warm
in-memory analysis state) sit behind one gateway that speaks the same
``repro.serve/1`` protocol, routes by executable content so warm state
is never split across shards, prioritizes interactive work over bulk
sweeps, and replaces shards — crash or deliberate hot-restart —
without clients seeing a failure.  See DESIGN.md §5j.
"""

from repro.fleet.admission import AdmissionQueue, priority_class
from repro.fleet.config import FleetConfig, default_gateway_path
from repro.fleet.gateway import FleetGateway, fleet_main
from repro.fleet.ring import content_key, preference, route
from repro.fleet.shards import ShardManager, ShardSlot

__all__ = [
    "AdmissionQueue",
    "FleetConfig",
    "FleetGateway",
    "ShardManager",
    "ShardSlot",
    "content_key",
    "default_gateway_path",
    "fleet_main",
    "preference",
    "priority_class",
    "route",
]
