"""Shard processes: spawn, health, respawn, and warm hot-restart.

Each shard slot ``0..N-1`` owns one child daemon process (a plain
``repro serve`` with ``--shard-id``) listening on its own Unix socket
under the fleet's run directory.  The slot index is the routing
identity — stable across respawns and restarts — while the process
behind it changes generation (``shard-<i>-g<gen>.sock``), so routing
state never dangles on a dead socket path.

Health is two-source: the manager's health loop pings every slot on an
interval, and forwarders report transport failures inline.  A dead
slot is respawned (within a per-slot budget) and pre-warmed from the
gateway's record of what that slot served recently; while it is down,
rendezvous failover routes its keys to their second-choice shard.

Hot-restart is the same machinery driven deliberately: spawn the
replacement at the next generation, pre-warm it from the *old*
process's own handoff snapshot (the ``handoff``/``warm`` ops), swap
the slot atomically, then drain the old process.  Clients see at most
a ``draining`` answer with ``retry_after`` — which the gateway's
forward loop retries onto the warm replacement — never a failure.
"""

import os
import subprocess
import threading
import time
from collections import OrderedDict

from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.serve.client import ServeClient, ServeError, wait_for_daemon

_C_DEATHS = _metrics.counter("fleet.shard_deaths")
_C_RESPAWNS = _metrics.counter("fleet.respawns")
_C_HOT_RESTARTS = _metrics.counter("fleet.hot_restarts")

_RECENT_CAP = 64  # per-slot LRU of workloads, the respawn warm set


class ShardSlot:
    """One routing slot: a shard process plus its gateway-side state."""

    def __init__(self, index):
        self.index = index
        self.generation = 0
        self.socket_path = None
        self.process = None
        self.alive = False
        self.respawns = 0
        self.lock = threading.Lock()
        # Free connections to the *current* generation, checked out by
        # forwarders; a generation bump orphans them (stale clients are
        # detected by generation tag and discarded on check-in).
        self._pool = []
        # What this slot served recently — the warm set a respawned
        # process is pre-warmed with when the old one died without a
        # handoff (gateway-side fallback snapshot).
        self.recent = OrderedDict()
        # Gateway-side per-slot counters (the `stats` shard table).
        self.requests = 0
        self.ok = 0
        self.errors = 0
        self.rerouted_away = 0

    # ------------------------------------------------------------------
    def note_recent(self, workload):
        if not workload:
            return
        with self.lock:
            self.recent.pop(workload, None)
            self.recent[workload] = True
            while len(self.recent) > _RECENT_CAP:
                self.recent.popitem(last=False)

    def recent_workloads(self):
        with self.lock:
            return list(self.recent)

    # ------------------------------------------------------------------
    def checkout(self, timeout_s):
        """A connected client for the current generation (pooled)."""
        with self.lock:
            path = self.socket_path
            generation = self.generation
            while self._pool:
                tagged_gen, client = self._pool.pop()
                if tagged_gen == generation:
                    return generation, client
                client.close()
        client = ServeClient(path, connect_timeout=2.0,
                             io_timeout=timeout_s, retries=0)
        return generation, client

    def checkin(self, generation, client):
        with self.lock:
            if generation == self.generation and self.alive \
                    and len(self._pool) < 16:
                self._pool.append((generation, client))
                return
        client.close()

    def drop_pool(self):
        with self.lock:
            pool, self._pool = self._pool, []
        for _generation, client in pool:
            client.close()

    # ------------------------------------------------------------------
    def describe(self):
        """JSON-ready shard-table entry (numeric fields become the
        ``shard="N"``-labeled Prometheus samples)."""
        with self.lock:
            return {
                "shard": self.index,
                "alive": self.alive,
                "generation": self.generation,
                "pid": self.process.pid if self.process else None,
                "respawns": self.respawns,
                "requests": self.requests,
                "ok": self.ok,
                "errors": self.errors,
                "rerouted_away": self.rerouted_away,
                "warm_keys": len(self.recent),
                "socket": self.socket_path,
            }


class ShardManager:
    """Owns the shard slots: spawning, health, respawn, hot-restart."""

    def __init__(self, config):
        self.config = config
        self.slots = [ShardSlot(i) for i in range(config.shards)]
        self._spawn_lock = threading.Lock()
        self._stop = threading.Event()
        self._health_thread = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        os.makedirs(self.config.run_dir, exist_ok=True)
        for slot in self.slots:
            self._spawn(slot, generation=1)
        for slot in self.slots:
            if not wait_for_daemon(slot.socket_path,
                                   timeout=self.config.spawn_timeout_s):
                raise RuntimeError("shard %d did not come up on %s"
                                   % (slot.index, slot.socket_path))
            slot.alive = True
        self._health_thread = threading.Thread(target=self._health_loop,
                                               name="fleet-health",
                                               daemon=True)
        self._health_thread.start()
        return self

    def stop(self):
        """Shut every shard down (gateway drain path)."""
        self._stop.set()
        for slot in self.slots:
            self._shutdown_process(slot.socket_path, slot.process)
            with slot.lock:
                slot.alive = False
            slot.drop_pool()

    def live_slots(self):
        return {slot.index for slot in self.slots if slot.alive}

    def shard_table(self):
        return {str(slot.index): slot.describe() for slot in self.slots}

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------

    def _spawn(self, slot, generation):
        """Start a shard process at *generation* and point the slot's
        routing state at it (the cold-start and respawn path; the
        hot-restart path spawns detached and swaps later)."""
        process = self._spawn_detached(slot, generation)
        with slot.lock:
            slot.generation = generation
            slot.socket_path = self.config.shard_socket(slot.index,
                                                        generation)
            slot.process = process
        return process

    def _shutdown_process(self, socket_path, process,
                          timeout_s=None):
        """Drain one shard process: polite shutdown op, then SIGTERM."""
        if process is None:
            return
        timeout_s = timeout_s or self.config.drain_timeout_s
        try:
            with ServeClient(socket_path, connect_timeout=1.0,
                             io_timeout=5.0, retries=0) as client:
                client.shutdown()
        except (OSError, ServeError):
            pass  # already gone or unreachable; SIGTERM below
        try:
            process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            process.terminate()
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

    # ------------------------------------------------------------------
    # Health / failure handling
    # ------------------------------------------------------------------

    def _health_loop(self):
        while not self._stop.wait(self.config.health_interval_s):
            for slot in self.slots:
                if self._stop.is_set():
                    return
                if slot.alive and not self._ping(slot):
                    self.report_failure(slot, reason="health-ping")

    def _ping(self, slot):
        try:
            with ServeClient(slot.socket_path, connect_timeout=1.0,
                             io_timeout=3.0, retries=0) as client:
                return bool(client.ping().get("pong"))
        except (OSError, ServeError):
            return False

    def report_failure(self, slot, reason="transport"):
        """A shard stopped answering: mark dead, respawn within budget.

        Called from the health loop and from forwarders that hit
        transport errors; idempotent per incident (the first reporter
        does the respawn, later ones see ``alive`` already False).
        """
        with self._spawn_lock:
            with slot.lock:
                if not slot.alive:
                    return
                slot.alive = False
                process = slot.process
            slot.drop_pool()
            _C_DEATHS.inc()
            _events.emit("fleet.shard_death", shard=slot.index,
                         generation=slot.generation, reason=reason)
            if process is not None:
                try:  # collect the corpse; never block on a live hang
                    process.poll()
                except OSError:
                    pass
            if self._stop.is_set() \
                    or slot.respawns >= self.config.respawn_limit:
                return
            slot.respawns += 1
            _C_RESPAWNS.inc()
            warm = slot.recent_workloads()
            self._spawn(slot, generation=slot.generation + 1)
            if wait_for_daemon(slot.socket_path,
                               timeout=self.config.spawn_timeout_s):
                self._prewarm(slot.socket_path, warm)
                with slot.lock:
                    slot.alive = True
                _events.emit("fleet.shard_up", shard=slot.index,
                             generation=slot.generation,
                             warmed=len(warm), respawn=True)

    def _prewarm(self, socket_path, workloads):
        if not workloads:
            return 0
        try:
            with ServeClient(socket_path, connect_timeout=2.0,
                             io_timeout=self.config.spawn_timeout_s,
                             retries=0) as client:
                result = client.request("warm", workloads=workloads)
                return result.get("warmed", 0)
        except (OSError, ServeError):
            return 0  # a cold replacement still beats a dead slot

    # ------------------------------------------------------------------
    # Hot restart
    # ------------------------------------------------------------------

    def hot_restart(self, slot):
        """Rolling replacement of *slot* with zero failed requests.

        1. Spawn the next generation on a fresh socket (the old
           process keeps serving).
        2. Ask the *old* process for its handoff snapshot and pre-warm
           the replacement with it (falling back to the gateway-side
           recent set if the old process cannot answer).
        3. Swap the slot's routing state atomically.
        4. Drain the old process; requests it rejects as ``draining``
           are retried by the gateway onto the warm replacement.

        Returns a summary dict (generation, warmed count).
        """
        with self._spawn_lock:
            with slot.lock:
                old_process = slot.process
                old_path = slot.socket_path
                old_generation = slot.generation
            new_generation = old_generation + 1
            new_path = self.config.shard_socket(slot.index, new_generation)
            _events.emit("fleet.hot_restart.begin", shard=slot.index,
                         generation=old_generation,
                         replacement=new_generation)
            replacement = self._spawn_detached(slot, new_generation)
            if not wait_for_daemon(new_path,
                                   timeout=self.config.spawn_timeout_s):
                self._shutdown_process(new_path, replacement,
                                       timeout_s=2.0)
                _events.emit("fleet.hot_restart.abort", shard=slot.index,
                             generation=old_generation)
                raise RuntimeError("replacement shard %d-g%d did not "
                                   "come up" % (slot.index, new_generation))
            workloads = self._handoff(old_path) or slot.recent_workloads()
            warmed = self._prewarm(new_path, workloads)
            # Atomic swap: from here every new forward resolves to the
            # replacement; in-flight requests still finish on the old
            # process while it drains below.
            with slot.lock:
                slot.generation = new_generation
                slot.socket_path = new_path
                slot.process = replacement
                slot.alive = True
            slot.drop_pool()
            _C_HOT_RESTARTS.inc()
            _events.emit("fleet.hot_restart.swap", shard=slot.index,
                         generation=new_generation, warmed=warmed,
                         handoff=len(workloads))
        # Drain outside the spawn lock: other slots stay restartable.
        self._shutdown_process(old_path, old_process)
        _events.emit("fleet.hot_restart.finish", shard=slot.index,
                     generation=new_generation)
        return {"shard": slot.index, "generation": new_generation,
                "warmed": warmed, "handoff": len(workloads)}

    def _spawn_detached(self, slot, generation):
        """Spawn a process for *generation* without touching the slot's
        routing state (the hot-restart pre-swap phase)."""
        path = self.config.shard_socket(slot.index, generation)
        argv = [self.config.python, "-m", "repro.cli", "serve",
                "--socket", path,
                "--shard-id", str(slot.index),
                "--jobs", str(self.config.shard_jobs),
                "--timeout", str(self.config.shard_timeout_s)]
        events_path = self.config.shard_events_path(slot.index)
        if events_path:
            # --trace rides along so per-request span trees land in the
            # shard's event log (the smoke test validates gateway→shard
            # span connectivity across the merged logs).
            argv += ["--events", events_path, "--trace"]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))),
                        env.get("PYTHONPATH")) if p)
        process = subprocess.Popen(argv, env=env,
                                   stdout=subprocess.DEVNULL,
                                   stderr=subprocess.DEVNULL)
        _events.emit("fleet.shard_spawn", shard=slot.index,
                     generation=generation, pid=process.pid, socket=path)
        return process

    def _handoff(self, socket_path):
        """The old process's warm snapshot, or None when unreachable."""
        try:
            with ServeClient(socket_path, connect_timeout=1.0,
                             io_timeout=5.0, retries=0) as client:
                result = client.request("handoff")
                workloads = result.get("workloads")
                return workloads if isinstance(workloads, list) else None
        except (OSError, ServeError):
            return None

    def rolling_restart(self):
        """Hot-restart every slot in turn; the fleet never goes cold."""
        summaries = []
        for slot in self.slots:
            summaries.append(self.hot_restart(slot))
        return summaries
