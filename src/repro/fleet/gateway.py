"""The fleet gateway: one front door, N warm shard daemons behind it.

The gateway speaks the same ``repro.serve/1`` protocol as a single
daemon — a client cannot tell the difference except that answers carry
a ``shard`` field — and listens on a Unix socket or ``tcp://host:port``.
Per connection, a thread parses requests; admitted requests enter the
two-class :class:`~repro.fleet.admission.AdmissionQueue` (interactive
ahead of bulk, starvation-bounded); forwarder threads route each
request by content key over the rendezvous ring to the shard that
holds that executable's warm analysis state, and relay the shard's
response verbatim.

The gateway owns retries, not its shard clients: a transport failure
marks the shard dead (respawn path) and re-routes to the key's
next-choice live shard; a ``draining`` or ``overloaded`` answer backs
off by the shard's own ``retry_after`` hint and re-resolves — which is
how a hot-restart looks like nothing at all from the outside.

A few ops never reach a shard: ``ping``, ``stats``, ``top``, and
``shutdown`` describe or control the fleet itself, and ``hot_restart``
triggers a rolling replacement.  ``stats`` grafts the live shard table
into the report's ``fleet`` section, which is what gives ``repro
export`` its per-shard labels and ``repro top`` its shard rows.
"""

import os
import socket
import sys
import threading
import time
from time import perf_counter

from repro.obs import context as _context
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.serve import protocol
from repro.serve.client import ServeError, parse_address
from repro.fleet import ring
from repro.fleet.admission import AdmissionQueue, priority_class
from repro.fleet.config import FleetConfig
from repro.fleet.shards import ShardManager

_C_REQUESTS = _metrics.counter("fleet.requests")
_C_FORWARDED = _metrics.counter("fleet.forwarded")
_C_REROUTED = _metrics.counter("fleet.rerouted")
_C_RETRIES = _metrics.counter("fleet.retries")
_C_REJECTED = _metrics.counter("fleet.rejected")
_G_Q_INTERACTIVE = _metrics.gauge("fleet.queue.interactive")
_G_Q_BULK = _metrics.gauge("fleet.queue.bulk")
_H_QUEUE_WAIT = _metrics.histogram("fleet.queue_wait")

_STOP = object()

# Ops answered by the gateway itself (fleet state and control).
LOCAL_OPS = frozenset({"ping", "stats", "top", "hot_restart"})


class _GatewayJob:
    """One admitted request travelling from connection to forwarder."""

    __slots__ = ("id", "op", "params", "context", "done", "response",
                 "admitted")

    def __init__(self, request_id, op, params, context):
        self.id = request_id
        self.op = op
        self.params = params
        self.context = context
        self.done = threading.Event()
        self.response = None
        self.admitted = perf_counter()

    def finish(self, response):
        self.response = response
        self.done.set()


class FleetGateway:
    """Front process: admission, routing, forwarding, fleet control."""

    def __init__(self, config=None):
        self.config = config or FleetConfig()
        self.manager = ShardManager(self.config)
        self.queue = AdmissionQueue(self.config.queue_size,
                                    self.config.starvation_limit)
        self.started_at = None
        self._listener = None
        self._family = None
        self._threads = []
        self._forwarders = []
        self._lock = threading.Lock()
        self._in_flight = 0
        self._inflight_zero = threading.Condition(self._lock)
        self._drain_requested = threading.Event()
        self.drained = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        self.manager.start()
        family, target = parse_address(self.config.address)
        self._family = family
        if family == "unix":
            if os.path.exists(target):
                from repro.serve.daemon import socket_in_use

                if socket_in_use(target):
                    raise OSError("gateway socket %s is served by a live "
                                  "process; refusing to steal it" % target)
                os.unlink(target)
            self._listener = socket.socket(socket.AF_UNIX,
                                           socket.SOCK_STREAM)
            self._listener.bind(target)
        else:
            self._listener = socket.socket(socket.AF_INET,
                                           socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEADDR, 1)
            self._listener.bind(target)
        self._listener.listen(min(socket.SOMAXCONN, 512))
        self._listener.settimeout(0.2)
        self.started_at = time.monotonic()
        for index in range(self.config.forwarders):
            thread = threading.Thread(target=self._forward_loop,
                                      name="fleet-forward-%d" % index,
                                      daemon=True)
            thread.start()
            self._forwarders.append(thread)
        for target_fn, name in ((self._accept_loop, "fleet-accept"),
                                (self._drain_loop, "fleet-drain")):
            thread = threading.Thread(target=target_fn, name=name,
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        _events.emit("fleet.start", pid=os.getpid(),
                     address=self.config.address,
                     shards=self.config.shards,
                     forwarders=self.config.forwarders)
        return self

    def request_drain(self):
        self._drain_requested.set()

    def wait_drained(self, timeout=None):
        return self.drained.wait(timeout)

    def describe(self):
        interactive, bulk = self.queue.depths()
        return {
            "pid": os.getpid(),
            "fleet": True,
            "address": self.config.address,
            "shards": self.config.shards,
            "live": sorted(self.manager.live_slots()),
            "forwarders": self.config.forwarders,
            "queue_depth": interactive + bulk,
            "queues": {"interactive": interactive, "bulk": bulk},
            "draining": self._drain_requested.is_set(),
            "uptime_s": time.monotonic() - self.started_at
            if self.started_at is not None else 0.0,
        }

    # ------------------------------------------------------------------
    # Accept / connection handling (mirrors EditServer's shape)
    # ------------------------------------------------------------------

    def _accept_loop(self):
        while not self._drain_requested.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            thread.start()

    def _serve_connection(self, conn):
        reader = protocol.LineReader(conn)
        try:
            while True:
                try:
                    message = reader.next_message()
                except protocol.ProtocolError as error:
                    conn.sendall(protocol.encode(protocol.error_response(
                        None, protocol.E_BAD_REQUEST, str(error))))
                    return
                if message is None:
                    return
                response = self._handle_request(message)
                if response is not None:
                    conn.sendall(protocol.encode(response))
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle_request(self, message):
        request_id = message.get("id")
        op = message.get("op")
        ctx = _context.TraceContext.from_wire(message.get("trace")) \
            or _context.TraceContext()
        _C_REQUESTS.inc()

        def _tagged(response):
            if isinstance(response, dict):
                response.setdefault("trace_id", ctx.trace_id)
            return response

        if not isinstance(op, str):
            return _tagged(protocol.error_response(
                request_id, protocol.E_BAD_REQUEST,
                "request needs a string 'op'"))
        params = {key: value for key, value in message.items()
                  if key not in ("id", "op", "trace")}
        if op == "shutdown":
            self.request_drain()
            return _tagged(protocol.ok_response(request_id,
                                                {"draining": True,
                                                 "fleet": True}))
        if self._drain_requested.is_set():
            _C_REJECTED.inc()
            return _tagged(protocol.error_response(
                request_id, protocol.E_DRAINING, "gateway is draining",
                retry_after=self.config.retry_after_s))
        if op in LOCAL_OPS:
            with _context.attached(ctx):
                return _tagged(self._local_op(request_id, op, params))
        job = _GatewayJob(request_id, op, params, ctx)
        _events.emit("request.admit", trace_id=ctx.trace_id,
                     id=request_id, op=op,
                     priority=priority_class(op),
                     queue_depth=len(self.queue))
        with self._lock:
            self._in_flight += 1
        if not self.queue.put(job, op=op):
            self._job_finished(job)
            _C_REJECTED.inc()
            _events.emit("request.error", trace_id=ctx.trace_id,
                         id=request_id, op=op,
                         code=protocol.E_OVERLOADED,
                         queue_depth=self.config.queue_size)
            return _tagged(protocol.error_response(
                request_id, protocol.E_OVERLOADED,
                "gateway admission queue is full (%d waiting)"
                % self.config.queue_size,
                retry_after=self.config.retry_after_s))
        self._note_depths()
        # Worst case one forward waits through a full shard timeout per
        # retry; bound the client wait above that so the gateway, not
        # the client's io_timeout, reports the failure.
        deadline = self.config.shard_timeout_s \
            * (1 + min(1, self.config.retries)) + 10.0
        if not job.done.wait(deadline):
            _events.emit("request.error", trace_id=ctx.trace_id,
                         id=request_id, op=op, code=protocol.E_TIMEOUT)
            return _tagged(protocol.error_response(
                request_id, protocol.E_TIMEOUT,
                "fleet request exceeded %.1fs" % deadline,
                retry_after=self.config.retry_after_s))
        return _tagged(job.response)

    def _note_depths(self):
        interactive, bulk = self.queue.depths()
        _G_Q_INTERACTIVE.set(interactive)
        _G_Q_BULK.set(bulk)

    def _job_finished(self, job):
        if not job.done.is_set():
            job.finish(None)
        with self._lock:
            self._in_flight -= 1
            if self._in_flight <= 0:
                self._inflight_zero.notify_all()

    # ------------------------------------------------------------------
    # Local ops (fleet state and control)
    # ------------------------------------------------------------------

    def _local_op(self, request_id, op, params):
        try:
            if op == "ping":
                live = self.manager.live_slots()
                return protocol.ok_response(request_id, {
                    "pong": True, "protocol": protocol.PROTOCOL,
                    "pid": os.getpid(),
                    "fleet": {"shards": self.config.shards,
                              "live": len(live)},
                })
            if op == "stats":
                return protocol.ok_response(request_id, self._stats(params))
            if op == "top":
                return protocol.ok_response(request_id, self._top(params))
            if op == "hot_restart":
                return protocol.ok_response(request_id,
                                            self._hot_restart(params))
        except Exception as error:
            return protocol.error_response(
                request_id, protocol.E_INTERNAL,
                "%s: %s" % (type(error).__name__, error))
        raise AssertionError("unhandled local op %r" % op)

    def _stats(self, params):
        from repro.obs import report as obs_report

        report = obs_report.build_report()
        report["fleet"]["shards"] = self.manager.shard_table()
        sections = params.get("sections")
        if sections is not None:
            if not isinstance(sections, list) \
                    or not all(isinstance(s, str) for s in sections):
                return {"report": {}, "server": self.describe()}
            known = [s for s in sections if s in report]
            report = {key: report[key] for key in ("schema", *known)}
        return {"report": report, "server": self.describe()}

    def _top(self, params):
        """Fleet shape of the ``top`` op: gateway counters plus the
        shard table (``repro top`` renders the table when present)."""
        counters = {name: instrument.value for name, instrument
                    in sorted(_metrics.REGISTRY.counters.items())
                    if instrument.value and name.startswith("fleet.")}
        gauges = {name: instrument.value for name, instrument
                  in sorted(_metrics.REGISTRY.gauges.items())
                  if instrument.value is not None}
        queue_wait = _H_QUEUE_WAIT.snapshot() if _H_QUEUE_WAIT.count \
            else None
        return {
            "cursor": 0,
            "incremental": False,
            "server": self.describe(),
            "counters": counters,
            "gauges": gauges,
            "latency": {},
            "queue_wait": queue_wait,
            "shards": self.manager.shard_table(),
        }

    def _hot_restart(self, params):
        shard = params.get("shard")
        if shard is None:
            return {"restarted": self.manager.rolling_restart()}
        if not isinstance(shard, int) \
                or not 0 <= shard < self.config.shards:
            raise ValueError("no such shard %r" % (shard,))
        return {"restarted": [self.manager.hot_restart(
            self.manager.slots[shard])]}

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def _forward_loop(self):
        while True:
            job = self.queue.get(timeout=0.2)
            if job is _STOP:
                return
            if job is None:
                continue
            self._note_depths()
            try:
                self._forward(job)
            finally:
                self._job_finished(job)

    def _forward(self, job):
        _H_QUEUE_WAIT.observe(perf_counter() - job.admitted)
        token = _context.attach(job.context)
        root = _trace.TRACER.request_span("fleet.request", op=job.op,
                                          request_id=job.id)
        root.__enter__()
        status, code, shard_used = "ok", None, None
        try:
            response, shard_used = self._forward_routed(job, root)
            if isinstance(response, dict):
                code = (response.get("error") or {}).get("code")
                status = "ok" if response.get("ok") else "error"
            job.finish(response)
        finally:
            root.__exit__(None, None, None)
            _context.detach(token)
            self._emit_forward_event(job, status, code, shard_used, root)

    def _forward_routed(self, job, root):
        """Route and relay one request; returns (response, shard_index).

        Transport failures re-route to the key's next-choice live
        shard (the failing shard is reported for respawn); ``draining``
        and ``overloaded`` answers back off and re-resolve, so a
        mid-hot-restart shard costs one retry, never a failure.
        """
        key = ring.content_key(job.op, job.params) \
            or "req:%s:%s" % (job.op, job.id)
        attempts = 0
        while True:
            slot_index = ring.route(key, self.config.shards,
                                    live=self.manager.live_slots())
            if slot_index is None:
                return protocol.error_response(
                    job.id, protocol.E_UNAVAILABLE,
                    "no live shards (fleet of %d)" % self.config.shards,
                    retry_after=self.config.retry_after_s), None
            slot = self.manager.slots[slot_index]
            with slot.lock:
                slot.requests += 1
            with _trace.TRACER.span("fleet.forward", shard=slot_index,
                                    attempt=attempts) as forward_span:
                if isinstance(forward_span, _trace.Span) \
                        and forward_span.span_id:
                    wire = job.context.child(forward_span.span_id)
                else:
                    wire = job.context
                params = dict(job.params)
                params["trace"] = wire.to_wire()
                generation, client = slot.checkout(
                    self.config.shard_timeout_s)
                try:
                    response = client.roundtrip(job.op, **params)
                except (OSError, ServeError, protocol.ProtocolError):
                    client.close()
                    with slot.lock:
                        slot.rerouted_away += 1
                    _C_REROUTED.inc()
                    _events.emit("fleet.reroute", shard=slot_index,
                                 op=job.op, key=key)
                    # Report in a helper thread? No: report_failure is
                    # idempotent and bounded; inline keeps ordering.
                    self.manager.report_failure(slot)
                    attempts += 1
                    if attempts > self.config.retries \
                            + self.config.shards:
                        return protocol.error_response(
                            job.id, protocol.E_UNAVAILABLE,
                            "shard %d unreachable and rerouting "
                            "exhausted" % slot_index), slot_index
                    continue
                slot.checkin(generation, client)
            code = (response.get("error") or {}).get("code") \
                if isinstance(response, dict) else None
            if code in (protocol.E_DRAINING, protocol.E_OVERLOADED) \
                    and attempts < self.config.retries:
                attempts += 1
                _C_RETRIES.inc()
                retry_after = response.get("retry_after")
                time.sleep(min(retry_after if retry_after is not None
                               else self.config.retry_after_s, 2.0))
                continue
            # Relay: the response is the shard's, the identity is ours.
            if isinstance(response, dict):
                response["id"] = job.id
                response["shard"] = slot_index
                if response.get("ok"):
                    with slot.lock:
                        slot.ok += 1
                    slot.note_recent(job.params.get("workload"))
                else:
                    with slot.lock:
                        slot.errors += 1
            _C_FORWARDED.inc()
            return response, slot_index

    def _emit_forward_event(self, job, status, code, shard, root):
        if not _events.is_configured():
            return
        fields = {
            "trace_id": job.context.trace_id if job.context else None,
            "id": job.id,
            "op": job.op,
            "shard": shard,
        }
        if isinstance(root, _trace.Span):
            fields["spans"] = [root.to_dict()]
        if status == "ok":
            _events.emit("request.finish", **fields)
        else:
            fields["code"] = code or protocol.E_INTERNAL
            _events.emit("request.error", **fields)

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------

    def _drain_loop(self):
        self._drain_requested.wait()
        _events.emit("fleet.drain.begin", queue_depth=len(self.queue),
                     in_flight=self._in_flight)
        try:
            self._listener.close()
        except OSError:
            pass
        deadline = time.monotonic() + self.config.drain_timeout_s
        with self._lock:
            while self._in_flight > 0 and time.monotonic() < deadline:
                self._inflight_zero.wait(timeout=0.1)
        for _ in self._forwarders:
            self.queue.put_control(_STOP)
        for thread in self._forwarders:
            thread.join(max(0.1, deadline - time.monotonic()))
        self.manager.stop()
        if self._family == "unix":
            try:
                os.unlink(self.config.address)
            except OSError:
                pass
        _events.emit("fleet.drain.finish", clean=self._in_flight <= 0)
        self.drained.set()


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------

def fleet_main(config, stats_json=None, trace=False):
    """Run a gateway (and its shard fleet) until SIGTERM/shutdown."""
    import json
    import signal

    from repro import obs
    from repro.obs import report as obs_report

    if stats_json or trace or config.events_path:
        obs.enable()
    if config.events_path:
        _events.configure(config.events_path)
    try:
        gateway = FleetGateway(config).start()
    except (OSError, RuntimeError) as error:
        print("repro-fleet: %s" % error, file=sys.stderr, flush=True)
        if config.events_path:
            _events.unconfigure()
        return 1
    print("repro-fleet: gateway on %s (%d shards, %d forwarders, pid %d)"
          % (config.address, config.shards, config.forwarders,
             os.getpid()), file=sys.stderr, flush=True)

    def _request_drain(_signum=None, _frame=None):
        gateway.request_drain()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _request_drain)
        except ValueError:
            pass
    while not gateway.wait_drained(timeout=0.2):
        pass
    obs.disable()
    if config.events_path:
        _events.unconfigure()
    report = obs_report.build_report()
    report["fleet"]["shards"] = gateway.manager.shard_table()
    if stats_json:
        with open(stats_json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    fleet = report["fleet"]
    print("repro-fleet: drained (%d requests, %d forwarded, "
          "%d rerouted, %d retries, %d hot restarts)"
          % (fleet["requests"], fleet["forwarded"], fleet["rerouted"],
             fleet["retries"], fleet["hot_restarts"]),
          file=sys.stderr, flush=True)
    return 0
