"""Gateway admission: two priority classes with a starvation bound.

Interactive traffic (``run``, ``disasm``, ``instrument`` — a human or
tool waiting on the answer) dispatches ahead of bulk traffic
(``verify`` and fuzz-campaign sweeps that care about throughput, not
latency).  Strict priority alone would let a steady interactive
stream starve bulk work forever, so the queue enforces a bound: after
``starvation_limit`` consecutive interactive dispatches while bulk
work waited, the next dispatch is bulk regardless.  The worst-case
bulk wait is therefore ``starvation_limit`` interactive requests —
bounded, and tested (``test_fleet.py``).

The queue is bounded as a whole (both classes share one budget);
``put`` returning False is the gateway's ``overloaded`` signal.
"""

import threading
from collections import deque
from time import monotonic

# Ops whose requester is throughput-oriented; everything else is
# interactive.  Fuzz sweeps arrive as verify ops, so one class covers
# both bulk producers named by the design.
BULK_OPS = frozenset({"verify"})


def priority_class(op):
    """``"bulk"`` or ``"interactive"`` for an op name."""
    return "bulk" if op in BULK_OPS else "interactive"


class AdmissionQueue:
    """Bounded two-class queue with aged (bounded-starvation) dispatch."""

    def __init__(self, maxsize, starvation_limit=8):
        self.maxsize = maxsize
        self.starvation_limit = starvation_limit
        self._interactive = deque()
        self._bulk = deque()
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        # Consecutive interactive dispatches since the last bulk one
        # (counted only while bulk work was actually waiting).
        self._streak = 0

    # ------------------------------------------------------------------
    def put(self, item, op=None):
        """Admit *item* under *op*'s class; False when the queue is full."""
        bulk = priority_class(op) == "bulk"
        with self._nonempty:
            if len(self._interactive) + len(self._bulk) >= self.maxsize:
                return False
            (self._bulk if bulk else self._interactive).append(item)
            self._nonempty.notify()
            return True

    def put_control(self, item):
        """Admit a control item (worker STOP sentinel) past the bound,
        at the front — shutdown must never block on a full queue."""
        with self._nonempty:
            self._interactive.appendleft(item)
            self._nonempty.notify()

    def get(self, timeout=None):
        """Next item by priority policy, or None on timeout."""
        with self._nonempty:
            deadline = monotonic() + timeout if timeout is not None \
                else None
            while not self._interactive and not self._bulk:
                remaining = None if deadline is None \
                    else deadline - monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._nonempty.wait(remaining)
            if self._bulk and (not self._interactive
                               or self._streak >= self.starvation_limit):
                self._streak = 0
                return self._bulk.popleft()
            if self._interactive:
                # The streak ages bulk work only while it is waiting;
                # interactive dispatches from an empty bulk queue are
                # not starving anyone.
                self._streak = self._streak + 1 if self._bulk else 0
                return self._interactive.popleft()
            if self._bulk:
                self._streak = 0
                return self._bulk.popleft()
            return None

    # ------------------------------------------------------------------
    def depths(self):
        """``(interactive, bulk)`` queue depths (racy, for telemetry)."""
        with self._lock:
            return len(self._interactive), len(self._bulk)

    def __len__(self):
        with self._lock:
            return len(self._interactive) + len(self._bulk)
