"""AST node definitions for minic.

Types are represented as ('int' | 'char', pointer_level).  Arrays decay
to pointers except in declarations, which carry an element count.
"""

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Type:
    base: str  # "int" | "char" | "void"
    ptr: int = 0  # pointer indirection level

    @property
    def is_pointer(self):
        return self.ptr > 0

    def deref(self):
        if self.ptr == 0:
            raise ValueError("dereferencing non-pointer")
        return Type(self.base, self.ptr - 1)

    def pointer_to(self):
        return Type(self.base, self.ptr + 1)

    @property
    def width(self):
        """Bytes occupied by a value of this type."""
        if self.ptr:
            return 4
        return 1 if self.base == "char" else 4

    def __str__(self):
        return self.base + "*" * self.ptr


INT = Type("int")
CHAR = Type("char")
VOID = Type("void")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr:
    pass


@dataclass
class NumLit(Expr):
    value: int


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class Unary(Expr):
    op: str  # "-", "!", "~", "*", "&"
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    target: Expr  # VarRef, Unary("*"), or Index
    value: Expr
    op: str = "="  # "=", "+=", ...


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    name: str
    args: list


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass
class IncDec(Expr):
    target: Expr
    op: str  # "++" or "--"
    prefix: bool


@dataclass
class Cast(Expr):
    type: Type
    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Block(Stmt):
    statements: list


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Switch(Stmt):
    value: Expr
    cases: list  # list of (int value, [Stmt])
    default: Optional[list] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class LocalDecl(Stmt):
    name: str
    type: Type
    array: int = 0  # element count when an array
    init: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

@dataclass
class Param:
    name: str
    type: Type


@dataclass
class Function:
    name: str
    return_type: Type
    params: list
    body: Block
    static: bool = False


@dataclass
class GlobalDecl:
    name: str
    type: Type
    array: int = 0
    init: object = None  # int, str, or list of ints
    static: bool = False


@dataclass
class Program:
    functions: list = field(default_factory=list)
    globals: list = field(default_factory=list)

    def function(self, name):
        for function in self.functions:
            if function.name == name:
                return function
        return None
