"""Tokenizer for minic."""

import re

KEYWORDS = {
    "int", "char", "void", "if", "else", "while", "for", "do", "switch",
    "case", "default", "break", "continue", "return", "static",
}

# Longest first so multi-character operators win.
OPERATORS = (
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<char>'(\\.|[^\\'])')
  | (?P<str>"(\\.|[^"\\])*")
  | (?P<id>[A-Za-z_]\w*)
  | (?P<op>%s)
    """
    % "|".join(re.escape(op) for op in OPERATORS),
    re.VERBOSE | re.DOTALL,
)

_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'", '"': '"', "r": "\r"}


class Token:
    __slots__ = ("kind", "text", "value", "line")

    def __init__(self, kind, text, value, line):
        self.kind = kind  # "num" | "id" | "kw" | "op" | "str" | "eof"
        self.text = text
        self.value = value
        self.line = line

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.text)


class LexError(Exception):
    pass


def _unescape(body):
    out = []
    index = 0
    while index < len(body):
        char = body[index]
        if char == "\\" and index + 1 < len(body):
            out.append(_ESCAPES.get(body[index + 1], body[index + 1]))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def tokenize(source):
    """Tokenize *source*, returning a list ending with an EOF token."""
    tokens = []
    position = 0
    line = 1
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if not match:
            raise LexError("line %d: bad character %r" % (line, source[position]))
        text = match.group(0)
        line += text.count("\n")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        if match.lastgroup == "num":
            tokens.append(Token("num", text, int(text, 0), line))
        elif match.lastgroup == "char":
            tokens.append(Token("num", text, ord(_unescape(text[1:-1])), line))
        elif match.lastgroup == "str":
            tokens.append(Token("str", text, _unescape(text[1:-1]), line))
        elif match.lastgroup == "id":
            kind = "kw" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, text, line))
        else:
            tokens.append(Token("op", text, text, line))
    tokens.append(Token("eof", "", None, line))
    return tokens
