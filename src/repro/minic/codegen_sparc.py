"""SPARC code generator for minic.

Produces assembly text for :mod:`repro.asm`.  The expression evaluator
uses a virtual value stack mapped onto %l0-%l7 (window-local registers
survive calls), overflowing into frame temporaries.  A post-pass
peephole performs delay-slot scheduling: call delay slots are filled
from the preceding instruction, and conditional-branch delay slots are
filled from the branch target using the annul bit (the idiom behind the
paper's Figure 3).
"""

import re

from repro.minic import ast

WORD = 4
# %l0-%l7 hold the expression stack.
EVAL_REGS = ["%l" + str(n) for n in range(8)]
SCRATCH_A = "%g6"
SCRATCH_B = "%g7"
ARG_REGS = ["%o" + str(n) for n in range(6)]
MIN_FRAME = 96  # register save area + hidden + outgoing args

# Condition-code mnemonics for signed comparisons.
_CMP_BRANCH = {"==": "be", "!=": "bne", "<": "bl", "<=": "ble",
               ">": "bg", ">=": "bge"}
_NEGATE = {"be": "bne", "bne": "be", "bl": "bge", "ble": "bg",
           "bg": "ble", "bge": "bl", "bgu": "bleu", "bleu": "bgu",
           "bcc": "bcs", "bcs": "bcc"}

_BINARY_INST = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
                "<<": "sll", ">>": "sra", "*": "smul"}


class CompileError(Exception):
    pass


class _Scope:
    """Nested local-variable scopes."""

    def __init__(self):
        self.frames = [{}]

    def push(self):
        self.frames.append({})

    def pop(self):
        self.frames.pop()

    def define(self, name, entry):
        if name in self.frames[-1]:
            raise CompileError("duplicate local %r" % name)
        self.frames[-1][name] = entry

    def lookup(self, name):
        for frame in reversed(self.frames):
            if name in frame:
                return frame[name]
        return None


class _Value:
    """A value on the virtual evaluation stack."""

    def __init__(self, place, where, type_):
        self.place = place  # "reg" | "slot"
        self.where = where  # register name or frame offset
        self.type = type_


class ModuleCodegen:
    """Compile a minic Program into SPARC assembly text."""

    def __init__(self, program, options):
        self.program = program
        self.options = options
        self.lines = []
        self.rodata = []
        self.data = []
        self.bss = []
        self.label_counter = 0
        self.string_labels = {}
        self.global_types = {}  # name -> (Type, is_array)
        self.function_names = {f.name for f in program.functions}
        self.static_functions = [f.name for f in program.functions if f.static]
        for declaration in program.globals:
            self.global_types[declaration.name] = (
                declaration.type,
                declaration.array > 0,
            )

    # ------------------------------------------------------------------
    def new_label(self, hint="L"):
        self.label_counter += 1
        return ".%s%d" % (hint, self.label_counter)

    def emit(self, text):
        self.lines.append("\t" + text)

    def emit_label(self, label):
        self.lines.append(label + ":")

    def string_label(self, text):
        label = self.string_labels.get(text)
        if label is None:
            label = self.new_label("Lstr")
            self.string_labels[text] = label
            escaped = (
                text.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
                .replace("\t", "\\t")
                .replace("\0", "\\0")
            )
            self.rodata.append('%s: .asciz "%s"' % (label, escaped))
        return label

    # ------------------------------------------------------------------
    def generate(self):
        for function in self.program.functions:
            FunctionCodegen(function, self).generate()
        for declaration in self.program.globals:
            self._emit_global(declaration)
        parts = [".text"]
        parts.extend(self.lines)
        if self.rodata:
            parts.append(".rodata")
            parts.extend(self.rodata)
        if self.data:
            parts.append(".data")
            parts.extend(self.data)
        if self.bss:
            parts.append(".bss")
            parts.extend(self.bss)
        return "\n".join(parts) + "\n"

    def _emit_global(self, declaration):
        name = declaration.name
        visibility = [] if declaration.static else [".global %s" % name]
        element_width = declaration.type.width if declaration.array else WORD
        if declaration.init is None:
            size = element_width * max(declaration.array, 1)
            self.bss.extend(visibility)
            self.bss.append(".align 4")
            self.bss.append("%s: .space %d" % (name, size))
            return
        self.data.extend(visibility)
        self.data.append(".align 4")
        if isinstance(declaration.init, str):
            escaped = declaration.init.replace("\\", "\\\\").replace('"', '\\"') \
                .replace("\n", "\\n").replace("\0", "\\0")
            self.data.append('%s: .asciz "%s"' % (name, escaped))
        elif isinstance(declaration.init, list):
            values = list(declaration.init)
            values += [0] * (declaration.array - len(values))
            if element_width == 1:
                items = ", ".join(str(v & 0xFF) for v in values)
                self.data.append("%s: .byte %s" % (name, items))
            else:
                items = ", ".join(str(v) for v in values)
                self.data.append("%s: .word %s" % (name, items))
        else:
            self.data.append("%s: .word %d" % (name, declaration.init))


class FunctionCodegen:
    def __init__(self, function, module):
        self.function = function
        self.module = module
        self.options = module.options
        self.scope = _Scope()
        self.local_offset = 0  # bytes of locals below %fp
        self.max_offset = 0
        self.stack = []  # virtual evaluation stack of _Value
        self.regs_in_use = [False] * len(EVAL_REGS)
        self.break_labels = []
        self.continue_labels = []
        self.body_lines = []
        self.tables = []  # (label, [case labels]) switch dispatch tables
        self.return_label = module.new_label("Lret")

    # -- emission --------------------------------------------------------
    def emit(self, text):
        self.body_lines.append("\t" + text)

    def emit_label(self, label):
        self.body_lines.append(label + ":")

    def new_label(self, hint="L"):
        return self.module.new_label(hint)

    # -- frame -----------------------------------------------------------
    def _alloc_slot(self, size=WORD, align=WORD):
        self.local_offset = (self.local_offset + size + align - 1) // align * align
        self.max_offset = max(self.max_offset, self.local_offset)
        return -self.local_offset

    # -- value stack -------------------------------------------------------
    def push(self, type_):
        """Allocate a destination for a new value; returns a _Value."""
        for index, used in enumerate(self.regs_in_use):
            if not used:
                self.regs_in_use[index] = True
                value = _Value("reg", EVAL_REGS[index], type_)
                self.stack.append(value)
                return value
        offset = self._alloc_slot()
        value = _Value("slot", offset, type_)
        self.stack.append(value)
        return value

    def pop(self):
        return self.stack.pop()

    def release(self, value):
        if value.place == "reg":
            self.regs_in_use[EVAL_REGS.index(value.where)] = False

    def reg_of(self, value, scratch=SCRATCH_A):
        """Materialize *value* in a register, loading spilled slots."""
        if value.place == "reg":
            return value.where
        self.emit("ld [%%fp %+d], %s" % (value.where, scratch))
        return scratch

    def store_result(self, value, source_reg):
        """Move *source_reg* into the location of *value* (if different)."""
        if value.place == "reg":
            if value.where != source_reg:
                self.emit("mov %s, %s" % (source_reg, value.where))
        else:
            self.emit("st %s, [%%fp %+d]" % (source_reg, value.where))

    def result_reg(self, value):
        """Register a new result may be computed into directly."""
        return value.where if value.place == "reg" else SCRATCH_A

    def finish_result(self, value):
        if value.place == "slot":
            self.emit("st %s, [%%fp %+d]" % (SCRATCH_A, value.where))

    # ------------------------------------------------------------------
    def generate(self):
        module = self.module
        function = self.function
        if not function.static:
            module.lines.append("\t.global %s" % function.name)
        module.lines.append("\t.type %s, func" % function.name)

        # Parameters become stack locals.
        param_stores = []
        if len(function.params) > len(ARG_REGS):
            raise CompileError("more than 6 parameters in %s" % function.name)
        for index, param in enumerate(function.params):
            offset = self._alloc_slot()
            self.scope.define(param.name, ("local", offset, param.type, 0))
            param_stores.append("st %%i%d, [%%fp %+d]" % (index, offset))

        for statement in function.body.statements:
            self.gen_statement(statement)

        frame = (MIN_FRAME + self.max_offset + 7) // 8 * 8
        module.lines.append(function.name + ":")
        module.lines.append("\tsave %%sp, -%d, %%sp" % frame)
        for store in param_stores:
            module.lines.append("\t" + store)
        module.lines.extend(self.body_lines)
        module.lines.append(self.return_label + ":")
        module.lines.append("\tret")
        module.lines.append("\trestore")
        # Dispatch tables: in .text right after the routine (data-in-text,
        # the idiom EEL's CFG analysis must detect) or in .rodata.
        for table_label, case_labels in self.tables:
            rows = ["\t.align 4", "%s:" % table_label] + [
                "\t.word %s" % label for label in case_labels
            ]
            if self.options.tables_in_text:
                module.lines.extend(rows)
            else:
                module.rodata.extend(rows)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def gen_statement(self, statement):
        if isinstance(statement, ast.Block):
            self.scope.push()
            for child in statement.statements:
                self.gen_statement(child)
            self.scope.pop()
        elif isinstance(statement, ast.LocalDecl):
            self._gen_local_decl(statement)
        elif isinstance(statement, ast.ExprStmt):
            value = self.gen_expr(statement.expr)
            self.release(value)
            self.stack.pop()
        elif isinstance(statement, ast.If):
            self._gen_if(statement)
        elif isinstance(statement, ast.While):
            self._gen_while(statement)
        elif isinstance(statement, ast.DoWhile):
            self._gen_do_while(statement)
        elif isinstance(statement, ast.For):
            self._gen_for(statement)
        elif isinstance(statement, ast.Switch):
            self._gen_switch(statement)
        elif isinstance(statement, ast.Break):
            if not self.break_labels:
                raise CompileError("break outside loop/switch")
            self.emit("b %s" % self.break_labels[-1])
            self.emit("nop")
        elif isinstance(statement, ast.Continue):
            if not self.continue_labels:
                raise CompileError("continue outside loop")
            self.emit("b %s" % self.continue_labels[-1])
            self.emit("nop")
        elif isinstance(statement, ast.Return):
            self._gen_return(statement)
        else:
            raise CompileError("unknown statement %r" % statement)

    def _gen_local_decl(self, declaration):
        if declaration.array:
            size = declaration.type.width * declaration.array
            offset = self._alloc_slot(size)
            self.scope.define(
                declaration.name,
                ("local", offset, declaration.type, declaration.array),
            )
            if declaration.init is not None:
                raise CompileError("local array initializers unsupported")
            return
        offset = self._alloc_slot()
        self.scope.define(declaration.name, ("local", offset, declaration.type, 0))
        if declaration.init is not None:
            value = self.gen_expr(declaration.init)
            reg = self.reg_of(value)
            self.emit("st %s, [%%fp %+d]" % (reg, offset))
            self.release(value)
            self.stack.pop()

    def _gen_if(self, statement):
        else_label = self.new_label()
        self.gen_branch_false(statement.cond, else_label)
        self.gen_statement(statement.then)
        if statement.other is not None:
            end_label = self.new_label()
            self.emit("b %s" % end_label)
            self.emit("nop")
            self.emit_label(else_label)
            self.gen_statement(statement.other)
            self.emit_label(end_label)
        else:
            self.emit_label(else_label)

    def _gen_while(self, statement):
        head = self.new_label("Lloop")
        end = self.new_label()
        self.emit_label(head)
        self.gen_branch_false(statement.cond, end)
        self.break_labels.append(end)
        self.continue_labels.append(head)
        self.gen_statement(statement.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit("b %s" % head)
        self.emit("nop")
        self.emit_label(end)

    def _gen_do_while(self, statement):
        head = self.new_label("Lloop")
        end = self.new_label()
        cond_label = self.new_label()
        self.emit_label(head)
        self.break_labels.append(end)
        self.continue_labels.append(cond_label)
        self.gen_statement(statement.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit_label(cond_label)
        self.gen_branch_true(statement.cond, head)
        self.emit_label(end)

    def _gen_for(self, statement):
        head = self.new_label("Lloop")
        step_label = self.new_label()
        end = self.new_label()
        self.scope.push()
        if statement.init is not None:
            self.gen_statement(statement.init)
        self.emit_label(head)
        if statement.cond is not None:
            self.gen_branch_false(statement.cond, end)
        self.break_labels.append(end)
        self.continue_labels.append(step_label)
        self.gen_statement(statement.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit_label(step_label)
        if statement.step is not None:
            value = self.gen_expr(statement.step)
            self.release(value)
            self.stack.pop()
        self.emit("b %s" % head)
        self.emit("nop")
        self.emit_label(end)
        self.scope.pop()

    def _gen_return(self, statement):
        if statement.value is not None:
            if (
                self.options.tail_calls
                and isinstance(statement.value, ast.Call)
                and statement.value.name in self.module.function_names
                and len(statement.value.args) <= 6
            ):
                self._gen_tail_call(statement.value)
                return
            value = self.gen_expr(statement.value)
            reg = self.reg_of(value)
            self.emit("mov %s, %%i0" % reg)
            self.release(value)
            self.stack.pop()
        self.emit("b %s" % self.return_label)
        self.emit("nop")

    def _gen_tail_call(self, call):
        """Pop the frame and jump: the SunPro return-call idiom.

        Arguments go into the current window's %i registers; the
        ``restore`` in the jump's delay slot shifts them into the
        caller's %o registers, where the callee expects them.
        """
        values = [self.gen_expr(argument) for argument in call.args]
        for index, value in enumerate(values):
            reg = self.reg_of(value, SCRATCH_B)
            self.emit("mov %s, %%i%d" % (reg, index))
        for value in reversed(values):
            self.release(value)
            self.stack.pop()
        self.emit("set %s, %%g1" % call.name)
        self.emit("jmp %g1")
        self.emit("restore")

    def _gen_switch(self, statement):
        value = self.gen_expr(statement.value)
        reg = self.reg_of(value)
        end = self.new_label("Lswend")
        default_label = self.new_label("Lswdef")
        case_labels = [(case_value, self.new_label("Lcase"))
                       for case_value, _ in statement.cases]

        use_table = False
        if self.options.dispatch_tables and len(case_labels) >= 4:
            values = [case_value for case_value, _ in case_labels]
            span = max(values) - min(values) + 1
            use_table = span <= 2 * len(values) and span <= 512

        if use_table:
            low = min(case_value for case_value, _ in case_labels)
            span = max(case_value for case_value, _ in case_labels) - low + 1
            table_label = self.new_label("Ltab")
            scratch = SCRATCH_B
            if low:
                self.emit("sub %s, %d, %s" % (reg, low, scratch))
            else:
                self.emit("mov %s, %s" % (reg, scratch))
            self.emit("cmp %s, %d" % (scratch, span - 1))
            self.emit("bgu %s" % default_label)
            self.emit("nop")
            self.emit("sll %s, 2, %s" % (scratch, scratch))
            self.emit("set %s, %%g5" % table_label)
            self.emit("ld [%%g5 + %s], %s" % (scratch, scratch))
            self.emit("jmp %s" % scratch)
            self.emit("nop")
            label_of = dict()
            for case_value, label in case_labels:
                label_of[case_value] = label
            rows = [label_of.get(low + i, default_label) for i in range(span)]
            self.tables.append((table_label, rows))
        else:
            for case_value, label in case_labels:
                self.emit("cmp %s, %d" % (reg, case_value))
                self.emit("be %s" % label)
                self.emit("nop")
            self.emit("b %s" % default_label)
            self.emit("nop")

        self.release(value)
        self.stack.pop()
        self.break_labels.append(end)
        for (case_value, body), (_, label) in zip(statement.cases, case_labels):
            self.emit_label(label)
            for child in body:
                self.gen_statement(child)
        self.emit_label(default_label)
        if statement.default is not None:
            for child in statement.default:
                self.gen_statement(child)
        self.break_labels.pop()
        self.emit_label(end)

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def gen_branch_false(self, condition, label):
        self._gen_condition(condition, label, jump_if=False)

    def gen_branch_true(self, condition, label):
        self._gen_condition(condition, label, jump_if=True)

    def _gen_condition(self, condition, label, jump_if):
        if isinstance(condition, ast.Unary) and condition.op == "!":
            self._gen_condition(condition.operand, label, not jump_if)
            return
        if isinstance(condition, ast.Binary) and condition.op in _CMP_BRANCH:
            left = self.gen_expr(condition.left)
            right = self.gen_expr(condition.right)
            right_reg = self.reg_of(right, SCRATCH_B)
            left_reg = self.reg_of(left, SCRATCH_A)
            self.emit("cmp %s, %s" % (left_reg, right_reg))
            branch = _CMP_BRANCH[condition.op]
            if not jump_if:
                branch = _NEGATE[branch]
            self.emit("%s %s" % (branch, label))
            self.emit("nop")
            for value in (right, left):
                self.release(value)
                self.stack.pop()
            return
        if isinstance(condition, ast.Binary) and condition.op == "&&":
            if jump_if:
                skip = self.new_label()
                self._gen_condition(condition.left, skip, jump_if=False)
                self._gen_condition(condition.right, label, jump_if=True)
                self.emit_label(skip)
            else:
                self._gen_condition(condition.left, label, jump_if=False)
                self._gen_condition(condition.right, label, jump_if=False)
            return
        if isinstance(condition, ast.Binary) and condition.op == "||":
            if jump_if:
                self._gen_condition(condition.left, label, jump_if=True)
                self._gen_condition(condition.right, label, jump_if=True)
            else:
                skip = self.new_label()
                self._gen_condition(condition.left, skip, jump_if=True)
                self._gen_condition(condition.right, label, jump_if=False)
                self.emit_label(skip)
            return
        value = self.gen_expr(condition)
        reg = self.reg_of(value)
        self.emit("cmp %s, 0" % reg)
        self.emit("%s %s" % ("bne" if jump_if else "be", label))
        self.emit("nop")
        self.release(value)
        self.stack.pop()

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def gen_expr(self, expression):
        """Generate code; returns the _Value pushed on the virtual stack."""
        if isinstance(expression, ast.NumLit):
            value = self.push(ast.INT)
            reg = self.result_reg(value)
            if -4096 <= expression.value < 4096:
                self.emit("mov %d, %s" % (expression.value, reg))
            else:
                self.emit("set %d, %s" % (expression.value, reg))
            self.finish_result(value)
            return value
        if isinstance(expression, ast.StrLit):
            label = self.module.string_label(expression.value)
            value = self.push(ast.Type("char", 1))
            reg = self.result_reg(value)
            self.emit("set %s, %s" % (label, reg))
            self.finish_result(value)
            return value
        if isinstance(expression, ast.VarRef):
            return self._gen_var_ref(expression)
        if isinstance(expression, ast.Unary):
            return self._gen_unary(expression)
        if isinstance(expression, ast.Binary):
            return self._gen_binary(expression)
        if isinstance(expression, ast.Assign):
            return self._gen_assign(expression)
        if isinstance(expression, ast.Index):
            address, elem_type = self._gen_address(expression)
            return self._load_from(address, elem_type)
        if isinstance(expression, ast.Call):
            return self._gen_call(expression)
        if isinstance(expression, ast.Ternary):
            return self._gen_ternary(expression)
        if isinstance(expression, ast.IncDec):
            return self._gen_incdec(expression)
        if isinstance(expression, ast.Cast):
            value = self.gen_expr(expression.operand)
            value.type = expression.type  # casts only retype
            return value
        raise CompileError("unknown expression %r" % expression)

    def _lookup(self, name):
        entry = self.scope.lookup(name)
        if entry is not None:
            return entry
        global_entry = self.module.global_types.get(name)
        if global_entry is not None:
            type_, is_array = global_entry
            return ("global", name, type_, 1 if is_array else 0)
        raise CompileError("undefined variable %r" % name)

    def _gen_var_ref(self, expression):
        kind, where, type_, array = self._lookup(expression.name)
        if array:
            # Arrays decay to a pointer to their first element.
            value = self.push(type_.pointer_to())
            reg = self.result_reg(value)
            if kind == "local":
                self.emit("add %%fp, %d, %s" % (where, reg))
            else:
                self.emit("set %s, %s" % (where, reg))
            self.finish_result(value)
            return value
        value = self.push(type_)
        reg = self.result_reg(value)
        if kind == "local":
            self.emit("ld [%%fp %+d], %s" % (where, reg))
        else:
            self.emit("set %s, %s" % (where, SCRATCH_B))
            self.emit("ld [%s], %s" % (SCRATCH_B, reg))
        self.finish_result(value)
        return value

    def _gen_address(self, expression):
        """Compute an lvalue address; returns (_Value address, value Type)."""
        if isinstance(expression, ast.VarRef):
            kind, where, type_, array = self._lookup(expression.name)
            if array:
                raise CompileError("cannot assign to array %r" % expression.name)
            value = self.push(type_.pointer_to())
            reg = self.result_reg(value)
            if kind == "local":
                self.emit("add %%fp, %d, %s" % (where, reg))
            else:
                self.emit("set %s, %s" % (where, reg))
            self.finish_result(value)
            return value, type_
        if isinstance(expression, ast.Unary) and expression.op == "*":
            pointer = self.gen_expr(expression.operand)
            if not pointer.type.is_pointer:
                raise CompileError("dereferencing non-pointer")
            return pointer, pointer.type.deref()
        if isinstance(expression, ast.Index):
            base = self.gen_expr(expression.base)
            if not base.type.is_pointer:
                raise CompileError("indexing non-pointer")
            elem_type = base.type.deref()
            index = self.gen_expr(expression.index)
            index_reg = self.reg_of(index, SCRATCH_B)
            width = elem_type.width
            if width != 1:
                shift = {4: 2, 2: 1}[width]
                self.emit("sll %s, %d, %s" % (index_reg, shift, SCRATCH_B))
                index_reg = SCRATCH_B
            self.release(index)
            self.stack.pop()
            base_reg = self.reg_of(base, SCRATCH_A)
            self.stack.pop()
            self.release(base)
            address = self.push(elem_type.pointer_to())
            reg = self.result_reg(address)
            self.emit("add %s, %s, %s" % (base_reg, index_reg, reg))
            self.finish_result(address)
            return address, elem_type
        raise CompileError("expression is not an lvalue")

    def _load_from(self, address, elem_type):
        address_reg = self.reg_of(address, SCRATCH_B)
        self.release(address)
        self.stack.pop()
        value = self.push(elem_type)
        reg = self.result_reg(value)
        load = "ldsb" if elem_type.width == 1 else "ld"
        self.emit("%s [%s], %s" % (load, address_reg, reg))
        self.finish_result(value)
        return value

    def _gen_unary(self, expression):
        if expression.op == "*":
            pointer = self.gen_expr(expression.operand)
            if not pointer.type.is_pointer:
                raise CompileError("dereferencing non-pointer")
            return self._load_from(pointer, pointer.type.deref())
        if expression.op == "&":
            address, _ = self._gen_address(expression.operand)
            return address
        if expression.op == "!":
            # !x: compare against zero, producing 0/1.
            operand = self.gen_expr(expression.operand)
            reg = self.reg_of(operand)
            self.release(operand)
            self.stack.pop()
            value = self.push(ast.INT)
            result = self.result_reg(value)
            done = self.new_label()
            self.emit("cmp %s, 0" % reg)
            self.emit("mov 1, %s" % result)
            self.emit("be %s" % done)
            self.emit("nop")
            self.emit("mov 0, %s" % result)
            self.emit_label(done)
            self.finish_result(value)
            return value
        operand = self.gen_expr(expression.operand)
        reg = self.reg_of(operand)
        self.release(operand)
        self.stack.pop()
        value = self.push(operand.type)
        result = self.result_reg(value)
        if expression.op == "-":
            self.emit("sub %%g0, %s, %s" % (reg, result))
        elif expression.op == "~":
            self.emit("xnor %s, %%g0, %s" % (reg, result))
        else:
            raise CompileError("unknown unary %r" % expression.op)
        self.finish_result(value)
        return value

    def _gen_binary(self, expression):
        op = expression.op
        if op in _CMP_BRANCH or op in ("&&", "||"):
            # Comparison / logical as a value: materialize 0 or 1.
            value = self.push(ast.INT)
            result = self.result_reg(value)
            true_label = self.new_label()
            done = self.new_label()
            # Temporarily pop our result to keep stack discipline simple.
            self.stack.pop()
            self.gen_branch_true(expression, true_label)
            self.stack.append(value)
            self.emit("mov 0, %s" % result)
            self.emit("b %s" % done)
            self.emit("nop")
            self.emit_label(true_label)
            self.emit("mov 1, %s" % result)
            self.emit_label(done)
            self.finish_result(value)
            return value

        left = self.gen_expr(expression.left)
        right = self.gen_expr(expression.right)
        result_type = left.type if left.type.is_pointer else right.type
        if op in ("-",) and left.type.is_pointer and right.type.is_pointer:
            result_type = ast.INT
        right_reg = self.reg_of(right, SCRATCH_B)
        # Pointer arithmetic: scale the integer operand.
        if op in ("+", "-") and left.type.is_pointer and not right.type.is_pointer:
            width = left.type.deref().width
            if width != 1:
                self.emit("sll %s, %d, %s" % (right_reg, {4: 2, 2: 1}[width],
                                              SCRATCH_B))
                right_reg = SCRATCH_B
        left_reg = self.reg_of(left, SCRATCH_A)
        self.release(right)
        self.stack.pop()
        self.release(left)
        self.stack.pop()
        value = self.push(result_type)
        result = self.result_reg(value)
        if op in _BINARY_INST:
            self.emit("%s %s, %s, %s" % (_BINARY_INST[op], left_reg,
                                         right_reg, result))
        elif op == "/":
            self.emit("sdiv %s, %s, %s" % (left_reg, right_reg, result))
        elif op == "%":
            # a % b = a - (a / b) * b
            self.emit("sdiv %s, %s, %s" % (left_reg, right_reg, SCRATCH_B))
            self.emit("smul %s, %s, %s" % (SCRATCH_B, right_reg, SCRATCH_B))
            self.emit("sub %s, %s, %s" % (left_reg, SCRATCH_B, result))
        else:
            raise CompileError("unknown binary %r" % op)
        self.finish_result(value)
        return value

    def _gen_assign(self, expression):
        if expression.op != "=":
            # Desugar `a OP= b` into `a = a OP b`.  The target expression
            # is evaluated twice; minic documents that compound-assignment
            # targets must not have side effects.
            binary = ast.Binary(expression.op[:-1], expression.target,
                                expression.value)
            return self._gen_assign(ast.Assign(expression.target, binary))

        address, elem_type = self._gen_address(expression.target)
        right = self.gen_expr(expression.value)
        right_reg = self.reg_of(right, SCRATCH_A)
        address_reg = self.reg_of(address, SCRATCH_B)
        store = "stb" if elem_type.width == 1 else "st"
        self.emit("%s %s, [%s]" % (store, right_reg, address_reg))
        self.release(right)
        self.stack.pop()
        self.release(address)
        self.stack.pop()
        value = self.push(elem_type)
        self.store_result(value, right_reg)
        return value

    def _gen_incdec(self, expression):
        address, elem_type = self._gen_address(expression.target)
        address_reg = self.reg_of(address, SCRATCH_B)
        load = "ldsb" if elem_type.width == 1 else "ld"
        store = "stb" if elem_type.width == 1 else "st"
        step = elem_type.deref().width if elem_type.is_pointer else 1
        operation = "add" if expression.op == "++" else "sub"
        # Read-modify-write entirely while the address register is live;
        # only then release it and claim a slot for the result (in %g5,
        # which nothing here clobbers).
        self.emit("%s [%s], %s" % (load, address_reg, SCRATCH_A))
        if expression.prefix:
            self.emit("%s %s, %d, %s" % (operation, SCRATCH_A, step,
                                         SCRATCH_A))
            self.emit("%s %s, [%s]" % (store, SCRATCH_A, address_reg))
        else:
            self.emit("%s %s, %d, %s" % (operation, SCRATCH_A, step, "%g5"))
            self.emit("%s %s, [%s]" % (store, "%g5", address_reg))
        self.release(address)
        self.stack.pop()
        value = self.push(elem_type)
        self.store_result(value, SCRATCH_A)
        return value

    def _gen_ternary(self, expression):
        value = self.push(ast.INT)
        result = self.result_reg(value)
        self.stack.pop()
        false_label = self.new_label()
        done = self.new_label()
        self.gen_branch_false(expression.cond, false_label)
        then_value = self.gen_expr(expression.then)
        self.emit("mov %s, %s" % (self.reg_of(then_value), result))
        self.release(then_value)
        self.stack.pop()
        self.emit("b %s" % done)
        self.emit("nop")
        self.emit_label(false_label)
        other_value = self.gen_expr(expression.other)
        self.emit("mov %s, %s" % (self.reg_of(other_value), result))
        self.release(other_value)
        self.stack.pop()
        self.emit_label(done)
        self.stack.append(value)
        self.finish_result(value)
        return value

    def _gen_call(self, expression):
        if len(expression.args) > len(ARG_REGS):
            raise CompileError("more than 6 call arguments")
        values = [self.gen_expr(argument) for argument in expression.args]
        for index, value in enumerate(values):
            reg = self.reg_of(value, SCRATCH_B)
            self.emit("mov %s, %s" % (reg, ARG_REGS[index]))
        for value in reversed(values):
            self.release(value)
            self.stack.pop()
        self.emit("call %s" % expression.name)
        self.emit("nop")
        result = self.push(ast.INT)
        self.store_result(result, "%o0")
        return result
