"""Recursive-descent parser for minic."""

from repro.minic import ast
from repro.minic.lexer import tokenize

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

# Binary operators by precedence, loosest first.
_BINARY_LEVELS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class ParseError(Exception):
    pass


class Parser:
    def __init__(self, source):
        self.tokens = tokenize(source)
        self.position = 0

    # -- token helpers -----------------------------------------------------
    @property
    def current(self):
        return self.tokens[self.position]

    def advance(self):
        token = self.current
        self.position += 1
        return token

    def check(self, text):
        token = self.current
        return (token.kind in ("op", "kw")) and token.text == text

    def accept(self, text):
        if self.check(text):
            return self.advance()
        return None

    def expect(self, text):
        if not self.check(text):
            raise ParseError(
                "line %d: expected %r, found %r"
                % (self.current.line, text, self.current.text)
            )
        return self.advance()

    def expect_identifier(self):
        token = self.current
        if token.kind != "id":
            raise ParseError(
                "line %d: expected identifier, found %r" % (token.line, token.text)
            )
        return self.advance().text

    # -- top level -----------------------------------------------------------
    def parse_program(self):
        program = ast.Program()
        while self.current.kind != "eof":
            self._parse_top_level(program)
        return program

    def _parse_type(self):
        static = bool(self.accept("static"))
        token = self.current
        if token.kind != "kw" or token.text not in ("int", "char", "void"):
            raise ParseError("line %d: expected type, found %r"
                             % (token.line, token.text))
        self.advance()
        ptr = 0
        while self.accept("*"):
            ptr += 1
        return ast.Type(token.text, ptr), static

    def _parse_top_level(self, program):
        base_type, static = self._parse_type()
        name = self.expect_identifier()
        if self.check("("):
            function = self._parse_function(base_type, name, static)
            if function is not None:
                program.functions.append(function)
            return
        # Global variable(s).
        while True:
            program.globals.append(self._parse_global(base_type, name, static))
            if self.accept(","):
                name = self.expect_identifier()
                continue
            self.expect(";")
            return

    def _parse_global(self, base_type, name, static):
        array = 0
        is_array = False
        init = None
        if self.accept("["):
            is_array = True
            if not self.check("]"):
                array = self._parse_const_value()
            self.expect("]")
        if self.accept("="):
            if self.current.kind == "str":
                init = self.advance().value
                if array == 0:
                    array = len(init) + 1
            elif self.accept("{"):
                init = []
                while not self.check("}"):
                    init.append(self._parse_const_value())
                    if not self.accept(","):
                        break
                self.expect("}")
                if array == 0:
                    array = len(init)
            else:
                init = self._parse_const_value()
        if is_array and array == 0:
            raise ParseError("global array %r needs a size or initializer"
                             % name)
        return ast.GlobalDecl(name, base_type, array=array, init=init, static=static)

    def _parse_const_value(self):
        negative = bool(self.accept("-"))
        token = self.current
        if token.kind != "num":
            raise ParseError("line %d: expected constant" % token.line)
        self.advance()
        return -token.value if negative else token.value

    def _parse_function(self, return_type, name, static):
        self.expect("(")
        params = []
        if not self.check(")"):
            if self.check("void") and self.tokens[self.position + 1].text == ")":
                self.advance()
            else:
                while True:
                    param_type, _ = self._parse_type()
                    param_name = self.expect_identifier()
                    params.append(ast.Param(param_name, param_type))
                    if not self.accept(","):
                        break
        self.expect(")")
        if self.accept(";"):
            return None  # forward declaration
        body = self._parse_block()
        return ast.Function(name, return_type, params, body, static=static)

    # -- statements ----------------------------------------------------------
    def _parse_block(self):
        self.expect("{")
        statements = []
        while not self.check("}"):
            statements.append(self._parse_statement())
        self.expect("}")
        return ast.Block(statements)

    def _is_type_start(self):
        token = self.current
        return token.kind == "kw" and token.text in ("int", "char", "static")

    def _parse_statement(self):
        if self.check("{"):
            return self._parse_block()
        if self._is_type_start():
            return self._parse_local_decl()
        if self.accept(";"):
            return ast.Block([])
        if self.accept("if"):
            self.expect("(")
            cond = self._parse_expression()
            self.expect(")")
            then = self._parse_statement()
            other = self._parse_statement() if self.accept("else") else None
            return ast.If(cond, then, other)
        if self.accept("while"):
            self.expect("(")
            cond = self._parse_expression()
            self.expect(")")
            return ast.While(cond, self._parse_statement())
        if self.accept("do"):
            body = self._parse_statement()
            self.expect("while")
            self.expect("(")
            cond = self._parse_expression()
            self.expect(")")
            self.expect(";")
            return ast.DoWhile(body, cond)
        if self.accept("for"):
            return self._parse_for()
        if self.accept("switch"):
            return self._parse_switch()
        if self.accept("break"):
            self.expect(";")
            return ast.Break()
        if self.accept("continue"):
            self.expect(";")
            return ast.Continue()
        if self.accept("return"):
            value = None if self.check(";") else self._parse_expression()
            self.expect(";")
            return ast.Return(value)
        expr = self._parse_expression()
        self.expect(";")
        return ast.ExprStmt(expr)

    def _parse_local_decl(self):
        base_type, _ = self._parse_type()
        declarations = []
        while True:
            name = self.expect_identifier()
            array = 0
            if self.accept("["):
                array = self._parse_const_value()
                self.expect("]")
            init = None
            if self.accept("="):
                init = self._parse_expression()
            declarations.append(ast.LocalDecl(name, base_type, array=array,
                                              init=init))
            if not self.accept(","):
                break
        self.expect(";")
        if len(declarations) == 1:
            return declarations[0]
        return ast.Block(declarations)

    def _parse_for(self):
        self.expect("(")
        init = None
        if not self.check(";"):
            if self._is_type_start():
                init = self._parse_local_decl()
            else:
                init = ast.ExprStmt(self._parse_expression())
                self.expect(";")
        else:
            self.expect(";")
        cond = None if self.check(";") else self._parse_expression()
        self.expect(";")
        step = None if self.check(")") else self._parse_expression()
        self.expect(")")
        return ast.For(init, cond, step, self._parse_statement())

    def _parse_switch(self):
        self.expect("(")
        value = self._parse_expression()
        self.expect(")")
        self.expect("{")
        cases = []
        default = None
        current = None
        while not self.check("}"):
            if self.accept("case"):
                case_value = self._parse_const_value()
                self.expect(":")
                current = []
                cases.append((case_value, current))
            elif self.accept("default"):
                self.expect(":")
                current = []
                default = current
            else:
                if current is None:
                    raise ParseError("line %d: statement before first case"
                                     % self.current.line)
                current.append(self._parse_statement())
        self.expect("}")
        return ast.Switch(value, cases, default)

    # -- expressions -----------------------------------------------------------
    def _parse_expression(self):
        return self._parse_assignment()

    def _parse_assignment(self):
        left = self._parse_ternary()
        token = self.current
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self.advance()
            value = self._parse_assignment()
            return ast.Assign(left, value, op=token.text)
        return left

    def _parse_ternary(self):
        cond = self._parse_binary(0)
        if self.accept("?"):
            then = self._parse_expression()
            self.expect(":")
            other = self._parse_ternary()
            return ast.Ternary(cond, then, other)
        return cond

    def _parse_binary(self, level):
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self.current.kind == "op" and self.current.text in ops:
            op = self.advance().text
            right = self._parse_binary(level + 1)
            left = ast.Binary(op, left, right)
        return left

    def _parse_unary(self):
        token = self.current
        if token.kind == "op" and token.text in ("-", "!", "~", "*", "&"):
            self.advance()
            return ast.Unary(token.text, self._parse_unary())
        if token.kind == "op" and token.text in ("++", "--"):
            self.advance()
            return ast.IncDec(self._parse_unary(), token.text, prefix=True)
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            if self.accept("["):
                index = self._parse_expression()
                self.expect("]")
                expr = ast.Index(expr, index)
            elif self.check("++") or self.check("--"):
                op = self.advance().text
                expr = ast.IncDec(expr, op, prefix=False)
            else:
                return expr

    def _parse_primary(self):
        token = self.current
        if token.kind == "num":
            self.advance()
            return ast.NumLit(token.value)
        if token.kind == "str":
            self.advance()
            return ast.StrLit(token.value)
        if self.accept("("):
            if self.current.kind == "kw" and self.current.text in ("int", "char", "void"):
                cast_type, _ = self._parse_type()
                self.expect(")")
                return ast.Cast(cast_type, self._parse_unary())
            expr = self._parse_expression()
            self.expect(")")
            return expr
        if token.kind == "id":
            name = self.advance().text
            if self.accept("("):
                args = []
                if not self.check(")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                return ast.Call(name, args)
            return ast.VarRef(name)
        raise ParseError("line %d: unexpected token %r" % (token.line, token.text))


def parse(source):
    """Parse minic *source* into a :class:`~repro.minic.ast.Program`."""
    return Parser(source).parse_program()
