"""minic compiler driver: source text to assembly or a linked executable."""

from dataclasses import dataclass, replace

from repro.asm import assemble
from repro.binfmt import link
from repro.minic import runtime
from repro.minic.codegen_sparc import CompileError, ModuleCodegen
from repro.minic.parser import parse
from repro.minic.schedule import ScheduleStats, schedule_delay_slots

__all__ = [
    "CompileError",
    "CompilerOptions",
    "GCC_LIKE",
    "SUNPRO_LIKE",
    "compile_to_assembly",
    "compile_to_image",
]


@dataclass(frozen=True)
class CompilerOptions:
    """Code-generation idioms, mirroring the compilers the paper measured."""

    dispatch_tables: bool = True  # dense switch -> indirect jump via table
    tables_in_text: bool = False  # dispatch tables placed in .text
    tail_calls: bool = False  # return f(x) -> pop frame and jump
    fill_delay_slots: bool = True  # call delay-slot filling
    annul_branches: bool = True  # branch delay fill with annul bit
    hide_statics: bool = False  # omit symbols for static functions
    strip: bool = False  # strip the executable entirely
    emit_meta: bool = False  # emit the .eel.meta trusted-structure section

    def named(self, **changes):
        return replace(self, **changes)


# The two compiler personalities from the paper's section 3.3 measurement.
GCC_LIKE = CompilerOptions()
SUNPRO_LIKE = CompilerOptions(tail_calls=True, tables_in_text=True)


def compile_to_assembly(source, options=GCC_LIKE, stats=None):
    """Compile minic *source* to SPARC assembly text."""
    program = parse(source)
    module = ModuleCodegen(program, options)
    text = module.generate()
    if options.fill_delay_slots or options.annul_branches:
        lines = schedule_delay_slots(
            text.splitlines(),
            fill_calls=options.fill_delay_slots,
            annul_branches=options.annul_branches,
            stats=stats if stats is not None else ScheduleStats(),
        )
        text = "\n".join(lines) + "\n"
    return text, module.static_functions


def compile_to_image(sources, options=GCC_LIKE, with_libc=True):
    """Compile and link minic *sources* (a str or list) into an executable.

    The runtime (crt0 + I/O routines) and, unless disabled, the minic
    string library are linked in, so every binary contains library code.
    """
    if isinstance(sources, str):
        sources = [sources]
    hidden = []
    objects = [assemble(runtime.SPARC_CRT0, "sparc")]
    all_sources = list(sources)
    if with_libc:
        all_sources.append(runtime.LIBC_MINIC)
    for source in all_sources:
        text, statics = compile_to_assembly(source, options)
        objects.append(assemble(text, "sparc"))
        hidden.extend(statics)
    image = link(objects)
    if options.strip:
        image.strip()
    elif options.hide_statics and hidden:
        image.hide_symbols(hidden)
    if options.emit_meta:
        _attach_metadata(image)
    return image


def _attach_metadata(image):
    """Emit the ``.eel.meta`` trusted-structure section (repro.meta/1).

    The compiler is the producer that already knows the program's
    structure; rather than thread that knowledge through codegen, run
    the real analysis pipeline once at build time and emit exactly what
    it found — which guarantees the consumer's verify-and-trust checks
    accept the table as long as the text bytes are unchanged.  Runs
    after strip/hide so the claimed routine set matches what discovery
    would find on the shipped image.
    """
    from repro.binfmt.meta import attach_meta
    from repro.core.executable import Executable
    from repro.core.trust import meta_from_executable

    executable = Executable(image).read_contents(trust_meta=False)
    attach_meta(image, meta_from_executable(executable))
