"""minic: a small C-like compiler targeting the SPARC subset.

The workload generator for the reproduction: it stands in for the gcc and
SunPro compilers that produced the paper's SPEC92 binaries.  Compiler
options control exactly the idioms the paper's measurements depend on:

* ``dispatch_tables`` — lower dense switches through an indirect jump and
  an address table (the case-statement idiom EEL's slicer analyzes);
* ``tail_calls`` — optimize ``return f(...)`` by popping the frame and
  jumping (the SunPro idiom behind the paper's 138 unanalyzable jumps);
* ``annul_branches``/``fill_delay_slots`` — delay-slot scheduling that
  produces annulled branches (paper Figure 3);
* ``tables_in_text`` — place dispatch tables in .text, exercising EEL's
  data-in-text detection;
* ``hide_statics`` — omit symbols for static functions, exercising EEL's
  hidden-routine discovery.
"""

from repro.minic.driver import (
    CompileError,
    CompilerOptions,
    GCC_LIKE,
    SUNPRO_LIKE,
    compile_to_assembly,
    compile_to_image,
)

__all__ = [
    "CompileError",
    "CompilerOptions",
    "GCC_LIKE",
    "SUNPRO_LIKE",
    "compile_to_assembly",
    "compile_to_image",
]
