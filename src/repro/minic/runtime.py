"""Runtime library (crt0 + I/O routines) for minic programs.

These play the role of libc: real routines linked into every program, so
executables contain library code the way the paper's SPEC92 binaries did.
The I/O routines are leaf routines built on the ``ta 0`` software trap.
"""

SPARC_CRT0 = """
    .text
    .global _start
_start:
    call main
    nop
    mov 1, %g1          ! exit(main())
    ta 0

    .global exit
exit:
    mov 1, %g1
    ta 0

    .global print_int
print_int:
    mov 2, %g1
    retl
    ta 0

    .global print_char
print_char:
    mov 3, %g1
    retl
    ta 0

    .global print_str
print_str:
    mov 4, %g1
    retl
    ta 0

    .global read_int
read_int:
    mov 5, %g1
    retl
    ta 0

    .global sbrk
sbrk:
    mov 6, %g1
    retl
    ta 0

    .global read_char
read_char:
    mov 7, %g1
    retl
    ta 0

    .global cycles
cycles:
    mov 8, %g1
    retl
    ta 0
"""

# A small string/utility library written in minic itself: gives every
# workload binary shared library routines (strlen, memset, abs_int, ...).
LIBC_MINIC = """
int strlen(char *s) {
    int n;
    n = 0;
    while (s[n] != 0) {
        n = n + 1;
    }
    return n;
}

int strcmp(char *a, char *b) {
    int i;
    i = 0;
    while (a[i] != 0 && a[i] == b[i]) {
        i = i + 1;
    }
    return a[i] - b[i];
}

int memset_words(int *p, int value, int count) {
    int i;
    for (i = 0; i < count; i = i + 1) {
        p[i] = value;
    }
    return count;
}

int abs_int(int x) {
    if (x < 0) {
        return -x;
    }
    return x;
}

int min_int(int a, int b) {
    return a < b ? a : b;
}

int max_int(int a, int b) {
    return a > b ? a : b;
}

int print_nl(void) {
    print_char('\\n');
    return 0;
}
"""

MIPS_CRT0 = """
    .text
    .global _start
_start:
    jal main
    nop
    move $a0, $v0      # exit(main())
    li $v0, 1
    syscall

    .global exit
exit:
    li $v0, 1
    syscall

    .global print_int
print_int:
    li $v0, 2
    syscall
    jr $ra
    nop

    .global print_char
print_char:
    li $v0, 3
    syscall
    jr $ra
    nop

    .global print_str
print_str:
    li $v0, 4
    syscall
    jr $ra
    nop

    .global read_int
read_int:
    li $v0, 5
    syscall
    move $v0, $v0
    jr $ra
    nop

    .global cycles
cycles:
    li $v0, 8
    syscall
    jr $ra
    nop
"""
