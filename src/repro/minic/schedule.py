"""Delay-slot scheduling peephole for generated SPARC assembly.

Two transformations, both classic SPARC compiler idioms:

* **call fill** — the instruction before a ``call``/``jmp`` moves into its
  delay slot (it executes before control reaches the callee);
* **annulled-branch fill** — a conditional branch whose delay slot is a
  ``nop`` copies the first instruction of its target into the slot with
  the annul bit set, retargeting the branch past the copied instruction.
  This produces exactly the annulled-delay-slot shapes of paper Figure 3.

Operates on assembly text lines (labels end with ':', instructions start
with a tab).
"""

# One-word instructions safe to copy into a delay slot.
_MOVABLE = {
    "add", "sub", "and", "or", "xor", "andn", "orn", "xnor",
    "sll", "srl", "sra", "smul", "mov", "clr", "inc", "dec",
    "ld", "ldsb", "ldub", "lduh", "ldsh", "st", "stb", "sth",
    "sethi", "cmp", "tst", "neg",
}

_UNCONDITIONAL = {"b", "ba"}
_CONDITIONAL = {
    "bne", "be", "bg", "bge", "bl", "ble", "bgu", "bleu",
    "bcc", "bcs", "bpos", "bneg", "bvc", "bvs",
}


def _is_label(line):
    return not line.startswith("\t") and line.rstrip().endswith(":")


def _label_name(line):
    return line.rstrip()[:-1]


def _mnemonic(line):
    return line.strip().split(None, 1)[0] if line.strip() else ""


def _writes_o7(line):
    return line.rstrip().endswith("%o7")


class ScheduleStats:
    def __init__(self):
        self.call_slots_filled = 0
        self.branch_slots_annulled = 0
        self.jump_slots_filled = 0


def schedule_delay_slots(lines, fill_calls=True, annul_branches=True,
                         stats=None):
    """Return a rescheduled copy of assembly *lines*."""
    if stats is None:
        stats = ScheduleStats()
    lines = list(lines)
    if fill_calls:
        lines = _fill_call_slots(lines, stats)
    if annul_branches:
        lines = _fill_branch_slots(lines, stats)
    return lines


def _fill_call_slots(lines, stats):
    """[X, call f, nop] -> [call f, X] when X is movable."""
    out = []
    index = 0
    while index < len(lines):
        line = lines[index]
        if (
            index + 2 < len(lines)
            and not _is_label(line)
            and _mnemonic(line) in _MOVABLE
            and not _writes_o7(line)
            and _mnemonic(lines[index + 1]) == "call"
            and _mnemonic(lines[index + 2]) == "nop"
        ):
            out.append(lines[index + 1])
            out.append(line)
            stats.call_slots_filled += 1
            index += 3
            continue
        out.append(line)
        index += 1
    return out


def _first_instruction_after(lines, label_index):
    """Index of the first instruction line at/after a label line."""
    index = label_index + 1
    while index < len(lines) and _is_label(lines[index]):
        index += 1
    if index < len(lines) and lines[index].startswith("\t"):
        return index
    return None


def _fill_branch_slots(lines, stats):
    label_index = {}
    for index, line in enumerate(lines):
        if _is_label(line):
            label_index[_label_name(line)] = index

    # Sites to rewrite: (branch line index, target label, conditional?).
    sites = []
    for index in range(len(lines) - 1):
        mnemonic = _mnemonic(lines[index])
        base = mnemonic[:-2] if mnemonic.endswith(",a") else mnemonic
        if mnemonic.endswith(",a"):
            continue  # already annulled
        if base not in _UNCONDITIONAL and base not in _CONDITIONAL:
            continue
        if _mnemonic(lines[index + 1]) != "nop":
            continue
        target = lines[index].split()[-1]
        target_at = label_index.get(target)
        if target_at is None:
            continue
        inst_at = _first_instruction_after(lines, target_at)
        if inst_at is None:
            continue
        inst = lines[inst_at]
        if _mnemonic(inst) not in _MOVABLE:
            continue
        sites.append((index, target, inst_at, base in _CONDITIONAL))

    if not sites:
        return lines

    # Each rewritten target needs a label just past its first instruction.
    # Adjacent labels can share a first instruction, so key by instruction
    # index, not by target name.
    insertions = {}  # inst line index -> label name
    past_label_at = {}
    counter = 0
    for _, target, inst_at, _ in sites:
        if inst_at not in past_label_at:
            counter += 1
            name = target + ".ds%d" % counter
            past_label_at[inst_at] = name
            insertions[inst_at] = name
    past_labels = {target: past_label_at[inst_at]
                   for _, target, inst_at, _ in sites}

    rewrite = {index: (target, inst_at, conditional)
               for index, target, inst_at, conditional in sites}
    out = []
    index = 0
    while index < len(lines):
        if index in rewrite:
            target, inst_at, conditional = rewrite[index]
            mnemonic = _mnemonic(lines[index])
            new_target = past_labels[target]
            if conditional:
                out.append("\t%s,a %s" % (mnemonic, new_target))
                stats.branch_slots_annulled += 1
            else:
                out.append("\t%s %s" % (mnemonic, new_target))
                stats.jump_slots_filled += 1
            out.append(lines[inst_at])  # the copied delay instruction
            index += 2  # skip the original nop
            continue
        out.append(lines[index])
        if index in insertions:
            out.append(insertions[index] + ":")
        index += 1
    return out
