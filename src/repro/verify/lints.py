"""Structural lints: machine-independent invariants of a rewritten image.

Each lint re-checks one promise the editing pipeline makes (paper
sections in parentheses; see DESIGN.md section 5e for the mapping):

* every emitted word still decodes, and re-encodes to the same bits;
* delay slots are refolded or hoisted *and materialized* — a delayed
  CTI is never followed by garbage or another CTI (section 3.3);
* every CFG edge of the original program lands on an instruction
  boundary inside executable text of the edited image;
* rewritten dispatch-table entries point into edited text, never at
  stale original addresses (section 3.3);
* snippet spill wrappers are balanced — every register the allocator
  spilled is restored in the epilogue (section 3.5).

The lints deliberately work from a *fresh* analysis of the original
image plus the raw bytes of the edited one: they must not trust the
producer's bookkeeping, only the artifacts.
"""

from repro.isa.base import Category
from repro.obs import metrics as _metrics
from repro.verify.context import Finding

_C_LINTS = _metrics.counter("verify.lints_run")
_C_FINDINGS = _metrics.counter("verify.findings")


def run_lints(context):
    """Run every lint over *context*; returns the list of Findings."""
    findings = []
    for lint in LINTS:
        findings.extend(lint(context))
        _C_LINTS.inc()
    _C_FINDINGS.inc(len(findings))
    return findings


def _provenance(context, addr):
    """(routine, block) provenance for an edited-image address."""
    placed = context.placement.covering(addr)
    if placed is None:
        return None, None
    return placed.routine, placed.block


# ----------------------------------------------------------------------
def lint_word_encoding(context):
    """encode(decode(x)) round-trips on every word of ``.text.edited``."""
    findings = []
    section = context.new_text()
    if section is None:
        return findings
    codec = context.codec
    addr = section.vaddr
    for word in section.words():
        inst = codec.decode(word)
        routine, block = _provenance(context, addr)
        if not inst.is_valid:
            findings.append(Finding(
                "invalid-word",
                "emitted word 0x%08x does not decode" % word,
                routine=routine, block=block, addr=addr))
        else:
            try:
                encoded = codec.encode(inst.name, **inst.f)
            except Exception as error:
                encoded = None
                reason = str(error)
            if encoded != word:
                findings.append(Finding(
                    "encode-roundtrip",
                    "0x%08x (%s) re-encodes to %s" % (
                        word, inst.name,
                        "0x%08x" % encoded if encoded is not None
                        else "error: %s" % reason),
                    routine=routine, block=block, addr=addr))
        addr += 4
    return findings


def lint_delay_slots(context):
    """Every delayed CTI in edited text is followed by a materialized,
    non-control delay instruction (refolded or hoisted, section 3.3)."""
    findings = []
    section = context.new_text()
    if section is None:
        return findings
    codec = context.codec
    words = list(section.words())
    for index, word in enumerate(words):
        inst = codec.decode(word)
        if not inst.is_valid or not inst.is_delayed:
            continue
        if inst.annul_untaken and inst.cond == "a":
            continue  # ba,a executes no delay slot at all
        addr = section.vaddr + 4 * index
        routine, block = _provenance(context, addr)
        if index + 1 >= len(words):
            findings.append(Finding(
                "missing-delay-slot",
                "%s at end of section has no delay word" % inst.name,
                routine=routine, block=block, addr=addr))
            continue
        slot = codec.decode(words[index + 1])
        if not slot.is_valid:
            findings.append(Finding(
                "missing-delay-slot",
                "delay slot of %s holds invalid word 0x%08x"
                % (inst.name, words[index + 1]),
                routine=routine, block=block, addr=addr + 4))
        elif slot.category.is_control and slot.category is not Category.SYSTEM:
            # A trap in a delay slot is legitimate (the runtime's
            # syscall stubs do ``retl; ta``); a branch or jump is not.
            findings.append(Finding(
                "cti-in-delay-slot",
                "delay slot of %s holds control transfer %s"
                % (inst.name, slot.name),
                routine=routine, block=block, addr=addr + 4))
    return findings


def _exec_section_at(image, addr):
    section = image.section_at(addr)
    if section is not None and section.is_exec:
        return section
    return None


def lint_edge_boundaries(context):
    """Every CFG block start maps to an instruction boundary inside
    executable text of the edited image."""
    findings = []
    image = context.edited_image
    codec = context.codec
    for routine, cfg in context.cfgs():
        for block in cfg.normal_blocks():
            mapped = context.edited_addr(block.start)
            if mapped % 4:
                findings.append(Finding(
                    "misaligned-edge-target",
                    "block 0x%x maps to unaligned 0x%x"
                    % (block.start, mapped),
                    routine=routine.name, block=block.start, addr=mapped))
                continue
            section = _exec_section_at(image, mapped)
            if section is None:
                findings.append(Finding(
                    "edge-outside-text",
                    "block 0x%x maps to 0x%x outside executable text"
                    % (block.start, mapped),
                    routine=routine.name, block=block.start, addr=mapped))
                continue
            if not codec.decode(section.word_at(mapped)).is_valid:
                findings.append(Finding(
                    "edge-lands-on-data",
                    "block 0x%x maps to 0x%x which does not decode"
                    % (block.start, mapped),
                    routine=routine.name, block=block.start, addr=mapped))
    return findings


def lint_dispatch_tables(context):
    """Rewritten dispatch-table entries point at valid instruction
    boundaries in edited text (never at stale original targets)."""
    findings = []
    image = context.edited_image
    codec = context.codec
    edited_names = set(context.edited_routine_names())
    for routine, cfg in context.cfgs():
        for info in cfg.indirect_jumps:
            if info.status != "table":
                continue
            for index, target in enumerate(info.targets):
                entry_addr = info.table_addr + 4 * index
                table_section = image.section_at(entry_addr)
                if table_section is None:
                    findings.append(Finding(
                        "dispatch-table-unmapped",
                        "table entry at 0x%x is unmapped" % entry_addr,
                        routine=routine.name, block=info.block.start,
                        addr=entry_addr))
                    continue
                value = table_section.word_at(entry_addr)
                if value % 4 or _exec_section_at(image, value) is None:
                    findings.append(Finding(
                        "dispatch-entry-invalid",
                        "table entry %d at 0x%x holds 0x%x, not an "
                        "instruction boundary in text"
                        % (index, entry_addr, value),
                        routine=routine.name, block=info.block.start,
                        addr=entry_addr))
                    continue
                if routine.name not in edited_names:
                    continue
                expected = context.edited_addr(target)
                if value != expected and not context.in_new_text(value):
                    findings.append(Finding(
                        "stale-dispatch-entry",
                        "table entry %d at 0x%x still points at 0x%x "
                        "(expected 0x%x in edited text)"
                        % (index, entry_addr, value, expected),
                        routine=routine.name, block=info.block.start,
                        addr=entry_addr))
    return findings


def _find_sequence(words, sequence, start=0):
    """Index of *sequence* as a contiguous run in *words*, or -1."""
    if not sequence:
        return -1
    limit = len(words) - len(sequence)
    for index in range(start, limit + 1):
        if words[index : index + len(sequence)] == sequence:
            return index
    return -1


def spill_findings(allocated, conventions, routine=None, block=None,
                   addr=None):
    """Findings for an unbalanced spill wrapper on one allocated snippet.

    Every register the allocator spilled in the prologue must be
    restored by a matching unspill later in the snippet (section 3.5).
    Exposed separately so the fault injector can check a synthetic
    snippet without an image.
    """
    findings = []
    words = list(allocated.words)
    for reg, slot in allocated.spilled:
        spill = list(conventions.spill(reg, slot))
        unspill = list(conventions.unspill(reg, slot))
        spill_at = _find_sequence(words, spill)
        if spill_at < 0:
            findings.append(Finding(
                "missing-spill",
                "snippet spills register %d (slot %d) but the spill "
                "sequence is absent" % (reg, slot),
                routine=routine, block=block, addr=addr))
            continue
        if _find_sequence(words, unspill, spill_at + len(spill)) < 0:
            findings.append(Finding(
                "unbalanced-spill",
                "register %d spilled to slot %d is never restored"
                % (reg, slot),
                routine=routine, block=block, addr=addr))
    return findings


def lint_spill_balance(context):
    """Spill wrappers of every placed snippet are balanced."""
    findings = []
    conventions = context.conventions
    for placed in context.placement.snippets():
        allocated = placed.item.snippet
        if allocated is None or not getattr(allocated, "spilled", None):
            continue
        findings.extend(spill_findings(
            allocated, conventions, routine=placed.routine,
            block=placed.block, addr=placed.start))
    return findings


LINTS = (
    lint_word_encoding,
    lint_delay_slots,
    lint_edge_boundaries,
    lint_dispatch_tables,
    lint_spill_balance,
)
