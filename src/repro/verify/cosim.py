"""Co-simulation oracle: original vs. edited image in lockstep.

Both images run in the existing simulator, advancing from control-
transfer point to control-transfer point (basic-block entries of the
original program, their mapped addresses in the edited one).  At each
synchronization the oracle compares:

* the stop pair itself — the edited side must be at the address the
  finalizer mapped the original block to;
* the registers *live* at that block entry (dead registers legally
  differ: snippets scavenge them, so comparing everything would flag
  every instrumented binary);
* the observable syscall trace so far (exit/putint/putchar/putstr/
  getint/getchar/sbrk — SYS_CYCLES is answered with a per-side call
  index so instruction-count drift stays invisible);

and at program exit also the exit codes, accumulated output, and final
memory over the original image's writable sections plus the heap.

Instrumentation snippets are transparent by construction: they live
*between* sync points, never contain one, and only the live-register
filter ever looks at state they may have scavenged.  A register that
holds a code address is compared modulo the finalizer's address map —
return addresses legitimately point at edited call sites.

On divergence the oracle emits a minimized :class:`Divergence` — first
divergent PC pair, register/memory delta, and the edit placement
covering that address — instead of a bare assert.
"""

from repro.binfmt.image import SEC_WRITE
from repro.core import cfg as cfg_mod
from repro.obs import metrics as _metrics
from repro.sim import syscalls as sc
from repro.sim.machine import SimulationError, SimulationTimeout, Simulator
from repro.sim.memory import MemoryFault

M32 = 0xFFFFFFFF

# How much memory past the heap base the exit comparison will diff.
_HEAP_DIFF_CAP = 4 * 1024 * 1024

_C_SYNCS = _metrics.counter("verify.cosim_syncs")
_C_DIVERGENCES = _metrics.counter("verify.cosim_divergences")


class Divergence:
    """A minimized report of the first behavioral difference."""

    def __init__(self, kind, message, orig_pc=None, edited_pc=None,
                 registers=(), edits=(), syscalls=None):
        self.kind = kind
        self.message = message
        self.orig_pc = orig_pc  # pc in the original image
        self.edited_pc = edited_pc  # pc in the edited image
        self.registers = list(registers)  # (name, original, edited)
        self.edits = list(edits)  # human-readable covering edits
        self.syscalls = syscalls  # (original entry, edited entry) or None

    def render(self):
        lines = ["divergence (%s): %s" % (self.kind, self.message)]
        if self.orig_pc is not None or self.edited_pc is not None:
            lines.append("  first divergent pc pair: original=%s edited=%s"
                         % tuple("0x%x" % pc if pc is not None else "?"
                                 for pc in (self.orig_pc, self.edited_pc)))
        for name, vo, ve in self.registers:
            lines.append("  %s: original=%s edited=%s"
                         % (name, _fmt(vo), _fmt(ve)))
        if self.syscalls is not None:
            lines.append("  syscall trace: original=%r edited=%r"
                         % self.syscalls)
        for edit in self.edits:
            lines.append("  edit: %s" % edit)
        return "\n".join(lines)

    def __str__(self):
        return self.render()


def _fmt(value):
    return "0x%x" % value if isinstance(value, int) else repr(value)


class CosimReport:
    """Outcome of one lockstep run."""

    def __init__(self, divergence, syncs, orig_instructions,
                 edited_instructions):
        self.divergence = divergence
        self.syncs = syncs
        self.orig_instructions = orig_instructions
        self.edited_instructions = edited_instructions

    @property
    def ok(self):
        return self.divergence is None

    @property
    def overhead(self):
        """Edited/original instruction-count ratio."""
        if not self.orig_instructions:
            return 0.0
        return self.edited_instructions / self.orig_instructions


class _Side:
    def __init__(self, name, simulator, stops):
        self.name = name
        self.sim = simulator
        self.stops = stops
        self.log = []  # observable syscall entries
        self.exit_code = None


def _wrap_syscalls(simulator, log):
    """Record observable syscalls into *log*; answer SYS_CYCLES with a
    per-side call index so instruction-count drift stays invisible."""
    handler = simulator.syscalls
    inner = handler.dispatch  # bound class method, before shadowing
    memory = simulator.memory
    calls = [0]

    def dispatch(number, args):
        if number == sc.SYS_CYCLES:
            calls[0] += 1
            return calls[0]
        entry = None
        if number == sc.SYS_EXIT:
            entry = ("exit", args[0] & M32)
        elif number == sc.SYS_PUTINT:
            entry = ("putint", args[0] & M32)
        elif number == sc.SYS_PUTCHAR:
            entry = ("putchar", args[0] & 0xFF)
        elif number == sc.SYS_PUTSTR:
            entry = ("putstr", memory.read_cstring(args[0]))
        elif number == sc.SYS_GETINT:
            entry = ("getint",)
        elif number == sc.SYS_GETCHAR:
            entry = ("getchar",)
        elif number == sc.SYS_SBRK:
            entry = ("sbrk", args[0] & M32)
        if entry is not None:
            log.append(entry)
        return inner(number, args)

    handler.dispatch = dispatch


class CosimOracle:
    """Lockstep differential execution of one verify context."""

    def __init__(self, context, stdin_text="", configure_original=None,
                 configure_edited=None, sync_budget=5_000_000,
                 max_syncs=10_000_000):
        self.context = context
        self.stdin_text = stdin_text
        self.configure_original = configure_original
        self.configure_edited = configure_edited
        self.sync_budget = sync_budget
        self.max_syncs = max_syncs
        self._build_sync_points()

    # ------------------------------------------------------------------
    def _build_sync_points(self):
        """Block entries of the original program, minus delay-slot
        addresses (duplicated delay words map ambiguously) — and their
        images under the finalizer's address map."""
        context = self.context
        conventions = context.conventions
        # Registers meaningful across a call boundary.  Liveness at a
        # routine entry is interprocedurally conservative (a contained
        # call or jmpl makes *everything* live), while the producer
        # scavenges with the caller's intraprocedural liveness — so at
        # entry blocks only the convention's call inputs can be
        # compared without false positives.
        boundary = frozenset(conventions.arg_regs) | frozenset(
            (conventions.sp_reg, conventions.retaddr_reg))
        starts = {}
        delay_addrs = set()
        for routine, cfg in context.cfgs():
            liveness = cfg.live_registers()
            for block in cfg.blocks:
                if block.kind == cfg_mod.BK_DELAY:
                    delay_addrs.add(block.start)
                # A delay-slot word is duplicated across the layout's
                # taken/fall paths, so its address maps ambiguously —
                # even when it doubles as a jump target (a block start
                # in its own right).  Never synchronize on one.
                for addr, instruction in block.instructions:
                    if instruction.is_delayed:
                        delay_addrs.add(addr + 4)
            for block in cfg.normal_blocks():
                # The raw dataflow solution, NOT live_before(): that
                # query adds every SPARC window register throughout
                # pre-`save` (e.g. leaf) routines so snippets in the
                # callee cannot clobber caller state.  Scavenging needs
                # that; comparison must not — the caller's dead window
                # registers are legitimately rewritten by the *caller's
                # own* snippets, and comparing them here would flag
                # clean edits.  What the callee itself may read is
                # exactly live_in.
                live = frozenset(liveness.live_in[block.id])
                if block.start == routine.start:
                    live &= boundary
                starts[block.start] = live
        for addr in delay_addrs:
            starts.pop(addr, None)
        self.live_at = starts
        self.edited_of = {addr: context.edited_addr(addr) for addr in starts}
        self.orig_stops = frozenset(starts)
        # The edited image retains the original text: an unanalyzable
        # indirect jump legitimately lands there and execution continues
        # at original addresses until the next entry trampoline bounces
        # it back (paper section 3.3).  So the edited side may sync at
        # either the mapped address or the original one — but only where
        # the original word is untouched (a patched word is a trampoline
        # and the mapped copy is the canonical stop).
        edited_stops = set(self.edited_of.values())
        for addr in starts:
            if self._retained(addr):
                edited_stops.add(addr)
        self.edited_stops = frozenset(edited_stops)

    def _retained(self, addr):
        """True when the edited image still holds the original word at
        *addr* (i.e. the location was not patched with a trampoline)."""
        section = self.context.edited_image.section_at(addr)
        if section is None or not section.is_exec:
            return False
        original = self.context.original_image.section_at(addr)
        return (original is not None
                and section.word_at(addr) == original.word_at(addr))

    # ------------------------------------------------------------------
    def run(self):
        context = self.context
        original = Simulator(context.original_image,
                             stdin_text=self.stdin_text)
        edited = Simulator(context.edited_image, stdin_text=self.stdin_text,
                           brk_base=original.brk)
        orig = _Side("original", original, self.orig_stops)
        edit = _Side("edited", edited, self.edited_stops)
        _wrap_syscalls(original, orig.log)
        _wrap_syscalls(edited, edit.log)
        if self.configure_original is not None:
            self.configure_original(original)
        if self.configure_edited is not None:
            self.configure_edited(edited)

        self._heap_base = original.brk
        syncs = 0
        divergence = None
        while True:
            event_o = self._advance(orig)
            event_e = self._advance(edit)
            if event_o[0] == "sync" and event_e[0] == "sync":
                syncs += 1
                divergence = self._compare_sync(orig, edit,
                                                event_o[1], event_e[1])
                if divergence is None and syncs >= self.max_syncs:
                    divergence = Divergence(
                        "timeout", "exceeded %d synchronizations without "
                        "exiting" % self.max_syncs,
                        orig_pc=event_o[1], edited_pc=event_e[1])
                if divergence is not None:
                    break
                continue
            if event_o[0] == "exit" and event_e[0] == "exit":
                divergence = self._compare_exit(orig, edit)
                break
            divergence = self._mismatched_events(orig, edit,
                                                 event_o, event_e)
            break

        _C_SYNCS.inc(syncs)
        if divergence is not None:
            _C_DIVERGENCES.inc()
        original._record_telemetry()
        edited._record_telemetry()
        return CosimReport(divergence, syncs,
                           original.instructions_executed,
                           edited.instructions_executed)

    # ------------------------------------------------------------------
    def _advance(self, side):
        """Run one side to its next sync point.  Returns an event tuple:
        ("sync", pc) | ("exit", code) | ("timeout", exc) | ("crash", exc).

        Stop-pc contract with the engines: ``side.stops`` is a frozenset
        built once per oracle (``run_until`` caches compiled blocks
        against its identity), its members are block-start addresses
        only — never delay-slot addresses — and every engine guarantees
        control pauses *between* instructions at a stop pc: the block
        engine truncates compiled blocks so no interior pc is a stop,
        and the per-instruction engine checks after every step.
        """
        try:
            side.sim.cpu.run_until(side.stops, self.sync_budget)
            return ("sync", side.sim.cpu.pc)
        except sc.ExitProgram as program_exit:
            side.exit_code = program_exit.code
            side.sim.syscalls.exit_code = program_exit.code
            return ("exit", program_exit.code)
        except SimulationTimeout as timeout:
            return ("timeout", timeout)
        except (SimulationError, MemoryFault, sc.ProtectionFault,
                ValueError, KeyError) as error:
            return ("crash", error)

    def _covering_edits(self, edited_pc, since=None):
        """Human-readable edits covering *edited_pc* (and, for state
        drift, any snippets placed in the straight-line interval since
        the previous sync)."""
        placement = self.context.placement
        edits = []
        placed = placement.covering(edited_pc)
        if placed is not None:
            edits.append(placed.describe())
        if since is not None and since < edited_pc:
            for entry in placement.in_range(since, edited_pc):
                if entry.item.kind == "snippet":
                    text = entry.describe()
                    if text not in edits:
                        edits.append(text)
                if len(edits) >= 4:
                    break
        return edits

    def _compare_sync(self, orig, edit, orig_pc, edited_pc):
        expected = self.edited_of.get(orig_pc)
        previous = getattr(self, "_last_edited_pc", None)
        self._last_edited_pc = edited_pc
        # The edited side is at the mapped copy — or at the original
        # address itself when execution flowed through retained text
        # after an unanalyzable indirect jump.
        if edited_pc == orig_pc and edited_pc in self.edited_stops:
            expected = edited_pc
        if expected is None or edited_pc != expected:
            _mapped = ("0x%x" % expected) if expected is not None else "?"
            return Divergence(
                "control",
                "original stopped at 0x%x (maps to %s) but edited "
                "stopped at 0x%x" % (orig_pc, _mapped, edited_pc),
                orig_pc=orig_pc, edited_pc=edited_pc,
                edits=self._covering_edits(edited_pc))
        deltas = self._register_deltas(orig.sim, edit.sim, orig_pc)
        if deltas:
            return Divergence(
                "state",
                "%d live register(s) differ at block 0x%x" % (len(deltas),
                                                              orig_pc),
                orig_pc=orig_pc, edited_pc=edited_pc, registers=deltas,
                edits=self._covering_edits(edited_pc, since=previous))
        return self._compare_syscall_logs(orig, edit, orig_pc, edited_pc)

    def _register_deltas(self, original, edited, orig_pc):
        context = self.context
        regs = context.codec.regs
        addr_map = context.addr_map
        cpu_o, cpu_e = original.cpu, edited.cpu
        deltas = []
        for reg in sorted(self.live_at.get(orig_pc, ())):
            vo = self._read_register(cpu_o, reg)
            ve = self._read_register(cpu_e, reg)
            if vo == ve:
                continue
            # Code addresses are compared modulo the address map: a
            # return address legitimately points at the edited call site.
            if isinstance(vo, int) and addr_map.get(vo) == ve:
                continue
            deltas.append((regs.name(reg), vo, ve))
        if context.arch == "sparc":
            depth_o = len(cpu_o.windows)
            depth_e = len(cpu_e.windows)
            if depth_o != depth_e:
                deltas.append(("window-depth", depth_o, depth_e))
        return deltas

    def _read_register(self, cpu, reg):
        if reg < 32:
            return cpu.r[reg]
        if self.context.arch == "sparc":
            return cpu.icc if reg == 32 else cpu.y
        return cpu.hi if reg == 32 else cpu.lo

    def _compare_syscall_logs(self, orig, edit, orig_pc=None,
                              edited_pc=None, at_exit=False):
        log_o, log_e = orig.log, edit.log
        if log_o == log_e:
            return None
        length = min(len(log_o), len(log_e))
        index = next((i for i in range(length)
                      if log_o[i] != log_e[i]), length)
        entry_o = log_o[index] if index < len(log_o) else None
        entry_e = log_e[index] if index < len(log_e) else None
        return Divergence(
            "syscall",
            "syscall traces differ at call %d%s"
            % (index, " (at exit)" if at_exit else ""),
            orig_pc=orig_pc, edited_pc=edited_pc,
            syscalls=(entry_o, entry_e),
            edits=self._covering_edits(edited_pc) if edited_pc else ())

    def _mismatched_events(self, orig, edit, event_o, event_e):
        def describe(side, event):
            kind = event[0]
            if kind == "sync":
                return "%s synchronized at 0x%x" % (side.name, event[1])
            if kind == "exit":
                return "%s exited with code %d" % (side.name, event[1])
            if kind == "timeout":
                return ("%s ran %d instructions without reaching a sync "
                        "point (pc 0x%x)"
                        % (side.name, event[1].steps, event[1].pc))
            return "%s crashed: %s" % (side.name, event[1])

        kind = "timeout" if "timeout" in (event_o[0], event_e[0]) else (
            "crash" if "crash" in (event_o[0], event_e[0]) else "exit")
        orig_pc = orig.sim.cpu.pc
        edited_pc = edit.sim.cpu.pc
        return Divergence(
            kind, "%s; %s" % (describe(orig, event_o),
                              describe(edit, event_e)),
            orig_pc=orig_pc, edited_pc=edited_pc,
            edits=self._covering_edits(edited_pc))

    # ------------------------------------------------------------------
    def _compare_exit(self, orig, edit):
        if orig.exit_code != edit.exit_code:
            return Divergence(
                "exit", "exit codes differ: original=%r edited=%r"
                % (orig.exit_code, edit.exit_code))
        if orig.sim.output != edit.sim.output:
            return Divergence(
                "output", "program output differs: original=%r edited=%r"
                % (orig.sim.output, edit.sim.output))
        divergence = self._compare_syscall_logs(orig, edit, at_exit=True)
        if divergence is not None:
            return divergence
        return self._compare_memory(orig, edit)

    def _compare_memory(self, orig, edit):
        image = self.context.original_image
        for name, section in sorted(image.sections.items()):
            if not section.flags & SEC_WRITE:
                continue
            bytes_o = orig.sim.memory.read_bytes(section.vaddr, section.size)
            bytes_e = edit.sim.memory.read_bytes(section.vaddr, section.size)
            divergence = self._first_byte_delta(
                name, section.vaddr, bytes_o, bytes_e)
            if divergence is not None:
                return divergence
        top = max(orig.sim.brk, edit.sim.brk)
        span = min(top - self._heap_base, _HEAP_DIFF_CAP)
        if span > 0:
            bytes_o = orig.sim.memory.read_bytes(self._heap_base, span)
            bytes_e = edit.sim.memory.read_bytes(self._heap_base, span)
            divergence = self._first_byte_delta(
                "heap", self._heap_base, bytes_o, bytes_e)
            if divergence is not None:
                return divergence
        return None

    def _first_byte_delta(self, region, base, bytes_o, bytes_e):
        if bytes_o == bytes_e:
            return None
        index = next(i for i in range(min(len(bytes_o), len(bytes_e)))
                     if bytes_o[i] != bytes_e[i])
        return Divergence(
            "memory",
            "final %s contents differ at 0x%x: original=0x%02x "
            "edited=0x%02x" % (region, base + index,
                               bytes_o[index], bytes_e[index]))
