"""Edit fault injector: deliberately corrupt edits, assert detection.

The subsystem's own test of detection power (ISSUE 3): each injector
reproduces one class of rewriting bug the paper's machinery exists to
prevent, applied to a *clone* of the edited image so the pristine one
survives.  The driver then checks that the structural lints or the
co-simulation oracle catch every class with a provenance-bearing
report:

==========================  =======================================
class                       expected detector
==========================  =======================================
``corrupt-word``            ``invalid-word`` lint
``stale-dispatch-entry``    ``stale-dispatch-entry`` lint
``skip-delay-hoist``        cosim (state/control divergence)
``branch-off-by-4``         cosim (control divergence)
``clobber-live-register``   cosim (live-register delta)
``unbalanced-spill``        ``unbalanced-spill`` lint (synthetic)
==========================  =======================================

Injectors that rewrite executed code first profile the *original*
image (``count_pcs``) so the corruption lands on a path the workload
actually takes — a fault on dead code proves nothing.
"""

from repro.binfmt.serialize import image_from_bytes, image_to_bytes
from repro.core.regalloc import allocate_snippet
from repro.core.snippet import CodeSnippet
from repro.sim.machine import Simulator
from repro.verify.context import VerifyContext

# Decodes as INVALID on both SPARC and MIPS (0x0 is a valid MIPS nop).
CORRUPT_WORD = 0xFFFFFFFF


class InjectionError(LookupError):
    """No viable injection site in this session (workload-dependent)."""


def clone_image(image):
    """An independent deep copy of *image* (serialize round-trip)."""
    return image_from_bytes(image_to_bytes(image))


def executed_pcs(context, stdin_text=""):
    """Original-image pcs the workload actually executes."""
    simulator = Simulator(context.original_image, stdin_text=stdin_text,
                          count_pcs=True)
    simulator.run()
    return set(simulator.pc_counts)


def _set_new_text_word(image, addr, word):
    section = image.sections[".text.edited"]
    section.set_word(addr, word)


# ----------------------------------------------------------------------
def inject_corrupt_word(context, stdin_text=""):
    """Class ``corrupt-word``: smash one emitted instruction word."""
    for placed in context.placement.entries:
        if placed.item.kind != "word":
            continue
        image = clone_image(context.edited_image)
        _set_new_text_word(image, placed.start, CORRUPT_WORD)
        return image, {
            "class": "corrupt-word",
            "addr": placed.start,
            "routine": placed.routine,
            "block": placed.block,
        }
    raise InjectionError("no placed word items to corrupt")


def inject_stale_dispatch_entry(context, stdin_text=""):
    """Class ``stale-dispatch-entry``: point a rewritten dispatch-table
    entry back at its original (un-edited) target."""
    edited_names = set(context.edited_routine_names())
    for routine, cfg in context.cfgs():
        if routine.name not in edited_names:
            continue
        for info in cfg.indirect_jumps:
            if info.status != "table":
                continue
            for index, target in enumerate(info.targets):
                if context.edited_addr(target) == target:
                    continue  # entry was never rewritten
                entry_addr = info.table_addr + 4 * index
                image = clone_image(context.edited_image)
                image.section_at(entry_addr).set_word(entry_addr, target)
                return image, {
                    "class": "stale-dispatch-entry",
                    "addr": entry_addr,
                    "routine": routine.name,
                    "block": info.block.start,
                    "target": target,
                }
    raise InjectionError("no rewritten dispatch tables in this workload")


def _delay_candidates(context):
    """(branch_item, word_item) pairs where the word is a refolded or
    hoisted delay instruction placed right after its CTI."""
    nop = context.codec.nop_word
    entries = context.placement.entries
    for first, second in zip(entries, entries[1:]):
        if first.item.kind not in ("branch", "xfer"):
            continue
        if second.item.kind != "word" or second.item.word == nop:
            continue
        if first.item.orig_addr is None or second.item.orig_addr is None:
            continue
        if second.item.orig_addr == first.item.orig_addr + 4:
            yield first, second


def inject_skip_delay_hoist(context, stdin_text=""):
    """Class ``skip-delay-hoist``: drop a materialized delay-slot
    instruction, as if layout forgot the hoist (section 3.3)."""
    executed = executed_pcs(context, stdin_text)
    candidates = [(branch, word) for branch, word in
                  _delay_candidates(context)
                  if word.item.orig_addr in executed]

    def weight(pair):
        inst = context.codec.decode(pair[1].item.word)
        # Prefer delay slots whose loss is maximally observable:
        # restore tears a register window, call-delay words set up
        # arguments.
        if inst.name == "restore":
            return 0
        if pair[0].item.kind == "xfer":
            return 1
        return 2

    for branch, word in sorted(candidates, key=weight):
        image = clone_image(context.edited_image)
        _set_new_text_word(image, word.start, context.codec.nop_word)
        return image, {
            "class": "skip-delay-hoist",
            "addr": word.start,
            "routine": word.routine,
            "block": word.block,
            "orig_addr": word.item.orig_addr,
        }
    raise InjectionError("no executed delay-slot materializations")


def inject_branch_off_by_4(context, stdin_text=""):
    """Class ``branch-off-by-4``: retarget an executed branch one word
    past its real destination."""
    codec = context.codec
    executed = executed_pcs(context, stdin_text)
    section = context.edited_image.sections[".text.edited"]
    candidates = []
    for placed in context.placement.entries:
        if placed.item.kind not in ("branch", "jump", "xfer"):
            continue
        if placed.item.orig_addr not in executed:
            continue
        word = section.word_at(placed.start)
        inst = codec.decode(word)
        target = codec.control_target(inst, placed.start)
        if target is None:
            continue
        try:
            corrupted = codec.with_control_target(word, placed.start,
                                                  target + 4)
        except Exception:
            continue
        # An executed conditional branch may never be *taken*, making
        # the retarget unobservable; prefer unconditional transfers.
        if context.arch == "sparc":
            conditional = getattr(inst, "cond", "a") not in ("a", None)
        else:
            conditional = (inst.name.startswith("b")
                           and not (inst.name == "beq"
                                    and inst.f.get("rs") == inst.f.get("rt")))
        candidates.append((1 if conditional else 0, placed, corrupted,
                           target))
    if not candidates:
        raise InjectionError("no executed rewritten branches")
    candidates.sort(key=lambda entry: entry[0])
    _, placed, corrupted, target = candidates[0]
    image = clone_image(context.edited_image)
    _set_new_text_word(image, placed.start, corrupted)
    return image, {
        "class": "branch-off-by-4",
        "addr": placed.start,
        "routine": placed.routine,
        "block": placed.block,
        "target": target,
    }


def _clobber_word(context, reg):
    """One instruction that bumps *reg* (reg += 1) on this arch."""
    codec = context.codec
    if context.arch == "sparc":
        return codec.encode("add", rd=reg, rs1=reg, simm13=1)
    return codec.encode("addiu", rt=reg, rs=reg, imm16=1)


def inject_clobber_live_register(context, stdin_text=""):
    """Class ``clobber-live-register``: make a snippet scribble on a
    register that is live at its insertion point (the bug the paper's
    register scavenging exists to prevent, section 3.5)."""
    executed = executed_pcs(context, stdin_text)
    sp = context.conventions.sp_reg
    zero = getattr(context.codec.regs, "zero_regs", frozenset())
    blocks = {}
    for routine, cfg in context.cfgs():
        liveness = cfg.live_registers()
        for block in cfg.normal_blocks():
            blocks[block.start] = frozenset(liveness.live_before(block, 0))
    for placed in context.placement.snippets():
        live = blocks.get(placed.block)
        if live is None or placed.block not in executed:
            continue
        victims = [reg for reg in live
                   if reg < 32 and reg != sp and reg not in zero]
        if not victims:
            continue
        victim = max(victims)
        image = clone_image(context.edited_image)
        _set_new_text_word(image, placed.start,
                           _clobber_word(context, victim))
        return image, {
            "class": "clobber-live-register",
            "addr": placed.start,
            "routine": placed.routine,
            "block": placed.block,
            "register": context.codec.regs.name(victim),
        }
    raise InjectionError("no executed block-entry snippets to clobber")


def corrupt_spill_wrapper(executable):
    """Class ``unbalanced-spill``: allocate a snippet under full
    register pressure (forcing spills), then drop its restore epilogue.
    Returns the mangled AllocatedSnippet for :func:`spill_findings`."""
    conventions = executable.conventions
    codec = executable.codec
    p0, p1 = conventions.placeholder_regs[0], conventions.placeholder_regs[1]
    snippet = CodeSnippet([codec.nop_word], alloc_regs=(p0, p1))
    live = frozenset(conventions.scavenge_candidates)
    allocated = allocate_snippet(snippet, live, conventions)
    if not allocated.spilled:
        raise InjectionError("full-pressure allocation did not spill")
    dropped = sum(len(conventions.unspill(reg, slot))
                  for reg, slot in allocated.spilled)
    allocated.words = allocated.words[:-dropped]
    return allocated


# ----------------------------------------------------------------------
IMAGE_FAULTS = (
    inject_corrupt_word,
    inject_stale_dispatch_entry,
    inject_skip_delay_hoist,
    inject_branch_off_by_4,
    inject_clobber_live_register,
)


def run_fault_suite(executable, stdin_text="", sync_budget=2_000_000):
    """Inject every applicable image-level fault and report detection.

    Returns {class name: {"detected": bool, "by": "lints"/"cosim",
    "report": str, "details": dict}}; classes with no viable site in
    this workload are omitted.
    """
    from repro.verify.cosim import CosimOracle
    from repro.verify.lints import run_lints, spill_findings

    base = VerifyContext(executable)
    results = {}
    for injector in IMAGE_FAULTS:
        try:
            image, details = injector(base, stdin_text)
        except InjectionError:
            continue
        context = VerifyContext(executable, edited_image=image)
        findings = run_lints(context)
        errors = [finding for finding in findings
                  if finding.severity == "error"]
        if errors:
            results[details["class"]] = {
                "detected": True, "by": "lints",
                "report": "\n".join(str(finding) for finding in errors),
                "details": details,
            }
            continue
        report = CosimOracle(context, stdin_text=stdin_text,
                             sync_budget=sync_budget).run()
        results[details["class"]] = {
            "detected": not report.ok,
            "by": "cosim" if not report.ok else "none",
            "report": report.divergence.render() if not report.ok else "",
            "details": details,
        }

    try:
        mangled = corrupt_spill_wrapper(executable)
    except InjectionError:
        pass
    else:
        findings = spill_findings(mangled, executable.conventions)
        results["unbalanced-spill"] = {
            "detected": bool(findings), "by": "lints" if findings else "none",
            "report": "\n".join(str(finding) for finding in findings),
            "details": {"class": "unbalanced-spill",
                        "spilled": list(mangled.spilled)},
        }
    return results
