"""Differential verification of edited executables (DESIGN.md §5e).

EEL's core promise (paper §3, §3.5) is that an edited executable
behaves identically to the original.  This subsystem checks that
promise per edit session instead of assuming it:

* :mod:`repro.verify.lints` — machine-independent structural
  invariants over the rewritten image;
* :mod:`repro.verify.cosim` — lockstep co-simulation of the original
  and edited image with live-register, syscall-trace, output, and
  final-memory comparison;
* :mod:`repro.verify.inject` — deliberate edit corruption proving the
  two detectors actually detect.

Clean verdicts are memoized in the analysis cache (keyed by both
images' content hashes), so re-verifying an unchanged edit is a
cache-file read.  ``repro verify <workload>`` drives all of it from
the command line.
"""

import hashlib
import struct

from repro.cache.store import (
    enabled as _cache_enabled,
    image_cache_key as _image_cache_key,
    load_verdict as _load_verdict,
    store_verdict as _store_verdict,
)
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span
from repro.verify.context import Finding, VerifyContext
from repro.verify.cosim import CosimOracle
from repro.verify.lints import run_lints

__all__ = [
    "Finding",
    "VerifyContext",
    "VerifyResult",
    "corpus_names",
    "instrument_workload",
    "verify_session",
    "verify_workload",
]

# Bump when verify semantics change: old verdicts stop matching.
# 2: cosim sync points compare the dataflow live-in, not the
#    window-augmented scavenging set (false positives in leaf callees).
VERIFY_VERSION = 2

_C_RUNS = _metrics.counter("verify.runs")
_C_PASSED = _metrics.counter("verify.passed")
_C_FAILED = _metrics.counter("verify.failed")
_C_MEMO_HITS = _metrics.counter("verify.memo_hits")
_C_MEMO_MISSES = _metrics.counter("verify.memo_misses")


class VerifyResult:
    """Outcome of verifying one edit session."""

    def __init__(self, label, findings=(), cosim=None, memoized=False):
        self.label = label
        self.findings = list(findings)
        self.cosim = cosim  # CosimReport or None (memoized runs)
        self.memoized = memoized

    @property
    def errors(self):
        return [finding for finding in self.findings
                if finding.severity == "error"]

    @property
    def ok(self):
        if self.memoized:
            return True
        return not self.errors and (self.cosim is None or self.cosim.ok)

    @property
    def syncs(self):
        return self.cosim.syncs if self.cosim is not None else 0

    def render(self):
        if self.memoized:
            return "%s: PASS (memoized verdict)" % self.label
        lines = []
        if self.ok:
            lines.append("%s: PASS (%d lint findings, %d cosim syncs)"
                         % (self.label, len(self.findings), self.syncs))
        else:
            lines.append("%s: FAIL" % self.label)
        for finding in self.findings:
            lines.append("  %s" % finding)
        if self.cosim is not None and not self.cosim.ok:
            for line in self.cosim.divergence.render().splitlines():
                lines.append("  %s" % line)
        return "\n".join(lines)


def _verdict_key(original_image, edited_image):
    digest = hashlib.sha256()
    digest.update(b"EELV")
    digest.update(struct.pack(">H", VERIFY_VERSION))
    digest.update(_image_cache_key(original_image)
                  .encode("ascii"))
    digest.update(_image_cache_key(edited_image)
                  .encode("ascii"))
    return digest.hexdigest()


def verify_session(executable, edited_image=None, stdin_text="",
                   configure_edited=None, use_memo=True, label="edit",
                   jobs=1):
    """Lints + co-simulation for one edit session.

    *executable* is the (post-edit) editing session; *edited_image*
    defaults to its finalized image.  *configure_edited* lets tools
    with host-side runtime state (elsie's memory hooks, sfi's fault
    handler) prepare the edited simulator.  Clean verdicts are
    memoized by image content unless *use_memo* is off.
    """
    with _span("verify.run", label=label):
        _C_RUNS.inc()
        context = VerifyContext(executable, edited_image, jobs=jobs)
        key = None
        if use_memo and _cache_enabled():
            key = _verdict_key(context.original_image, context.edited_image)
            verdict = _load_verdict(key)
            if verdict is not None and verdict.get("ok"):
                _C_MEMO_HITS.inc()
                _C_PASSED.inc()
                return VerifyResult(label, memoized=True)
            _C_MEMO_MISSES.inc()
        with _span("verify.lints"):
            findings = run_lints(context)
        with _span("verify.cosim"):
            cosim = CosimOracle(context, stdin_text=stdin_text,
                                configure_edited=configure_edited).run()
        result = VerifyResult(label, findings, cosim)
        if result.ok:
            _C_PASSED.inc()
            if key is not None:
                _store_verdict(key, {
                    "ok": True,
                    "version": VERIFY_VERSION,
                    "label": label,
                    "syncs": cosim.syncs,
                })
        else:
            _C_FAILED.inc()
        return result


# ----------------------------------------------------------------------
# Workload drivers (used by the CLI and the test suite).

TOOLS = ("qpt", "sfi", "elsie")


def corpus_names():
    """Every SPARC and MIPS workload name."""
    from repro.workloads import builder

    return list(builder.program_names()) + list(builder.mips_program_names())


def _workload_image(name):
    from repro.workloads import builder

    if name in builder.mips_program_names():
        return builder.build_mips_image(name), "mips"
    if name in builder.program_names():
        return builder.build_image(name), "sparc"
    raise ValueError("unknown workload %r (have: %s)"
                     % (name, ", ".join(corpus_names())))


def instrument_workload(name, tool="qpt", mode="edge", jobs=1):
    """Build *name*, instrument it with *tool*, and return
    (executable session, edited image, configure_edited hook).

    Tool dispatch lives in :func:`repro.tools.instrument_image`; this
    wrapper only resolves the workload name and narrows the error
    message to the verify vocabulary.
    """
    from repro.tools import instrument_image

    image, _arch = _workload_image(name)
    if tool not in TOOLS:
        raise ValueError("unknown tool %r (have: %s)"
                         % (tool, ", ".join(TOOLS)))
    session = instrument_image(image, tool, mode=mode, jobs=jobs)
    return session.executable, session.edited_image, session.configure_edited


def verify_workload(name, tool="qpt", mode="edge", stdin_text="",
                    use_memo=True, jobs=1):
    """Instrument workload *name* with *tool* and verify the edit."""
    executable, edited_image, configure = instrument_workload(
        name, tool=tool, mode=mode, jobs=jobs)
    return verify_session(executable, edited_image, stdin_text=stdin_text,
                          configure_edited=configure, use_memo=use_memo,
                          label="%s[%s]" % (name, tool), jobs=jobs)


def _verify_counters():
    return {name: instrument.snapshot()
            for name, instrument in _metrics.REGISTRY.counters.items()
            if name.startswith("verify.")}


def _verify_worker(payload):
    """Process-pool worker: verify one workload.

    Returns ``(name, ok, text, counters)`` where *counters* holds the
    ``verify.*`` counter increments this task caused — a pool child
    counts in its own process, so the parent merges the deltas to keep
    ``--stats-json`` meaningful under ``--jobs``.
    """
    name, tool, mode, use_memo, stdin_text = payload
    before = _verify_counters()
    try:
        result = verify_workload(name, tool=tool, mode=mode,
                                 use_memo=use_memo, stdin_text=stdin_text)
        outcome = (name, result.ok, result.render())
    except Exception as error:
        outcome = (name, False, "%s: ERROR %s" % (name, error))
    after = _verify_counters()
    deltas = {key: after[key] - before.get(key, 0) for key in after
              if after[key] != before.get(key, 0)}
    return outcome + (deltas,)
