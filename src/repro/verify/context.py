"""Shared state for the verify subsystem.

Everything in ``repro.verify`` works from the same three artifacts:

* the *original* image (untouched by editing — the finalizer copies
  sections, so a fresh analysis of it is valid after edits);
* the *edited* image plus the finalizer's address map;
* an *edit placement* — a walk of every edited routine's laid-out items
  giving, for each address in ``.text.edited``, the item that was
  placed there and the basic block it came from.

The placement is what turns a bare divergent address into provenance:
"the counter snippet qpt added before block 0x2094 of fib".
"""

import bisect

from repro.core.executable import Executable

NEW_TEXT_SECTION = ".text.edited"


class Finding:
    """One structural-lint result with routine/block/address provenance."""

    __slots__ = ("code", "message", "routine", "block", "addr", "severity")

    def __init__(self, code, message, routine=None, block=None, addr=None,
                 severity="error"):
        self.code = code
        self.message = message
        self.routine = routine  # routine name, if attributable
        self.block = block  # original block-start address, if attributable
        self.addr = addr  # address in the edited image
        self.severity = severity

    def __str__(self):
        where = []
        if self.routine is not None:
            where.append("routine %s" % self.routine)
        if self.block is not None:
            where.append("block 0x%x" % self.block)
        if self.addr is not None:
            where.append("at 0x%x" % self.addr)
        prefix = " ".join(where)
        return "[%s] %s%s%s" % (self.code, prefix, ": " if prefix else "",
                                self.message)

    def __repr__(self):
        return "Finding(%s)" % self


class PlacedItem:
    """One layout item with its resolved address range and provenance."""

    __slots__ = ("start", "end", "item", "routine", "block", "region")

    def __init__(self, start, end, item, routine, block, region):
        self.start = start
        self.end = end
        self.item = item  # repro.core.layout.Item
        self.routine = routine  # routine name
        self.block = block  # original block-start address (None in stubs)
        self.region = region  # label name of the enclosing region

    def describe(self):
        item = self.item
        parts = ["%s item" % item.kind]
        if item.kind == "snippet" and item.snippet is not None:
            tag = getattr(item.snippet.snippet, "tag", None)
            if tag is not None:
                parts.append("tag=%r" % (tag,))
        if item.orig_addr is not None:
            parts.append("from 0x%x" % item.orig_addr)
        parts.append("in routine %s" % self.routine)
        if self.block is not None:
            parts.append("(block 0x%x)" % self.block)
        parts.append("placed at [0x%x,0x%x)" % (self.start, self.end))
        return " ".join(parts)


class EditPlacement:
    """Address-ordered walk of every edited routine's placed items.

    Reconstructs where each :class:`~repro.core.layout.Item` landed from
    the routine's ``edited.base`` and the items' sizes — the same
    arithmetic the finalizer used, so it is exact even after tools like
    qpt delete their CFGs.
    """

    def __init__(self, executable):
        arch = executable.arch
        entries = []
        for routine in sorted(executable._edited_routines.values(),
                              key=lambda r: r.start):
            edited = routine.edited
            if edited is None or edited.base is None:
                continue
            cursor = edited.base
            block = None
            region = None
            for item in edited.items:
                if item.kind == "label":
                    region = item.label
                    # Stub labels carry no original address; attribution
                    # stops at the routine level inside them.
                    block = item.orig_addr
                    continue
                size = item.size(arch)
                entries.append(PlacedItem(cursor, cursor + size, item,
                                          routine.name, block, region))
                cursor += size
        entries.sort(key=lambda entry: entry.start)
        self.entries = entries
        self._starts = [entry.start for entry in entries]

    def covering(self, addr):
        """The placed item covering *addr*, or None."""
        index = bisect.bisect_right(self._starts, addr) - 1
        if index < 0:
            return None
        entry = self.entries[index]
        return entry if entry.start <= addr < entry.end else None

    def in_range(self, lo, hi):
        """Placed items overlapping [lo, hi)."""
        index = bisect.bisect_right(self._starts, lo) - 1
        if index < 0:
            index = 0
        out = []
        for entry in self.entries[index:]:
            if entry.start >= hi:
                break
            if entry.end > lo:
                out.append(entry)
        return out

    def snippets(self):
        """Placed snippet items, address order."""
        return [entry for entry in self.entries
                if entry.item.kind == "snippet"]


class VerifyContext:
    """Everything the lints, oracle, and injector share for one session.

    *executable* is the post-edit editing session; *edited_image* lets
    the fault injector substitute a deliberately corrupted image while
    keeping the session's placement and address map (the corruption is
    exactly the disagreement between plan and image that the checks
    must surface).
    """

    def __init__(self, executable, edited_image=None, jobs=1):
        self.executable = executable
        self.arch = executable.arch
        self.codec = executable.codec
        self.conventions = executable.conventions
        self.original_image = executable.image
        finalized = executable._finalize()
        self.edited_image = (edited_image if edited_image is not None
                             else finalized.image)
        self.addr_map = finalized.addr_map
        self.placement = EditPlacement(executable)
        self._jobs = jobs
        self._analysis = None
        self._cfgs = None

    # ------------------------------------------------------------------
    @property
    def analysis(self):
        """A fresh analysis session over the *original* image.

        Independent of the editing session's (possibly tool-mangled)
        state: tools may delete CFGs after instrumenting, and the
        verifier must not trust the producer's own bookkeeping anyway.
        """
        if self._analysis is None:
            executable = Executable(self.original_image)
            executable.read_contents(jobs=self._jobs)
            self._analysis = executable
        return self._analysis

    def cfgs(self):
        """(routine, cfg) for every routine of the fresh analysis."""
        if self._cfgs is None:
            routines = sorted(self.analysis.all_routines(),
                              key=lambda r: r.start)
            self._cfgs = [(routine, routine.control_flow_graph())
                          for routine in routines]
        return self._cfgs

    def edited_addr(self, addr):
        return self.addr_map.get(addr, addr)

    def new_text(self):
        """The ``.text.edited`` section of the edited image, or None."""
        return self.edited_image.sections.get(NEW_TEXT_SECTION)

    def in_new_text(self, addr):
        section = self.new_text()
        return section is not None and section.contains(addr)

    def edited_routine_names(self):
        return sorted(self.executable._edited_routines)
