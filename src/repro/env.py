"""Defensive environment-variable parsing shared across subsystems.

Configuration knobs (``REPRO_CACHE_MAX``, the ``REPRO_SERVE_*``
family) arrive as strings from whatever shell or service manager
launched the process.  A malformed value must never crash an entry
point — the contract here is: parse strictly, and on any failure fall
back to the documented default with a one-line warning on stderr
(warned once per variable per process, so a daemon does not spam).
"""

import os
import sys

_WARNED = set()


def _warn(name, raw, default):
    if name in _WARNED:
        return
    _WARNED.add(name)
    print("repro: ignoring invalid %s=%r (using default %s)"
          % (name, raw, default), file=sys.stderr)


def env_int(name, default, minimum=None):
    """Integer value of ``$name``, or *default* on absence/garbage.

    Values below *minimum* (when given) count as garbage: a negative
    queue bound or worker count is a configuration error, not a mode.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        if raw is not None:
            _warn(name, raw, default)
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        _warn(name, raw, default)
        return default
    if minimum is not None and value < minimum:
        _warn(name, raw, default)
        return default
    return value


def env_choice(name, default, choices):
    """Value of ``$name`` restricted to *choices*, or *default*.

    Comparison is case-insensitive; anything outside the set counts as
    garbage and falls back with the usual one-line warning.  Used for
    mode selectors like ``REPRO_SIM_ENGINE``.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        if raw is not None:
            _warn(name, raw, default)
        return default
    value = raw.strip().lower()
    if value not in choices:
        _warn(name, raw, default)
        return default
    return value


def env_float(name, default, minimum=None):
    """Float value of ``$name`` with the same fallback contract."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        if raw is not None:
            _warn(name, raw, default)
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        _warn(name, raw, default)
        return default
    if value != value or minimum is not None and value < minimum:
        _warn(name, raw, default)
        return default
    return value
