"""Build and restore whole-executable analysis summaries.

A summary captures what EEL computes once per executable (paper
section 3): the refined routine set and, per routine, the CFG shape
(with delay-slot hoists and indirect-jump resolutions baked in) and the
liveness solution.  Restoring a summary puts an Executable in the same
analyzed state without re-running refinement or any per-routine
analysis.
"""

from repro.obs.trace import span as _span


def summarize_routine(routine):
    """Per-routine analysis summary: identity + CFG + liveness."""
    from repro.core.symtab_refine import routine_identity

    cfg = routine.control_flow_graph()
    liveness = cfg.live_registers()
    summary = routine_identity(routine)
    summary["cfg"] = cfg.to_summary()
    summary["liveness"] = liveness.to_summary()
    return summary


def analyze_routines(executable, routines, jobs=1):
    """Analysis summaries for *routines*, optionally fanned out.

    Routines are independent after symbol-table refinement, so on a
    cold cache the CFG/liveness work can run under
    ``concurrent.futures``; any pool failure falls back to the serial
    path, and ``jobs=1`` never touches a pool at all.
    """
    if jobs > 1 and len(routines) > 1:
        from repro.cache.parallel import parallel_summaries

        summaries = parallel_summaries(executable, routines, jobs)
        if summaries is not None:
            return summaries
    return [summarize_routine(routine) for routine in routines]


def executable_to_summary(executable, jobs=1):
    """Summarize *executable*'s refined, analyzed state.

    Must run after ``read_contents``; building the per-routine CFGs
    claims dispatch-table data, so the claimed set is recorded last.
    """
    routines = list(executable._routines)
    hidden = list(executable._hidden)
    with _span("cache.analyze", jobs=jobs,
               routines=len(routines) + len(hidden)):
        summaries = analyze_routines(executable, routines + hidden,
                                     jobs=jobs)
    routine_summaries = summaries[: len(routines)]
    hidden_summaries = summaries[len(routines):]
    _attach(routines + hidden, summaries)
    return {
        "arch": executable.arch,
        "routines": routine_summaries,
        "hidden": hidden_summaries,
        "claimed": sorted(executable._claimed),
    }


def restore_executable(executable, summary):
    """Recreate the refined routine sets from *summary*.

    Returns (routines, hidden) lists of Routine objects with analysis
    summaries attached; CFGs and liveness restore lazily on first use.
    Returns None when the summary does not describe this executable.
    """
    from repro.core.symtab_refine import routine_from_identity

    if summary.get("arch") != executable.arch:
        return None
    with _span("cache.restore",
               routines=len(summary["routines"]),
               hidden=len(summary["hidden"])):
        executable._claimed = set(summary["claimed"])
        routines = []
        for entry in summary["routines"]:
            routine = routine_from_identity(executable, entry)
            routine.analysis_summary = entry
            routines.append(routine)
        hidden = []
        for entry in summary["hidden"]:
            routine = routine_from_identity(executable, entry)
            routine.analysis_summary = entry
            hidden.append(routine)
    return routines, hidden


def _attach(routines, summaries):
    """Attach freshly built summaries so in-session CFG rebuilds (after
    ``delete_control_flow_graph``) can restore instead of re-analyzing."""
    for routine, summary in zip(routines, summaries):
        routine.analysis_summary = summary
        if routine._cfg is not None and routine._cfg._liveness is None:
            routine._cfg._live_summary = summary.get("liveness")
