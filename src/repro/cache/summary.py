"""Build and restore whole-executable analysis summaries.

A summary captures what EEL computes once per executable (paper
section 3): the refined routine set and, per routine, the CFG shape
(with delay-slot hoists and indirect-jump resolutions baked in) and the
liveness solution.  Since ANALYSIS_VERSION 4 the blob's routine entries
are identities only; every derived analysis lives in a ``facts`` table
(see :mod:`repro.core.facts`) that restores straight into the
executable's incremental fact store, so a warm image can invalidate and
re-derive single routines without a cold re-analysis.
"""

from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

_C_HYDRATED = _metrics.counter("facts.hydrated")
_C_HYDRATE_REJECTS = _metrics.counter("facts.hydrate_rejects")


def summarize_routine(routine):
    """Per-routine analysis summary: identity + CFG + liveness."""
    from repro.core.symtab_refine import routine_identity

    cfg = routine.control_flow_graph()
    liveness = cfg.live_registers()
    summary = routine_identity(routine)
    summary["cfg"] = cfg.to_summary()
    summary["liveness"] = liveness.to_summary()
    return summary


def analyze_routines(executable, routines, jobs=1):
    """Analysis summaries for *routines*, optionally fanned out.

    Routines are independent after symbol-table refinement, so on a
    cold cache the CFG/liveness work can run under
    ``concurrent.futures``; any pool failure falls back to the serial
    path, and ``jobs=1`` never touches a pool at all.
    """
    if jobs > 1 and len(routines) > 1:
        from repro.cache.parallel import parallel_summaries

        summaries = parallel_summaries(executable, routines, jobs)
        if summaries is not None:
            return summaries
    return [summarize_routine(routine) for routine in routines]


def _populate_store(executable, routines, summaries):
    """Assert routine/cfg/liveness facts from computed *summaries*, then
    derive the downstream kinds from the CFG payloads (no CFG builds)."""
    from repro.core.facts import rules as _fact_rules

    store = executable.fact_store()
    for routine, summary in zip(routines, summaries):
        identity = {key: summary[key]
                    for key in ("name", "start", "end", "entries", "hidden")}
        store.put("routine", routine.start, identity)
        store.put("cfg", routine.start, summary["cfg"],
                  (("routine", routine.start),))
        store.put("liveness", routine.start, summary["liveness"],
                  (("cfg", routine.start),))
    for kind in ("cti", "dispatch", "islands", "callsites"):
        for routine in routines:
            _fact_rules.ensure(executable, store, kind, routine)
    return store


def executable_to_summary(executable, jobs=1):
    """Summarize *executable*'s refined, analyzed state.

    Must run after ``read_contents``; building the per-routine CFGs
    claims dispatch-table data, so the claimed set is recorded last.
    """
    from repro.core.symtab_refine import routine_identity

    routines = list(executable._routines)
    hidden = list(executable._hidden)
    with _span("cache.analyze", jobs=jobs,
               routines=len(routines) + len(hidden)):
        summaries = analyze_routines(executable, routines + hidden,
                                     jobs=jobs)
    _attach(routines + hidden, summaries)
    store = _populate_store(executable, routines + hidden, summaries)
    return {
        "arch": executable.arch,
        "provenance": getattr(executable, "analysis_provenance",
                              "discovery"),
        "routines": [routine_identity(routine) for routine in routines],
        "hidden": [routine_identity(routine) for routine in hidden],
        "claimed": sorted(executable._claimed),
        "facts": store.to_summary(),
    }


def restore_executable(executable, summary):
    """Recreate the refined routine sets and fact store from *summary*.

    Returns (routines, hidden) lists of Routine objects with analysis
    views attached (CFGs and liveness restore lazily on first use) and
    leaves the hydrated :class:`FactStore` on ``executable.facts``.
    Returns None — a clean miss, never a partial hydrate — when the
    summary does not describe this executable, its fact table is
    malformed, or any routine lacks its core facts
    (``facts.hydrate_rejects`` counts the last two).
    """
    from repro.core.facts import FactStore
    from repro.core.facts import rules as _fact_rules
    from repro.core.symtab_refine import routine_from_identity

    if summary.get("arch") != executable.arch:
        return None
    store = FactStore.from_summary(summary.get("facts"))
    if store is None:
        _C_HYDRATE_REJECTS.inc()
        return None
    with _span("cache.restore",
               routines=len(summary["routines"]),
               hidden=len(summary["hidden"])):
        routines = [routine_from_identity(executable, entry)
                    for entry in summary["routines"]]
        hidden = [routine_from_identity(executable, entry)
                  for entry in summary["hidden"]]
        for routine in routines + hidden:
            if _fact_rules.attach_view(store, routine) is None:
                _C_HYDRATE_REJECTS.inc()
                return None
        executable._claimed = set(summary["claimed"])
        executable.facts = store
        executable.analysis_provenance = summary.get("provenance",
                                                     "discovery")
    _C_HYDRATED.inc(len(store))
    return routines, hidden


def _attach(routines, summaries):
    """Attach freshly built summaries so in-session CFG rebuilds (after
    ``delete_control_flow_graph``) can restore instead of re-analyzing."""
    for routine, summary in zip(routines, summaries):
        routine.analysis_summary = summary
        if routine._cfg is not None and routine._cfg._liveness is None:
            routine._cfg._live_summary = summary.get("liveness")
