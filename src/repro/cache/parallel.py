"""Process-pool fan-out for cold-cache routine analysis.

Each worker gets the serialized image plus a chunk of routine
identities, rebuilds a lightweight Executable, and returns plain
summary dicts — everything crossing the pool boundary is picklable
bytes and JSON-ready data.  Any pool failure (missing multiprocessing
support, broken workers, sandboxed fork) makes the caller fall back to
the serial path, so ``--jobs N`` is always safe to pass.
"""

from repro.obs import metrics as _metrics

_C_FALLBACKS = _metrics.counter("cache.parallel_fallbacks")
_C_SUPPRESSED = _metrics.counter("cache.parallel_suppressed")

# Forking a process pool from a multi-threaded parent (the serve
# daemon's worker threads) can deadlock the children on locks the fork
# snapshotted mid-acquire.  Long-lived multi-threaded hosts set this
# flag once at startup; parallel_summaries then computes serially —
# same results, no forks — and counts the suppression.
_POOLS_SUPPRESSED = False


def suppress_pools(suppressed=True):
    """Disable process-pool fan-out in this process (daemon safety)."""
    global _POOLS_SUPPRESSED
    _POOLS_SUPPRESSED = suppressed


def pools_suppressed():
    return _POOLS_SUPPRESSED


def _analyze_chunk(payload):
    """Worker: analyze one chunk of routines; returns summary dicts."""
    blob, identities, claimed = payload
    from repro.binfmt.serialize import image_from_bytes
    from repro.cache.summary import summarize_routine
    from repro.core.executable import Executable
    from repro.core.symtab_refine import routine_from_identity

    executable = Executable(image_from_bytes(blob))
    executable._read = True
    executable._claimed = set(claimed)
    return [summarize_routine(routine_from_identity(executable, identity))
            for identity in identities]


def _chunks(items, count):
    """Split *items* into at most *count* contiguous chunks."""
    size = max(1, (len(items) + count - 1) // count)
    return [items[i : i + size] for i in range(0, len(items), size)]


def parallel_summaries(executable, routines, jobs):
    """Summaries for *routines* in original order, or None on failure."""
    from repro.binfmt.serialize import image_to_bytes
    from repro.core.symtab_refine import routine_identity

    if _POOLS_SUPPRESSED:
        _C_SUPPRESSED.inc()
        return None

    blob = image_to_bytes(executable.image)
    claimed = sorted(executable._claimed)
    payloads = [
        (blob, [routine_identity(r) for r in chunk], claimed)
        for chunk in _chunks(routines, jobs)
    ]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_analyze_chunk, payloads))
    except Exception:
        # Pools can be unavailable (restricted environments) or die
        # mid-flight; the serial path computes identical results.
        _C_FALLBACKS.inc()
        return None
    return [summary for chunk in results for summary in chunk]
