"""Content-addressed on-disk store for analysis summaries.

The cache key is a SHA-256 over everything routine analysis consumes:
the architecture, the entry point, every section's identity and bytes,
and the symbol table (symbol-table refinement stage 1 reads it), plus
the ``ANALYSIS_VERSION`` tag from :mod:`repro.binfmt.serialize`.  Two
executables with the same key are analysis-equivalent by construction;
any change to the analyses bumps the version and old entries simply
stop matching.

Invalidation rules:

* version or magic mismatch, truncated or corrupt blob -> the entry is
  deleted and counted in ``cache.invalidations``; the caller sees a miss;
* the directory is pruned oldest-first past ``REPRO_CACHE_MAX`` entries
  (default 512), counted in ``cache.evictions``.

The store must never break the pipeline: every filesystem error turns
into a miss (or a dropped store) plus a counter, not an exception.
"""

import hashlib
import json
import os
import struct
import threading
import zlib

from repro.binfmt.image import SEC_NOBITS
from repro.env import env_int
from repro.binfmt.serialize import (
    ANALYSIS_VERSION,
    FormatError,
    analysis_from_bytes,
    analysis_to_bytes,
)
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

_C_HITS = _metrics.counter("cache.hits")
_C_MISSES = _metrics.counter("cache.misses")
_C_STORES = _metrics.counter("cache.stores")
_C_INVALIDATIONS = _metrics.counter("cache.invalidations")
_C_EVICTIONS = _metrics.counter("cache.evictions")
_C_ERRORS = _metrics.counter("cache.store_errors")
_C_PRUNE_RACES = _metrics.counter("cache.prune_races")
_C_MEMORY_HITS = _metrics.counter("cache.memory_hits")

_SUFFIX = ".eela"
_VERDICT_SUFFIX = ".eelv"
_VERDICT_MAGIC = b"EELV"
_OFF_VALUES = ("off", "0", "false", "no")


def enabled():
    """The cache is on unless REPRO_CACHE says otherwise."""
    return os.environ.get("REPRO_CACHE", "on").lower() not in _OFF_VALUES


def cache_dir():
    """Directory holding cached analyses (REPRO_CACHE_DIR overrides)."""
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-eel")


def max_entries():
    """Entry cap per suffix; malformed values warn once and default."""
    return env_int("REPRO_CACHE_MAX", 512, minimum=0)


def image_cache_key(image):
    """Hex digest addressing *image*'s analysis results."""
    digest = hashlib.sha256()
    digest.update(b"EELK")
    digest.update(struct.pack(">H", ANALYSIS_VERSION))
    digest.update(image.arch.encode("utf-8"))
    digest.update(struct.pack(">I", image.entry & 0xFFFFFFFF))
    for name in sorted(image.sections):
        section = image.sections[name]
        digest.update(name.encode("utf-8"))
        digest.update(struct.pack(">IIB", section.vaddr, section.size,
                                  section.flags))
        if not section.flags & SEC_NOBITS:
            digest.update(bytes(section.data))
    for symbol in image.symbols:
        record = "%s|%d|%s|%s|%d|%s" % (
            symbol.name, symbol.value, symbol.kind, symbol.binding,
            symbol.size, symbol.section,
        )
        digest.update(record.encode("utf-8"))
    return digest.hexdigest()


def _entry_path(key):
    return os.path.join(cache_dir(), key + _SUFFIX)


# ----------------------------------------------------------------------
# In-process warm layer (the serve daemon's shared state)
#
# A long-lived process serving many requests against the same few
# binaries should not pay a file read + prune pass per request.  When
# enabled (``repro serve`` turns it on at startup), validated entry
# blobs are also kept in a bounded in-memory dict keyed by entry
# filename; hits skip the filesystem entirely.  Blobs — not decoded
# summaries — are cached, so a memory hit decodes fresh objects exactly
# like a disk hit and requests can never share mutable analysis state.
# ----------------------------------------------------------------------

_MEMORY_LOCK = threading.Lock()
_MEMORY = None  # None = disabled; {filename: blob} when enabled
_MEMORY_CAP = 0


def enable_memory_layer(cap=64):
    """Keep up to *cap* validated blobs warm in this process."""
    global _MEMORY, _MEMORY_CAP
    with _MEMORY_LOCK:
        _MEMORY = {}
        _MEMORY_CAP = max(1, cap)


def disable_memory_layer():
    global _MEMORY, _MEMORY_CAP
    with _MEMORY_LOCK:
        _MEMORY = None
        _MEMORY_CAP = 0


def _memory_get(name):
    with _MEMORY_LOCK:
        if _MEMORY is None:
            return None
        return _MEMORY.get(name)


def _memory_put(name, blob):
    with _MEMORY_LOCK:
        if _MEMORY is None:
            return
        _MEMORY.pop(name, None)
        _MEMORY[name] = blob
        while len(_MEMORY) > _MEMORY_CAP:
            _MEMORY.pop(next(iter(_MEMORY)))


def _memory_drop(name):
    with _MEMORY_LOCK:
        if _MEMORY is not None:
            _MEMORY.pop(name, None)


def load(key):
    """Summary dict for *key*, or None on miss/invalidation."""
    path = _entry_path(key)
    name = key + _SUFFIX
    blob = _memory_get(name)
    if blob is not None:
        with _span("cache.load", key=key[:12], bytes=len(blob),
                   memory=True):
            summary = analysis_from_bytes(blob)  # validated at insert
        _C_MEMORY_HITS.inc()
        _C_HITS.inc()
        return summary
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError:
        _C_MISSES.inc()
        return None
    with _span("cache.load", key=key[:12], bytes=len(blob)):
        try:
            summary = analysis_from_bytes(blob)
        except FormatError:
            _invalidate(path)
            _C_MISSES.inc()
            return None
    _memory_put(name, blob)
    _C_HITS.inc()
    return summary


def store(key, summary):
    """Persist *summary* under *key* (atomic write; errors are dropped)."""
    directory = cache_dir()
    path = _entry_path(key)
    with _span("cache.store", key=key[:12]):
        try:
            blob = analysis_to_bytes(summary)
            _memory_put(key + _SUFFIX, blob)
            os.makedirs(directory, exist_ok=True)
            tmp = "%s.tmp.%d" % (path, os.getpid())
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            _C_ERRORS.inc()
            return
    _C_STORES.inc()
    _prune(directory)


def _verdict_path(key):
    return os.path.join(cache_dir(), key + _VERDICT_SUFFIX)


def load_verdict(key):
    """Verified-image verdict dict for *key*, or None.

    Verdicts memoize ``repro.verify`` results: the key covers both the
    original and the edited image, so any byte change in either side
    misses.  Like analysis entries, corrupt verdicts are deleted and
    read as misses — the verifier then simply re-verifies.
    """
    path = _verdict_path(key)
    name = key + _VERDICT_SUFFIX
    blob = _memory_get(name)
    if blob is not None:
        _C_MEMORY_HITS.inc()
        return json.loads(zlib.decompress(blob[4:]).decode("utf-8"))
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError:
        return None
    try:
        if blob[:4] != _VERDICT_MAGIC:
            raise ValueError("bad verdict magic")
        verdict = json.loads(zlib.decompress(blob[4:]).decode("utf-8"))
        if not isinstance(verdict, dict):
            raise ValueError("verdict is not a dict")
    except (ValueError, zlib.error, UnicodeDecodeError):
        _invalidate(path)
        return None
    _memory_put(name, blob)
    return verdict


def store_verdict(key, verdict):
    """Persist a verify verdict (atomic write; errors are dropped)."""
    directory = cache_dir()
    path = _verdict_path(key)
    try:
        blob = _VERDICT_MAGIC + zlib.compress(
            json.dumps(verdict, sort_keys=True).encode("utf-8"))
        _memory_put(key + _VERDICT_SUFFIX, blob)
        os.makedirs(directory, exist_ok=True)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
    except OSError:
        _C_ERRORS.inc()
        return
    _prune(directory, _VERDICT_SUFFIX)


def _invalidate(path):
    _C_INVALIDATIONS.inc()
    _memory_drop(os.path.basename(path))
    try:
        os.unlink(path)
    except OSError:
        pass


def _prune(directory, suffix=_SUFFIX):
    """Drop the oldest entries once the directory exceeds the cap.

    Several writers (``--jobs`` workers, daemon threads, independent
    CLI runs) can prune one directory at once, so every per-entry stat
    or unlink can lose a race with another pruner deleting the same
    oldest file.  A vanished entry is treated as already evicted —
    counted in ``cache.prune_races``, never an error, and never a
    reason to stop pruning the remaining entries.
    """
    cap = max_entries()
    try:
        names = [n for n in os.listdir(directory) if n.endswith(suffix)]
    except OSError:
        _C_ERRORS.inc()
        return
    if len(names) <= cap:
        return
    entries = []
    for name in names:
        path = os.path.join(directory, name)
        try:
            entries.append((os.path.getmtime(path), path))
        except OSError:
            _C_PRUNE_RACES.inc()  # another pruner beat us to it
    entries.sort()
    excess = len(entries) - cap
    if excess <= 0:
        return
    for _, path in entries[:excess]:
        try:
            os.unlink(path)
        except FileNotFoundError:
            _C_PRUNE_RACES.inc()
            continue
        except OSError:
            _C_ERRORS.inc()
            continue
        _C_EVICTIONS.inc()
