"""Content-addressed analysis cache (the compile-once/run-many win).

EEL's analyses — symbol-table refinement, per-routine CFGs with
delay-slot normalization, liveness, indirect-jump slicing — depend only
on the executable's bytes.  This package keys their results by a hash
of those bytes plus an analysis-version tag and persists them on disk,
so a second edit/instrument/run of the same binary skips straight to
layout.

Environment knobs:

* ``REPRO_CACHE=off`` disables the cache entirely (cold path always);
* ``REPRO_CACHE_DIR`` relocates the store (default ``~/.cache/repro-eel``);
* ``REPRO_CACHE_MAX`` caps the entry count (default 512, oldest pruned).

Counters (``cache.*``) surface in the ``repro.obs`` report: hits,
misses, stores, invalidations, evictions, restored CFGs, and parallel
fallbacks.
"""

from repro.cache.store import (
    cache_dir,
    disable_memory_layer,
    enable_memory_layer,
    enabled,
    image_cache_key,
    load,
    load_verdict,
    max_entries,
    store,
    store_verdict,
)
from repro.cache.summary import (
    analyze_routines,
    executable_to_summary,
    restore_executable,
    summarize_routine,
)

__all__ = [
    "analyze_routines",
    "cache_dir",
    "disable_memory_layer",
    "enable_memory_layer",
    "enabled",
    "executable_to_summary",
    "image_cache_key",
    "load",
    "load_analysis",
    "load_verdict",
    "max_entries",
    "restore_executable",
    "store",
    "store_analysis",
    "store_verdict",
    "summarize_routine",
]


def load_analysis(executable):
    """Restore cached analysis for *executable*.

    Returns (routines, hidden) lists on a hit, None on a miss or when
    the cache is disabled.
    """
    if not enabled():
        return None
    summary = load(image_cache_key(executable.image))
    if summary is None:
        return None
    return restore_executable(executable, summary)


def store_analysis(executable, jobs=1):
    """Analyze all routines (optionally in parallel) and persist the
    summary.  No-op when the cache is disabled."""
    if not enabled():
        return
    summary = executable_to_summary(executable, jobs=jobs)
    store(image_cache_key(executable.image), summary)
