"""Register-transfer-level (RTL) semantics AST for spawn descriptions.

A small expression/statement language in the spirit of the paper's
Figure 7.  Expressions evaluate over an abstract machine state; the
analyzer partially evaluates them against a concrete instruction word
(all field values known) to derive reads/writes/categories, and the
executor evaluates them fully to run programs.
"""


class Expr:
    pass


class Const(Expr):
    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "Const(%d)" % self.value


class FieldRef(Expr):
    """An instruction field; signedness comes from the field declaration."""

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "Field(%s)" % self.name


class RegRead(Expr):
    def __init__(self, bank, index):
        self.bank = bank  # register bank name, e.g. "R"
        self.index = index  # Expr

    def __repr__(self):
        return "RegRead(%s[%r])" % (self.bank, self.index)


class SpecialRead(Expr):
    """pc, icc, y, hi, lo — named special state."""

    def __init__(self, name):
        self.name = name


class MemRead(Expr):
    def __init__(self, addr, width, signed=False):
        self.addr = addr
        self.width = width
        self.signed = signed


class BinOp(Expr):
    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self):
        return "(%r %s %r)" % (self.left, self.op, self.right)


class UnOp(Expr):
    def __init__(self, op, operand):
        self.op = op
        self.operand = operand


class CondExpr(Expr):
    def __init__(self, cond, then, other):
        self.cond = cond
        self.then = then
        self.other = other


class Builtin(Expr):
    """Builtin function application: cc_add, sdiv, window_save, ..."""

    def __init__(self, name, args):
        self.name = name
        self.args = args

    def __repr__(self):
        return "%s(%s)" % (self.name, ", ".join(map(repr, self.args)))


class CCTest(Expr):
    """Branch condition test against the condition codes."""

    def __init__(self, cond):
        self.cond = cond  # mnemonic string: "ne", "e", "gu", ...


class Param(Expr):
    """$1, $2 ... substituted by `@` application."""

    def __init__(self, index):
        self.index = index


# -- statements -----------------------------------------------------------

class Stmt:
    pass


class Assign(Stmt):
    def __init__(self, target, value):
        self.target = target  # RegRead / SpecialRead / MemRead as lvalues
        self.value = value

    def __repr__(self):
        return "%r := %r" % (self.target, self.value)


class Seq(Stmt):
    def __init__(self, statements):
        self.statements = statements

    def __repr__(self):
        return "; ".join(map(repr, self.statements))


class Par(Stmt):
    """Parallel statements (comma in the paper's notation)."""

    def __init__(self, statements):
        self.statements = statements


class IfStmt(Stmt):
    def __init__(self, cond, then, other=None):
        self.cond = cond
        self.then = then
        self.other = other


class Annul(Stmt):
    """Annul the delay-slot instruction."""


class Trap(Stmt):
    """Software trap (system call); the argument is the trap number."""

    def __init__(self, number):
        self.number = number


def substitute(node, args):
    """Replace Param nodes with the @-application arguments."""
    if isinstance(node, Param):
        return args[node.index - 1]
    if isinstance(node, Const) or isinstance(node, FieldRef) \
            or isinstance(node, SpecialRead) or isinstance(node, CCTest):
        return node
    if isinstance(node, RegRead):
        return RegRead(node.bank, substitute(node.index, args))
    if isinstance(node, MemRead):
        return MemRead(substitute(node.addr, args), node.width, node.signed)
    if isinstance(node, BinOp):
        return BinOp(node.op, substitute(node.left, args),
                     substitute(node.right, args))
    if isinstance(node, UnOp):
        return UnOp(node.op, substitute(node.operand, args))
    if isinstance(node, CondExpr):
        return CondExpr(substitute(node.cond, args),
                        substitute(node.then, args),
                        substitute(node.other, args))
    if isinstance(node, Builtin):
        if node.name == "cctest" and len(node.args) == 1 \
                and isinstance(node.args[0], Param):
            return CCTest(args[node.args[0].index - 1])
        return Builtin(node.name, [substitute(a, args) for a in node.args])
    if isinstance(node, Assign):
        return Assign(substitute(node.target, args),
                      substitute(node.value, args))
    if isinstance(node, Seq):
        return Seq([substitute(s, args) for s in node.statements])
    if isinstance(node, Par):
        return Par([substitute(s, args) for s in node.statements])
    if isinstance(node, IfStmt):
        other = substitute(node.other, args) if node.other else None
        return IfStmt(substitute(node.cond, args),
                      substitute(node.then, args), other)
    if isinstance(node, (Annul, Trap)):
        return node
    raise TypeError("cannot substitute in %r" % node)
