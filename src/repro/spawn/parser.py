"""Parser for spawn machine descriptions.

The description format follows the paper's Figure 7: field definitions,
register declarations, encoding patterns (including name-vector
patterns), and register-transfer semantics bound to instructions with
``sem``, optionally vector-applied with ``@``.

    arch sparc
    wordsize 32
    fields op 30:31, rd 25:29, simm13 0:12 signed, ...
    register R[32] zero 0
    register ICC
    implies simm13 iflag 1
    pat [ bn be ... ] is op=0 && op2=2 && cond=[0..15]
    val src2 is iflag = 1 ? simm13 : R[rs2]
    sem add is R[rd] := R[rs1] + src2
    sem [ bne be ... ] is cctest($1) ? npc := pc + (disp22 << 2)
                          : (aflag = 1 ? annul)  @ [ ne e ... ]
"""

import re

from repro.spawn import rtl

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<name>[A-Za-z_][\w]*)
  | (?P<op>:=|&&|\.\.|<<|>>|!=|<=|>=|[][()=?:;,@$+\-*&|^~<>{}])
    """,
    re.VERBOSE,
)

KEYWORDS = {"arch", "wordsize", "fields", "register", "pat", "val", "sem",
            "is", "zero", "signed", "implies", "mem", "annul", "trap",
            "cctest", "pc", "npc"}

SPECIALS = {"pc", "npc", "icc", "y", "hi", "lo"}

BUILTINS = {
    "cc_add", "cc_sub", "cc_logic", "sdiv", "udiv", "smul_lo", "smul_hi",
    "umul_lo", "umul_hi", "window_save", "window_restore", "icc_pack",
    "icc_unpack", "sext8", "sext16", "mult_hi", "mult_lo", "multu_hi",
    "multu_lo", "div_lo", "div_hi", "divu_lo", "divu_hi", "sltu", "slt",
    "sra",
}


class SpawnParseError(Exception):
    pass


class FieldDef:
    def __init__(self, name, lo, hi, signed=False):
        self.name = name
        self.lo = lo
        self.hi = hi
        self.signed = signed

    @property
    def width(self):
        return self.hi - self.lo + 1


class RegisterBank:
    def __init__(self, name, count, zero=None):
        self.name = name
        self.count = count
        self.zero = zero


class InstructionDef:
    """One instruction: encoding constraints + semantics."""

    def __init__(self, name, constraints):
        self.name = name
        self.constraints = constraints  # {field: value}
        self.semantics = None  # rtl.Stmt

    def __repr__(self):
        return "InstructionDef(%s)" % self.name


class Description:
    def __init__(self, name):
        self.name = name
        self.arch = None
        self.wordsize = 32
        self.fields = {}
        self.banks = {}
        self.implies = {}  # field -> (other field, value)
        self.instructions = {}  # name -> InstructionDef
        self.order = []  # declaration order of instruction names
        self.vals = {}
        self.source_lines = 0  # non-comment, non-blank line count

    def instruction(self, name):
        return self.instructions[name]


def _tokenize(text):
    tokens = []
    position = 0
    line = 1
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise SpawnParseError("line %d: bad character %r"
                                  % (line, text[position]))
        value = match.group(0)
        line += value.count("\n")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        tokens.append((match.lastgroup, value, line))
    tokens.append(("eof", "", line))
    return tokens


class _Parser:
    def __init__(self, text, name):
        self.tokens = _tokenize(text)
        self.position = 0
        self.desc = Description(name)
        self.desc.source_lines = sum(
            1 for raw in text.splitlines()
            if raw.strip() and not raw.strip().startswith("#")
        )

    # -- token helpers ----------------------------------------------------
    @property
    def current(self):
        return self.tokens[self.position]

    def peek(self, offset=0):
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.current
        self.position += 1
        return token

    def check(self, text):
        kind, value, _ = self.current
        return value == text and kind in ("name", "op", "num")

    def accept(self, text):
        if self.check(text):
            return self.advance()
        return None

    def expect(self, text):
        if not self.check(text):
            raise SpawnParseError(
                "line %d: expected %r, found %r"
                % (self.current[2], text, self.current[1])
            )
        return self.advance()

    def expect_name(self):
        kind, value, line = self.current
        if kind != "name":
            raise SpawnParseError("line %d: expected name, found %r"
                                  % (line, value))
        return self.advance()[1]

    def expect_int(self):
        negative = bool(self.accept("-"))
        kind, value, line = self.current
        if kind != "num":
            raise SpawnParseError("line %d: expected number, found %r"
                                  % (line, value))
        self.advance()
        number = int(value, 0)
        return -number if negative else number

    # -- top level ----------------------------------------------------------
    def parse(self):
        while self.current[0] != "eof":
            keyword = self.expect_name()
            handler = getattr(self, "_stmt_" + keyword, None)
            if handler is None:
                raise SpawnParseError("line %d: unknown statement %r"
                                      % (self.current[2], keyword))
            handler()
        return self.desc

    def _stmt_arch(self):
        self.desc.arch = self.expect_name()

    def _stmt_wordsize(self):
        self.desc.wordsize = self.expect_int()

    def _stmt_fields(self):
        while True:
            name = self.expect_name()
            lo = self.expect_int()
            self.expect(":")
            hi = self.expect_int()
            signed = bool(self.accept("signed"))
            self.desc.fields[name] = FieldDef(name, lo, hi, signed)
            if not self.accept(","):
                break

    def _stmt_register(self):
        name = self.expect_name()
        count = 1
        zero = None
        if self.accept("["):
            count = self.expect_int()
            self.expect("]")
        if self.accept("zero"):
            zero = self.expect_int()
        self.desc.banks[name] = RegisterBank(name, count, zero)

    def _stmt_implies(self):
        trigger = self.expect_name()
        other = self.expect_name()
        value = self.expect_int()
        self.desc.implies[trigger] = (other, value)

    def _parse_names(self):
        if self.accept("["):
            names = []
            while not self.check("]"):
                names.append(self.expect_name())
            self.expect("]")
            return names
        return [self.expect_name()]

    def _stmt_pat(self):
        names = self._parse_names()
        self.expect("is")
        # Parse constraints: field=value or field=[v1 v2...] / [a..b].
        shared = {}
        vectors = {}  # field -> list of per-name values
        while True:
            field = self.expect_name()
            self.expect("=")
            if self.accept("["):
                first = self.expect_int()
                if self.accept(".."):
                    last = self.expect_int()
                    values = list(range(first, last + 1))
                else:
                    values = [first]
                    while not self.check("]"):
                        values.append(self.expect_int())
                self.expect("]")
                if len(values) != len(names):
                    raise SpawnParseError(
                        "pattern %s: %d names but %d values for %s"
                        % (names, len(names), len(values), field)
                    )
                vectors[field] = values
            else:
                shared[field] = self.expect_int()
            if not self.accept("&&"):
                break
        for index, name in enumerate(names):
            constraints = dict(shared)
            for field, values in vectors.items():
                constraints[field] = values[index]
            if name in self.desc.instructions:
                raise SpawnParseError("duplicate instruction %r" % name)
            self.desc.instructions[name] = InstructionDef(name, constraints)
            self.desc.order.append(name)

    def _stmt_val(self):
        name = self.expect_name()
        self.expect("is")
        self.desc.vals[name] = self._parse_expr()

    def _stmt_sem(self):
        names = self._parse_names()
        self.expect("is")
        body = self._parse_stmtlist()
        args = None
        if self.accept("@"):
            self.expect("[")
            args = []
            while not self.check("]"):
                args.append(self.expect_name())
            self.expect("]")
            if len(args) != len(names):
                raise SpawnParseError("sem vector arity mismatch for %s"
                                      % names)
        for index, name in enumerate(names):
            inst = self.desc.instructions.get(name)
            if inst is None:
                raise SpawnParseError("sem for unknown instruction %r" % name)
            if args is not None:
                inst.semantics = rtl.substitute(body, [args[index]])
            else:
                inst.semantics = body

    # ------------------------------------------------------------------
    # RTL statements
    # ------------------------------------------------------------------
    def _at_statement_end(self):
        kind, value, _ = self.current
        if kind == "eof":
            return True
        # A new description statement begins.
        return kind == "name" and value in ("pat", "sem", "val", "arch",
                                            "wordsize", "fields", "register",
                                            "implies") and \
            self.peek(1)[1] not in (":=", "[", "(", "=")

    def _parse_stmtlist(self):
        statements = [self._parse_par()]
        while self.accept(";"):
            statements.append(self._parse_par())
        if len(statements) == 1:
            return statements[0]
        return rtl.Seq(statements)

    def _parse_par(self):
        statements = [self._parse_stmt()]
        while self.accept(","):
            statements.append(self._parse_stmt())
        if len(statements) == 1:
            return statements[0]
        return rtl.Par(statements)

    def _parse_stmt(self):
        if self.accept("annul"):
            return rtl.Annul()
        if self.accept("trap"):
            self.expect("(")
            number = self._parse_expr()
            self.expect(")")
            return rtl.Trap(number)
        if self.accept("("):
            inner = self._parse_stmtlist()
            self.expect(")")
            if self.check("?"):
                raise SpawnParseError("parenthesized condition must be an "
                                      "expression")
            return inner
        expression = self._parse_expr(ternary=False)
        if self.accept(":="):
            value = self._parse_expr()
            return rtl.Assign(expression, value)
        if self.accept("?"):
            then = self._parse_stmt()
            other = None
            if self.accept(":"):
                other = self._parse_stmt()
            return rtl.IfStmt(expression, then, other)
        raise SpawnParseError(
            "line %d: expected ':=' or '?' after expression"
            % self.current[2]
        )

    # ------------------------------------------------------------------
    # RTL expressions
    # ------------------------------------------------------------------
    def _parse_expr(self, ternary=True):
        expression = self._parse_compare()
        if ternary and self.accept("?"):
            then = self._parse_expr()
            self.expect(":")
            other = self._parse_expr(ternary=True)
            return rtl.CondExpr(expression, then, other)
        return expression

    def _parse_compare(self):
        left = self._parse_bitor()
        while True:
            for op in ("=", "!=", "<=", ">=", "<", ">"):
                if self.check(op):
                    # '=' only acts as comparison here (':=' is assignment).
                    self.advance()
                    right = self._parse_bitor()
                    left = rtl.BinOp("==" if op == "=" else op, left, right)
                    break
            else:
                return left

    def _parse_bitor(self):
        left = self._parse_bitxor()
        while self.check("|"):
            self.advance()
            left = rtl.BinOp("|", left, self._parse_bitxor())
        return left

    def _parse_bitxor(self):
        left = self._parse_bitand()
        while self.check("^"):
            self.advance()
            left = rtl.BinOp("^", left, self._parse_bitand())
        return left

    def _parse_bitand(self):
        left = self._parse_shift()
        while self.check("&") and not self.check("&&"):
            self.advance()
            left = rtl.BinOp("&", left, self._parse_shift())
        return left

    def _parse_shift(self):
        left = self._parse_additive()
        while self.check("<<") or self.check(">>"):
            op = self.advance()[1]
            left = rtl.BinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self):
        left = self._parse_mult()
        while self.check("+") or self.check("-"):
            op = self.advance()[1]
            left = rtl.BinOp(op, left, self._parse_mult())
        return left

    def _parse_mult(self):
        left = self._parse_unary()
        while self.check("*"):
            self.advance()
            left = rtl.BinOp("*", left, self._parse_unary())
        return left

    def _parse_unary(self):
        if self.accept("-"):
            return rtl.UnOp("-", self._parse_unary())
        if self.accept("~"):
            return rtl.UnOp("~", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self):
        kind, value, line = self.current
        if kind == "num":
            self.advance()
            return rtl.Const(int(value, 0))
        if self.accept("$"):
            return rtl.Param(self.expect_int())
        if self.accept("("):
            expression = self._parse_expr()
            self.expect(")")
            return expression
        if self.accept("mem"):
            self.expect("[")
            addr = self._parse_expr()
            self.expect(",")
            width = self.expect_int()
            signed = False
            if self.accept(","):
                self.expect("signed")
                signed = True
            self.expect("]")
            return rtl.MemRead(addr, width, signed)
        if self.accept("cctest"):
            self.expect("(")
            if self.accept("$"):
                index = self.expect_int()
                self.expect(")")
                return rtl.Builtin("cctest", [rtl.Param(index)])
            cond = self.expect_name()
            self.expect(")")
            return rtl.CCTest(cond)
        if kind == "name":
            name = self.advance()[1]
            if name in self.desc.banks:
                self.expect("[")
                index = self._parse_expr()
                self.expect("]")
                return rtl.RegRead(name, index)
            if name in SPECIALS:
                return rtl.SpecialRead(name)
            if name in BUILTINS:
                self.expect("(")
                args = []
                if not self.check(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self.accept(","):
                            break
                self.expect(")")
                return rtl.Builtin(name, args)
            if name in self.desc.vals:
                return self.desc.vals[name]
            if name in self.desc.fields:
                return rtl.FieldRef(name)
            raise SpawnParseError("line %d: unknown name %r" % (line, name))
        raise SpawnParseError("line %d: unexpected token %r" % (line, value))


def parse_description(text, name="<description>"):
    """Parse a spawn description into a :class:`Description`."""
    description = _Parser(text, name).parse()
    if description.arch is None:
        raise SpawnParseError("description lacks an 'arch' statement")
    missing = [n for n, inst in description.instructions.items()
               if inst.semantics is None]
    if missing:
        raise SpawnParseError("instructions without semantics: %s"
                              % ", ".join(sorted(missing)))
    return description
