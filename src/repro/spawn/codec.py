"""A MachineCodec generated from a spawn description.

Drop-in equivalent of the handwritten codecs: decode, encode, control
targets, and displacement re-encoding all derive from the description.
Conventions (jmpl overloads, syscall register effects, branch-name
suffixes) come from :mod:`repro.spawn.refine` — the analog of the
paper's annotated template file (Figure 6).
"""

from repro.isa import bits
from repro.isa.base import (
    Category,
    DecodedInst,
    MachineCodec,
    RegisterSet,
    SpanError,
)
from repro.spawn.analyze import Analyzer
from repro.spawn.refine import refine_decoded


def _pattern_mask_value(description, inst_def):
    mask = 0
    value = 0
    for field_name, field_value in inst_def.constraints.items():
        field = description.fields[field_name]
        mask |= bits.mask(field.width) << field.lo
        value |= (field_value & bits.mask(field.width)) << field.lo
    return mask, value


def _register_set(description):
    int_names = []
    special_names = []
    zero_regs = set()
    base = 0
    for bank in description.banks.values():
        if bank.count > 1:
            prefix = "%r" if description.arch == "sparc" else "$r"
            int_names.extend("%s%d" % (prefix, n) for n in range(bank.count))
            if bank.zero is not None:
                zero_regs.add(base + bank.zero)
        else:
            special_names.append("%" + bank.name.lower())
        base += bank.count
    return RegisterSet(description.arch, int_names, special_names,
                       zero_regs=zero_regs)


class SpawnCodec(MachineCodec):
    """Codec synthesized from a machine description."""

    def __init__(self, description):
        super().__init__()
        self.description = description
        self.arch = description.arch
        self.analyzer = Analyzer(description)
        self.regs = _register_set(description)
        self._patterns = []
        for name in description.order:
            inst_def = description.instructions[name]
            mask, value = _pattern_mask_value(description, inst_def)
            self._patterns.append((mask, value, inst_def))

    # ------------------------------------------------------------------
    @property
    def nop_word(self):
        if self.arch == "sparc":
            return self.encode("sethi", rd=0, imm22=0)
        return 0

    def match(self, word):
        for mask, value, inst_def in self._patterns:
            if word & mask == value:
                return inst_def
        return None

    def _decode_uncached(self, word):
        inst_def = self.match(word)
        if inst_def is None:
            return DecodedInst(
                word=word, name=".word", category=Category.INVALID,
                fields=(("value", word),),
                reads=frozenset(), writes=frozenset(),
            )
        info = self.analyzer.analyze(inst_def, word)

        if info.trap:
            category = Category.SYSTEM
        elif info.npc_exprs:
            conditional = any(flag for _, flag in info.npc_exprs)
            if conditional:
                category = Category.BRANCH
            elif info.indirect:
                category = (Category.CALL_INDIRECT if info.link_write
                            else Category.JUMP_INDIRECT)
            elif info.link_write:
                category = Category.CALL
            else:
                category = Category.JUMP
        elif info.mem_store:
            category = Category.STORE
        elif info.mem_load:
            category = Category.LOAD
        else:
            category = Category.COMPUTE

        decoded = DecodedInst(
            word=word,
            name=inst_def.name,
            category=category,
            fields=tuple(sorted(info.fields_used.items())),
            reads=frozenset(info.reads),
            writes=frozenset(info.writes),
            is_delayed=bool(info.npc_exprs),
            annul_untaken=info.annul_untaken,
            mem_width=info.mem_width,
            mem_signed=info.mem_signed,
            cond=info.cond,
        )
        return refine_decoded(self.arch, decoded, word, self)

    # ------------------------------------------------------------------
    def encode(self, name, **field_args):
        description = self.description
        inst_def = description.instructions.get(name)
        if inst_def is None:
            # Convention aliases like "bne,a" resolve through refine's
            # inverse: strip the suffix and set the annul field.
            if self.arch == "sparc" and name.endswith(",a"):
                field_args = dict(field_args)
                field_args["aflag"] = 1
                return self.encode(name[:-2], **field_args)
            raise ValueError("unknown instruction %r" % name)
        mask, value = _pattern_mask_value(description, inst_def)
        word = value
        field_args = dict(field_args)
        for trigger, (other, implied_value) in description.implies.items():
            if trigger in field_args and other not in field_args \
                    and other in description.fields:
                field_args[other] = implied_value
        for field_name, field_value in field_args.items():
            field = description.fields.get(field_name)
            if field is None:
                raise ValueError("unknown field %r" % field_name)
            if field.signed:
                if not bits.fits_signed(field_value, field.width):
                    raise SpanError("field %s value %d out of range"
                                    % (field_name, field_value))
            word = bits.insert(word, field.lo, field.hi, field_value)
        return bits.to_u32(word)

    # ------------------------------------------------------------------
    def _npc_expr(self, word):
        inst_def = self.match(word)
        if inst_def is None:
            return None
        info = self.analyzer.analyze(inst_def, word)
        if not info.npc_exprs or info.indirect:
            return None
        return info.npc_exprs[0][0]

    def _eval_target(self, expr, word, pc):
        """Numeric evaluation of a direct-target expression."""
        from repro.spawn import rtl

        def evaluate(node):
            if isinstance(node, rtl.Const):
                return node.value
            if isinstance(node, rtl.FieldRef):
                return self.analyzer.field_value(node.name, word)
            if isinstance(node, rtl.SpecialRead) and node.name == "pc":
                return pc
            if isinstance(node, rtl.RegRead):
                index = self.analyzer.const_eval(node.index, word)
                reg = self.analyzer.bank_base[node.bank] + index
                if reg in self.analyzer.zero_regs:
                    return 0
                raise ValueError("register in direct target")
            if isinstance(node, rtl.BinOp):
                from repro.spawn.analyze import _binop

                return _binop(node.op, evaluate(node.left),
                              evaluate(node.right))
            if isinstance(node, rtl.UnOp):
                value = evaluate(node.operand)
                return -value if node.op == "-" else ~value
            raise ValueError("unsupported target expression %r" % node)

        return bits.to_u32(evaluate(expr))

    def control_target(self, inst, pc):
        if inst.category not in (Category.BRANCH, Category.JUMP,
                                 Category.CALL):
            return None
        expr = self._npc_expr(inst.word)
        if expr is None:
            return None
        try:
            return self._eval_target(expr, inst.word, pc)
        except ValueError:
            return None

    def with_control_target(self, word, pc, target):
        """Re-encode the displacement field to reach *target*.

        Solved generically: evaluating the target expression at two
        displacement values yields the (affine) scale, inverting the
        encoding without architecture-specific code.
        """
        inst_def = self.match(word)
        if inst_def is None:
            raise ValueError("cannot retarget undecodable word")
        expr = self._npc_expr(word)
        if expr is None:
            raise ValueError("instruction %s has no direct target"
                             % inst_def.name)
        # Which field feeds the target?  Try every signed/unsigned field
        # the expression mentions.
        from repro.spawn import rtl

        fields = []

        def collect(node):
            if isinstance(node, rtl.FieldRef):
                fields.append(node.name)
            elif isinstance(node, rtl.BinOp):
                collect(node.left)
                collect(node.right)
            elif isinstance(node, rtl.UnOp):
                collect(node.operand)

        collect(expr)
        for field_name in fields:
            field = self.description.fields[field_name]
            base_word = bits.insert(word, field.lo, field.hi, 0)
            t0 = self._eval_target(self._npc_expr(base_word) or expr,
                                   base_word, pc)
            one_word = bits.insert(word, field.lo, field.hi, 1)
            t1 = self._eval_target(self._npc_expr(one_word) or expr,
                                   one_word, pc)
            scale = bits.to_s32(t1 - t0)
            if scale == 0:
                continue
            delta = bits.to_s32(target - t0)
            if delta % scale:
                raise SpanError("misaligned target")
            field_value = delta // scale
            if field.signed:
                if not bits.fits_signed(field_value, field.width):
                    raise SpanError("displacement out of span")
            elif not bits.fits_unsigned(field_value, field.width):
                raise SpanError("displacement out of span")
            result = bits.insert(word, field.lo, field.hi, field_value)
            check = self._eval_target(self._npc_expr(result), result, pc)
            if check == bits.to_u32(target):
                return result
        raise SpanError("no displacement field reaches target")

    # ------------------------------------------------------------------
    def invert_branch(self, word):
        from repro.isa import get_codec

        return get_codec(self.arch).invert_branch(word)

    def clear_annul(self, word):
        from repro.isa import get_codec

        return get_codec(self.arch).clear_annul(word)

    def disassemble(self, word, pc=None):
        inst = self.decode(word)
        if inst.category is Category.INVALID:
            return ".word 0x%08x" % word
        parts = ["%s=%d" % (k, v) for k, v in inst.fields]
        return "%s %s" % (inst.name, " ".join(parts))
