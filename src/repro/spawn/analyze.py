"""Derive decode metadata from RTL semantics by residual evaluation.

Given a concrete machine word, every instruction field is known, so
field-only conditionals (like SPARC's register-or-immediate ``iflag``)
resolve at decode time.  Walking the chosen branches yields exactly the
registers read and written, the memory width, the branch condition, and
the control behavior — the information the paper says spawn extracts
from a description (section 4).
"""

from repro.isa import bits
from repro.spawn import rtl


class AnalysisError(Exception):
    pass


class ResidualInfo:
    """Decode-time facts about one instruction instance."""

    def __init__(self):
        self.fields_used = {}
        self.reads = set()
        self.writes = set()
        self.npc_exprs = []  # (expr, conditional?)
        self.link_write = False  # a register receives a pc-derived value
        self.cond = ""  # branch condition mnemonic (from cctest)
        self.annul_untaken = False
        self.mem_width = 0
        self.mem_signed = False
        self.mem_store = False
        self.mem_load = False
        self.trap = False
        self.indirect = False  # npc target depends on register state


class Analyzer:
    """Residual evaluation of an instruction's RTL for a concrete word."""

    def __init__(self, description):
        self.description = description
        # Special state names -> pseudo register numbers (after bank R).
        base = 0
        self.bank_base = {}
        for bank in description.banks.values():
            self.bank_base[bank.name] = base
            base += bank.count
        self.special_reg = {}
        for name in ("icc", "y", "hi", "lo"):
            if name.upper() in description.banks:
                self.special_reg[name] = \
                    self.bank_base[name.upper()]
        self.zero_regs = frozenset(
            self.bank_base[bank.name] + bank.zero
            for bank in description.banks.values()
            if bank.zero is not None
        )

    # ------------------------------------------------------------------
    def field_value(self, field_name, word):
        field = self.description.fields[field_name]
        if field.signed:
            return bits.extract_signed(word, field.lo, field.hi)
        return bits.extract(word, field.lo, field.hi)

    def analyze(self, inst_def, word):
        info = ResidualInfo()
        self._walk_stmt(inst_def.semantics, word, info, conditional=False,
                        in_untaken=False)
        return info

    # ------------------------------------------------------------------
    def const_eval(self, node, word):
        """Evaluate an expression using only field values; None if it
        depends on runtime state."""
        if isinstance(node, rtl.Const):
            return node.value
        if isinstance(node, rtl.FieldRef):
            return self.field_value(node.name, word)
        if isinstance(node, rtl.RegRead):
            index = self.const_eval(node.index, word)
            if index is not None:
                reg = self.bank_base[node.bank] + index
                if reg in self.zero_regs:
                    return 0
            return None
        if isinstance(node, rtl.BinOp):
            left = self.const_eval(node.left, word)
            right = self.const_eval(node.right, word)
            if left is None or right is None:
                return None
            return _binop(node.op, left, right)
        if isinstance(node, rtl.UnOp):
            operand = self.const_eval(node.operand, word)
            if operand is None:
                return None
            return -operand if node.op == "-" else ~operand
        if isinstance(node, rtl.CondExpr):
            cond = self.const_eval(node.cond, word)
            if cond is None:
                return None
            return self.const_eval(node.then if cond else node.other, word)
        return None

    # ------------------------------------------------------------------
    def _resolve_reg(self, node, word):
        index = self.const_eval(node.index, word)
        if index is None:
            raise AnalysisError("register index not decodable")
        return self.bank_base[node.bank] + index

    def _note_fields(self, node, word, info):
        """Record the instruction fields an expression mentions."""
        if isinstance(node, rtl.FieldRef):
            info.fields_used[node.name] = self.field_value(node.name, word)
        elif isinstance(node, rtl.BinOp):
            self._note_fields(node.left, word, info)
            self._note_fields(node.right, word, info)
        elif isinstance(node, rtl.UnOp):
            self._note_fields(node.operand, word, info)
        elif isinstance(node, rtl.RegRead):
            self._note_fields(node.index, word, info)
        elif isinstance(node, rtl.CondExpr):
            self._note_fields(node.cond, word, info)
            cond = self.const_eval(node.cond, word)
            if cond is None:
                self._note_fields(node.then, word, info)
                self._note_fields(node.other, word, info)
            else:
                self._note_fields(node.then if cond else node.other, word,
                                  info)
        elif isinstance(node, rtl.MemRead):
            self._note_fields(node.addr, word, info)
        elif isinstance(node, rtl.Builtin):
            for argument in node.args:
                self._note_fields(argument, word, info)

    def _walk_expr(self, node, word, info):
        """Collect reads (and memory behavior) of an rvalue expression."""
        self._note_fields(node, word, info)
        self._collect_reads(node, word, info)

    def _collect_reads(self, node, word, info):
        if isinstance(node, (rtl.Const, rtl.FieldRef)):
            return
        if isinstance(node, rtl.RegRead):
            reg = self._resolve_reg(node, word)
            if reg not in self.zero_regs:
                info.reads.add(reg)
            return
        if isinstance(node, rtl.SpecialRead):
            if node.name in self.special_reg:
                info.reads.add(self.special_reg[node.name])
            return
        if isinstance(node, rtl.MemRead):
            info.mem_load = True
            info.mem_width = node.width
            info.mem_signed = node.signed
            self._collect_reads(node.addr, word, info)
            return
        if isinstance(node, rtl.BinOp):
            self._collect_reads(node.left, word, info)
            self._collect_reads(node.right, word, info)
            return
        if isinstance(node, rtl.UnOp):
            self._collect_reads(node.operand, word, info)
            return
        if isinstance(node, rtl.CondExpr):
            cond_value = self.const_eval(node.cond, word)
            self._collect_reads(node.cond, word, info)
            if cond_value is None:
                self._collect_reads(node.then, word, info)
                self._collect_reads(node.other, word, info)
            elif cond_value:
                self._collect_reads(node.then, word, info)
            else:
                self._collect_reads(node.other, word, info)
            return
        if isinstance(node, rtl.CCTest):
            info.cond = node.cond
            if node.cond not in ("a", "n") and "icc" in self.special_reg:
                info.reads.add(self.special_reg["icc"])
            return
        if isinstance(node, rtl.Builtin):
            if node.name == "icc_pack" and "icc" in self.special_reg:
                info.reads.add(self.special_reg["icc"])
            for argument in node.args:
                self._collect_reads(argument, word, info)
            return
        raise AnalysisError("cannot analyze expression %r" % node)

    def _mentions_state(self, node):
        """Does the expression mention register/memory/cc state at all?"""
        if isinstance(node, (rtl.RegRead, rtl.MemRead, rtl.CCTest,
                             rtl.SpecialRead)):
            return True
        if isinstance(node, rtl.BinOp):
            return self._mentions_state(node.left) or \
                self._mentions_state(node.right)
        if isinstance(node, rtl.UnOp):
            return self._mentions_state(node.operand)
        if isinstance(node, rtl.CondExpr):
            return any(self._mentions_state(n)
                       for n in (node.cond, node.then, node.other))
        if isinstance(node, rtl.Builtin):
            return any(self._mentions_state(a) for a in node.args)
        return False

    def _contains_pc(self, node):
        if isinstance(node, rtl.SpecialRead):
            return node.name == "pc"
        if isinstance(node, rtl.BinOp):
            return self._contains_pc(node.left) or \
                self._contains_pc(node.right)
        if isinstance(node, rtl.UnOp):
            return self._contains_pc(node.operand)
        if isinstance(node, rtl.CondExpr):
            return any(self._contains_pc(n)
                       for n in (node.cond, node.then, node.other))
        if isinstance(node, rtl.Builtin):
            return any(self._contains_pc(a) for a in node.args)
        return False

    def _contains_reg(self, node, word):
        """Does the expression's value depend on register/memory state?"""
        if isinstance(node, rtl.RegRead):
            return self._resolve_reg(node, word) not in self.zero_regs
        if isinstance(node, (rtl.MemRead,)):
            return True
        if isinstance(node, rtl.BinOp):
            return self._contains_reg(node.left, word) or \
                self._contains_reg(node.right, word)
        if isinstance(node, rtl.UnOp):
            return self._contains_reg(node.operand, word)
        if isinstance(node, rtl.CondExpr):
            cond_value = self.const_eval(node.cond, word)
            if cond_value is None:
                return True
            chosen = node.then if cond_value else node.other
            return self._contains_reg(node.cond, word) or \
                self._contains_reg(chosen, word)
        if isinstance(node, rtl.Builtin):
            return any(self._contains_reg(a, word) for a in node.args)
        return False

    # ------------------------------------------------------------------
    def _walk_stmt(self, stmt, word, info, conditional, in_untaken):
        if isinstance(stmt, (rtl.Seq, rtl.Par)):
            for child in stmt.statements:
                self._walk_stmt(child, word, info, conditional, in_untaken)
            return
        if isinstance(stmt, rtl.Assign):
            self._walk_expr(stmt.value, word, info)
            target = stmt.target
            if isinstance(target, rtl.RegRead):
                self._note_fields(target.index, word, info)
                reg = self._resolve_reg(target, word)
                if reg not in self.zero_regs:
                    info.writes.add(reg)
                if self._contains_pc(stmt.value):
                    info.link_write = True
                return
            if isinstance(target, rtl.SpecialRead):
                if target.name == "npc":
                    info.npc_exprs.append((stmt.value, conditional))
                    if self._contains_reg(stmt.value, word):
                        info.indirect = True
                    return
                if target.name in self.special_reg:
                    info.writes.add(self.special_reg[target.name])
                    return
                raise AnalysisError("cannot assign %s" % target.name)
            if isinstance(target, rtl.MemRead):
                info.mem_store = True
                info.mem_width = target.width
                self._note_fields(target.addr, word, info)
                self._collect_reads(target.addr, word, info)
                return
            raise AnalysisError("bad assignment target %r" % target)
        if isinstance(stmt, rtl.IfStmt):
            # Conditions over register state stay runtime-conditional even
            # when the registers are hardwired zero (bne $0,$0 is still a
            # branch, as the handwritten layer classifies it).
            if self._mentions_state(stmt.cond):
                cond_value = None
            else:
                cond_value = self.const_eval(stmt.cond, word)
            self._note_fields(stmt.cond, word, info)
            if cond_value is not None:
                chosen = stmt.then if cond_value else stmt.other
                if chosen is not None:
                    self._walk_stmt(chosen, word, info, conditional,
                                    in_untaken)
                return
            self._collect_reads(stmt.cond, word, info)
            self._walk_stmt(stmt.then, word, info, True, in_untaken)
            if stmt.other is not None:
                self._walk_stmt(stmt.other, word, info, True, True)
            return
        if isinstance(stmt, rtl.Annul):
            if in_untaken:
                info.annul_untaken = True
            return
        if isinstance(stmt, rtl.Trap):
            info.trap = True
            self._note_fields(stmt.number, word, info)
            return
        raise AnalysisError("cannot analyze statement %r" % stmt)


def _binop(op, left, right):
    operations = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "&": lambda a, b: a & b,
        "|": lambda a, b: a | b,
        "^": lambda a, b: a ^ b,
        "<<": lambda a, b: a << b,
        ">>": lambda a, b: (a & 0xFFFFFFFF) >> b,
        "==": lambda a, b: 1 if a == b else 0,
        "!=": lambda a, b: 1 if a != b else 0,
        "<": lambda a, b: 1 if a < b else 0,
        "<=": lambda a, b: 1 if a <= b else 0,
        ">": lambda a, b: 1 if a > b else 0,
        ">=": lambda a, b: 1 if a >= b else 0,
    }
    return operations[op](left, right)
