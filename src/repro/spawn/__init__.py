"""spawn: derive the machine-specific layer from a machine description.

The paper's section 4: a concise description of instruction fields,
encodings (pattern matrices), and register-transfer semantics, from
which spawn derives the decode/encode/classify layer and even executable
semantics ("C++ code to replicate the computation" — here, Python).

Entry points:

* :func:`load_description` — parse a ``.spawn`` file into a
  :class:`~repro.spawn.parser.Description`;
* :func:`build_codec` — a :class:`~repro.isa.base.MachineCodec` built
  from the description (drop-in equivalent of the handwritten codec);
* :func:`generate_source` — emit a standalone generated Python module
  (the artifact whose size the conciseness experiment measures);
* :class:`~repro.spawn.executor.SpawnCPU` — execute programs directly
  from description semantics (used for differential testing against the
  handwritten simulator).
"""

import os

from repro.spawn.parser import Description, SpawnParseError, parse_description

_DESCRIPTION_DIR = os.path.join(os.path.dirname(__file__), "descriptions")
_CODEC_CACHE = {}


def description_path(arch):
    return os.path.join(_DESCRIPTION_DIR, arch + ".spawn")


def load_description(arch):
    """Parse the bundled machine description for *arch*."""
    with open(description_path(arch)) as handle:
        return parse_description(handle.read(), name=arch)


def build_codec(arch):
    """Build (and cache) the spawn-generated codec for *arch*."""
    codec = _CODEC_CACHE.get(arch)
    if codec is None:
        from repro.spawn.codec import SpawnCodec

        codec = SpawnCodec(load_description(arch))
        _CODEC_CACHE[arch] = codec
    return codec


def generate_source(arch):
    """Generate the standalone machine-layer module source for *arch*."""
    from repro.spawn.codegen import generate_module_source

    return generate_module_source(load_description(arch))


__all__ = [
    "Description",
    "SpawnParseError",
    "parse_description",
    "load_description",
    "build_codec",
    "generate_source",
    "description_path",
]
