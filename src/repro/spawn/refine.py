"""Convention refinement: the Figure 6 analog.

Spawn extracts everything a description can express, but subroutine and
system-call conventions are not encodings (the paper notes spawn "is
currently unaware of a system's subroutine and system call conventions,
so these instructions require additional processing").  This module is
that additional processing: it resolves SPARC's overloaded ``jmpl``,
MIPS's ``jr $ra`` return, system-call register effects, and branch-name
suffixes.
"""

from dataclasses import replace

from repro.isa.base import Category

SPARC_O7 = 15
SPARC_I7 = 31
SPARC_ICC = 32
MIPS_RA = 31
MIPS_V0 = 2


def refine_decoded(arch, decoded, word, codec):
    if arch == "sparc":
        return _refine_sparc(decoded, word)
    if arch == "mips":
        return _refine_mips(decoded, word)
    return decoded


def _field(decoded, name, default=None):
    for field_name, value in decoded.fields:
        if field_name == name:
            return value
    return default


def _refine_sparc(decoded, word):
    name = decoded.name
    if decoded.category is Category.BRANCH:
        aflag = _field(decoded, "aflag", 0)
        new_name = name + (",a" if aflag else "")
        changes = {"name": new_name}
        if decoded.cond == "a" and aflag:
            # ba,a annuls its delay slot unconditionally.
            changes["is_delayed"] = False
            changes["annul_untaken"] = False
        elif decoded.cond == "a":
            changes["annul_untaken"] = False
        return replace(decoded, **changes)
    if name == "jmpl":
        rd = _field(decoded, "rd", 0)
        rs1 = _field(decoded, "rs1", 0)
        simm13 = _field(decoded, "simm13")
        if rd == SPARC_O7:
            category = Category.CALL_INDIRECT
        elif rd == 0 and simm13 == 8 and rs1 in (SPARC_O7, SPARC_I7):
            category = Category.RETURN
        elif rd == 0 and simm13 is not None and rs1 == 0:
            category = Category.JUMP
        else:
            category = Category.JUMP_INDIRECT
        return replace(decoded, category=category)
    if name == "ta":
        # SunOS-style syscall convention: number in %g1, args in %o0-%o5,
        # result in %o0; condition codes are clobbered.
        return replace(
            decoded,
            reads=frozenset({1} | set(range(8, 14))),
            writes=frozenset({8, SPARC_ICC}),
        )
    return decoded


def _refine_mips(decoded, word):
    name = decoded.name
    if decoded.category is Category.BRANCH:
        return replace(decoded, cond=name[1:])
    if name == "jr":
        category = Category.RETURN if _field(decoded, "rs") == MIPS_RA \
            else Category.JUMP_INDIRECT
        return replace(decoded, category=category)
    if name == "jalr":
        return replace(decoded, category=Category.CALL_INDIRECT)
    if name == "syscall":
        return replace(
            decoded,
            reads=frozenset({MIPS_V0, 4, 5, 6, 7}),
            writes=frozenset({MIPS_V0}),
        )
    return decoded
