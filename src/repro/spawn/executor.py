"""Execute programs directly from spawn description semantics.

The paper notes spawn "even generates C++ code to replicate the
computation in most instructions".  Here the RTL semantics are compiled
into Python closures, and :class:`SpawnCPU` plugs into the simulator's
execution loop — so the same binary can run under the handwritten CPU
model and the description-derived one, and the test suite checks they
agree instruction-for-instruction.
"""

from repro.isa import bits
from repro.sim.machine import M32, SimulationError, _BaseCPU, \
    _sparc_cond_test
from repro.spawn import rtl
from repro.spawn.analyze import _binop
from repro.spawn.codec import SpawnCodec


class _State:
    """Unified architectural state for description-driven execution."""

    def __init__(self, cpu, arch):
        self.cpu = cpu
        self.arch = arch
        self.r = [0] * 32
        self.windows = []
        self.icc = (0, 0, 0, 0)
        self.y = 0
        self.hi = 0
        self.lo = 0

    def read_special(self, name):
        if name == "icc":
            n, z, v, c = self.icc
            return (n << 3) | (z << 2) | (v << 1) | c
        return getattr(self, name)

    def window_save(self, value):
        r = self.r
        self.windows.append((r[16:24], r[24:32]))
        r[24:32] = r[8:16]
        r[16:24] = [0] * 8
        r[8:16] = [0] * 8
        return value

    def window_restore(self, value):
        if not self.windows:
            raise SimulationError("register window underflow")
        r = self.r
        r[8:16] = r[24:32]
        saved_locals, saved_ins = self.windows.pop()
        r[16:24] = saved_locals
        r[24:32] = saved_ins
        return value


def _cc_add(a, b):
    result = (a + b) & M32
    n = result >> 31
    z = 1 if result == 0 else 0
    v = (~(a ^ b) & (a ^ result)) >> 31 & 1
    c = 1 if a + b > M32 else 0
    return n, z, v, c


def _cc_sub(a, b):
    result = (a - b) & M32
    n = result >> 31
    z = 1 if result == 0 else 0
    v = ((a ^ b) & (a ^ result)) >> 31 & 1
    c = 1 if b > a else 0
    return n, z, v, c


def _cc_logic(value):
    value &= M32
    return (value >> 31, 1 if value == 0 else 0, 0, 0)


def _signed_div(a, b):
    if b == 0:
        raise SimulationError("division by zero")
    sa, sb = bits.to_s32(a), bits.to_s32(b)
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return quotient, sa - quotient * sb


_BUILTINS = {
    "sra": lambda s, a, k: bits.to_s32(a) >> k,
    "sdiv": lambda s, a, b: _signed_div(a, b)[0],
    "udiv": lambda s, a, b: (_divzero_check(b), a // b)[1],
    "smul_lo": lambda s, a, b: bits.to_s32(a) * bits.to_s32(b),
    "smul_hi": lambda s, a, b: (bits.to_s32(a) * bits.to_s32(b)) >> 32,
    "umul_lo": lambda s, a, b: a * b,
    "umul_hi": lambda s, a, b: (a * b) >> 32,
    "mult_hi": lambda s, a, b: (bits.to_s32(a) * bits.to_s32(b)) >> 32,
    "mult_lo": lambda s, a, b: bits.to_s32(a) * bits.to_s32(b),
    "multu_hi": lambda s, a, b: (a * b) >> 32,
    "multu_lo": lambda s, a, b: a * b,
    "div_lo": lambda s, a, b: _signed_div(a, b)[0],
    "div_hi": lambda s, a, b: _signed_div(a, b)[1],
    "divu_lo": lambda s, a, b: (_divzero_check(b), a // b)[1],
    "divu_hi": lambda s, a, b: (_divzero_check(b), a % b)[1],
    "slt": lambda s, a, b: 1 if bits.to_s32(a) < bits.to_s32(b) else 0,
    "sltu": lambda s, a, b: 1 if (a & M32) < (b & M32) else 0,
    "window_save": lambda s, v: s.window_save(v),
    "window_restore": lambda s, v: s.window_restore(v),
    "icc_pack": lambda s: ((s.icc[0] << 23) | (s.icc[1] << 22)
                           | (s.icc[2] << 21) | (s.icc[3] << 20)),
    "icc_unpack": lambda s, v: v,  # handled specially on assignment
}


def _divzero_check(b):
    if b == 0:
        raise SimulationError("division by zero")
    return 0


class SpawnCPU(_BaseCPU):
    """CPU whose instruction semantics come from the machine description.

    Engine parity note: ``engine="spawn"`` deliberately stays on the
    per-instruction dispatch loop rather than growing a block-compiling
    twin — its purpose is validating the generated semantics against
    the handwritten model, where one-prepared-op-per-instruction is the
    property under test.  It inherits the shared ``_BaseCPU`` loops,
    so the dispatch-loop fixes (cumulative step budgets, ``run_until``
    pc/category counting) apply here unchanged; block compilation is
    an explicit non-goal for this engine.
    """

    def __init__(self, simulator):
        super().__init__(simulator)
        from repro.spawn import build_codec

        self.codec = build_codec(simulator.image.arch)
        self.state = _State(self, simulator.image.arch)
        from repro.binfmt import layout

        sp = 14 if simulator.image.arch == "sparc" else 29
        self.state.r[sp] = layout.STACK_BASE - 64
        self._prepared = {}

    # expose sparc-compatible attributes for harness inspection
    @property
    def r(self):
        return self.state.r

    def _prepare(self, inst):
        codec = self.codec
        inst_def = codec.match(inst.word)
        if inst_def is None:
            def illegal():
                raise SimulationError("illegal instruction 0x%08x at 0x%x"
                                      % (inst.word, self.pc))
            return illegal
        analyzer = codec.analyzer
        semantics = inst_def.semantics
        word = inst.word
        state = self.state
        cpu = self

        fields = {name: analyzer.field_value(name, word)
                  for name in analyzer.description.fields}
        bank_base = analyzer.bank_base
        zero_regs = analyzer.zero_regs

        def eval_expr(node):
            if isinstance(node, rtl.Const):
                return node.value
            if isinstance(node, rtl.FieldRef):
                return fields[node.name]
            if isinstance(node, rtl.RegRead):
                reg = bank_base[node.bank] + (eval_expr(node.index) & 31)
                if reg in zero_regs:
                    return 0
                return state.r[reg] if reg < 32 else 0
            if isinstance(node, rtl.SpecialRead):
                if node.name == "pc":
                    return cpu.pc
                if node.name == "npc":
                    return cpu.npc
                return state.read_special(node.name)
            if isinstance(node, rtl.MemRead):
                addr = eval_expr(node.addr) & M32
                return cpu.memory.load(addr, node.width, node.signed) & M32
            if isinstance(node, rtl.BinOp):
                return _binop(node.op, eval_expr(node.left) & M32,
                              eval_expr(node.right) & M32) \
                    if node.op in ("==", "!=") \
                    else _binop(node.op, eval_expr(node.left),
                                eval_expr(node.right))
            if isinstance(node, rtl.UnOp):
                value = eval_expr(node.operand)
                return -value if node.op == "-" else ~value
            if isinstance(node, rtl.CondExpr):
                return eval_expr(node.then) if eval_expr(node.cond) \
                    else eval_expr(node.other)
            if isinstance(node, rtl.CCTest):
                n, z, v, c = state.icc
                return 1 if _sparc_cond_test(node.cond)(n, z, v, c) else 0
            if isinstance(node, rtl.Builtin):
                handler = _BUILTINS.get(node.name)
                if handler is None:
                    raise SimulationError("no builtin %s" % node.name)
                return handler(state,
                               *(eval_expr(a) & M32 for a in node.args))
            raise SimulationError("cannot evaluate %r" % node)

        outcome = {}

        def exec_stmt(stmt):
            if isinstance(stmt, (rtl.Seq, rtl.Par)):
                for child in stmt.statements:
                    exec_stmt(child)
                return
            if isinstance(stmt, rtl.Assign):
                target = stmt.target
                if isinstance(target, rtl.SpecialRead) \
                        and target.name == "npc":
                    outcome["target"] = eval_expr(stmt.value) & M32
                    return
                if isinstance(target, rtl.SpecialRead) \
                        and target.name == "icc" \
                        and isinstance(stmt.value, rtl.Builtin):
                    name = stmt.value.name
                    args = [eval_expr(a) & M32 for a in stmt.value.args]
                    if name == "cc_add":
                        state.icc = _cc_add(*args)
                    elif name == "cc_sub":
                        state.icc = _cc_sub(*args)
                    elif name == "cc_logic":
                        state.icc = _cc_logic(args[0])
                    elif name == "icc_unpack":
                        packed = args[0]
                        state.icc = ((packed >> 23) & 1, (packed >> 22) & 1,
                                     (packed >> 21) & 1, (packed >> 20) & 1)
                    else:
                        raise SimulationError("unsupported icc assignment")
                    return
                value = eval_expr(stmt.value) & M32
                if isinstance(target, rtl.RegRead):
                    reg = bank_base[target.bank] + \
                        (eval_expr(target.index) & 31)
                    if reg not in zero_regs and reg < 32:
                        state.r[reg] = value
                    return
                if isinstance(target, rtl.SpecialRead):
                    if target.name == "icc":
                        if isinstance(stmt.value, rtl.Builtin):
                            name = stmt.value.name
                            args = [eval_expr(a) & M32
                                    for a in stmt.value.args]
                            if name == "cc_add":
                                state.icc = _cc_add(*args)
                                return
                            if name == "cc_sub":
                                state.icc = _cc_sub(*args)
                                return
                            if name == "cc_logic":
                                state.icc = _cc_logic(args[0])
                                return
                            if name == "icc_unpack":
                                packed = args[0]
                                state.icc = ((packed >> 23) & 1,
                                             (packed >> 22) & 1,
                                             (packed >> 21) & 1,
                                             (packed >> 20) & 1)
                                return
                        raise SimulationError("unsupported icc assignment")
                    setattr(state, target.name, value)
                    return
                if isinstance(target, rtl.MemRead):
                    addr = eval_expr(target.addr) & M32
                    cpu.memory.store(addr, target.width, value)
                    return
                raise SimulationError("bad assignment %r" % stmt)
            if isinstance(stmt, rtl.IfStmt):
                if eval_expr(stmt.cond):
                    exec_stmt(stmt.then)
                elif stmt.other is not None:
                    exec_stmt(stmt.other)
                return
            if isinstance(stmt, rtl.Annul):
                outcome["annul"] = True
                return
            if isinstance(stmt, rtl.Trap):
                if self.codec.arch == "sparc":
                    number = state.r[1]
                    args = state.r[8:14]
                    state.r[8] = cpu.simulator.syscalls.dispatch(
                        number, args) & M32
                else:
                    number = state.r[2]
                    args = state.r[4:8]
                    state.r[2] = cpu.simulator.syscalls.dispatch(
                        number, args) & M32
                return
            raise SimulationError("cannot execute %r" % stmt)

        annul_always = (inst.is_delayed is False
                        and inst.category.name == "BRANCH")

        def run():
            outcome.clear()
            exec_stmt(semantics)
            target = outcome.get("target")
            if target is not None:
                if target & 3:
                    raise SimulationError("misaligned jump to 0x%x" % target)
                if annul_always:
                    cpu._transfer_annulled(target)
                else:
                    cpu._transfer(target)
            elif outcome.get("annul"):
                cpu._skip_delay()
            else:
                cpu._advance()
        return run
