"""Bit-manipulation helpers shared by codecs, assemblers, and the simulator.

All machine words in this project are 32 bits wide.  Values are kept as
non-negative Python ints in [0, 2**32) except where a function explicitly
returns a signed interpretation.
"""

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF


def mask(width):
    """Return a mask of *width* low bits."""
    return (1 << width) - 1


def extract(word, lo, hi):
    """Extract bits lo..hi (inclusive, lo <= hi, bit 0 = LSB) as unsigned."""
    if lo > hi:
        raise ValueError("bad bit range %d:%d" % (lo, hi))
    return (word >> lo) & mask(hi - lo + 1)


def extract_signed(word, lo, hi):
    """Extract bits lo..hi as a two's-complement signed value."""
    value = extract(word, lo, hi)
    return sign_extend(value, hi - lo + 1)


def insert(word, lo, hi, value):
    """Return *word* with bits lo..hi replaced by *value* (truncated)."""
    if lo > hi:
        raise ValueError("bad bit range %d:%d" % (lo, hi))
    field_mask = mask(hi - lo + 1)
    word &= ~(field_mask << lo) & WORD_MASK
    return word | ((value & field_mask) << lo)


def sign_extend(value, width):
    """Sign-extend a *width*-bit value to a Python int."""
    sign_bit = 1 << (width - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def to_u32(value):
    """Truncate a Python int to an unsigned 32-bit value."""
    return value & WORD_MASK


def to_s32(value):
    """Truncate a Python int to 32 bits and interpret as signed."""
    value &= WORD_MASK
    return value - 0x100000000 if value & 0x80000000 else value


def fits_signed(value, width):
    """True if *value* is representable as a signed *width*-bit field."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return lo <= value <= hi


def fits_unsigned(value, width):
    """True if *value* is representable as an unsigned *width*-bit field."""
    return 0 <= value < (1 << width)


def words_to_bytes(words):
    """Pack a sequence of 32-bit words into big-endian bytes."""
    out = bytearray()
    for word in words:
        out += to_u32(word).to_bytes(4, "big")
    return bytes(out)


def bytes_to_words(data):
    """Unpack big-endian bytes (multiple of 4 long) into 32-bit words."""
    if len(data) % 4:
        raise ValueError("byte string length %d is not word aligned" % len(data))
    return [int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)]
