"""Handwritten SPARC V8 subset codec.

This module is the analog of EEL's handwritten architecture-specific layer
(2,268 lines of C++ in the paper).  It decodes, encodes, classifies, and
disassembles the instruction subset used throughout this reproduction.

Encodings follow the SPARC V8 manual:

* format 1 (op=1):   ``call`` with a 30-bit word displacement.
* format 2 (op=0):   ``sethi`` (op2=0b100) and ``Bicc`` (op2=0b010) with
  annul bit, 4-bit condition, 22-bit word displacement.
* format 3 (op=2):   ALU, ``jmpl``, ``save``/``restore``, ``ta``.
* format 3 (op=3):   loads and stores.

Conventions baked in (paper Figure 6): ``jmpl`` is overloaded as indirect
call (rd = %o7), return (rs1 in {%o7, %i7}, imm 8), direct jump to a
literal (rs1 = %g0, immediate form), or indirect jump.
"""

from repro.isa import bits
from repro.isa.base import Category, DecodedInst, MachineCodec, RegisterSet, SpanError

# Integer registers: globals, outs, locals, ins.
INT_REG_NAMES = tuple(
    "%" + bank + str(n) for bank in ("g", "o", "l", "i") for n in range(8)
)

REG_G0 = 0
REG_O7 = 15  # call return address
REG_SP = 14  # %o6
REG_FP = 30  # %i6
REG_I7 = 31
REG_ICC = 32  # integer condition codes (pseudo register)
REG_Y = 33

SPARC_REGS = RegisterSet(
    "sparc",
    INT_REG_NAMES,
    ["%icc", "%y"],
    zero_regs={REG_G0},
)

# Branch condition mnemonics by cond field value (Bicc).
BRANCH_CONDS = (
    "n", "e", "le", "l", "leu", "cs", "neg", "vs",
    "a", "ne", "g", "ge", "gu", "cc", "pos", "vc",
)
COND_NUMBER = {name: number for number, name in enumerate(BRANCH_CONDS)}
# Condition inversion: cond k inverts to cond k ^ 8 on SPARC.
INVERSE_COND = {name: BRANCH_CONDS[number ^ 8] for number, name in enumerate(BRANCH_CONDS)}

# op3 values for format-3 op=2 (arithmetic) instructions.
ALU_OP3 = {
    "add": 0x00, "and": 0x01, "or": 0x02, "xor": 0x03,
    "sub": 0x04, "andn": 0x05, "orn": 0x06, "xnor": 0x07,
    "umul": 0x0A, "smul": 0x0B, "udiv": 0x0E, "sdiv": 0x0F,
    "addcc": 0x10, "andcc": 0x11, "orcc": 0x12, "xorcc": 0x13,
    "subcc": 0x14,
    "sll": 0x25, "srl": 0x26, "sra": 0x27,
}
ALU_BY_OP3 = {op3: name for name, op3 in ALU_OP3.items()}

OP3_JMPL = 0x38
OP3_TRAP = 0x3A
OP3_SAVE = 0x3C
OP3_RESTORE = 0x3D
# Deviation from SPARC V8: rd/wr %psr are unprivileged here so edited code
# can save and restore condition codes (the simulator has no privilege
# levels).  Documented in DESIGN.md.
OP3_RDPSR = 0x29
OP3_WRPSR = 0x31

# op3 values for format-3 op=3 (memory) instructions: name -> (op3, width, signed, is_store)
MEM_OPS = {
    "ld": (0x00, 4, False, False),
    "ldub": (0x01, 1, False, False),
    "lduh": (0x02, 2, False, False),
    "ldsb": (0x09, 1, True, False),
    "ldsh": (0x0A, 2, True, False),
    "st": (0x04, 4, False, True),
    "stb": (0x05, 1, False, True),
    "sth": (0x06, 2, False, True),
}
MEM_BY_OP3 = {spec[0]: (name,) + spec[1:] for name, spec in MEM_OPS.items()}

TRAP_ALWAYS_COND = 8  # "ta"

NOP_WORD = 0x01000000  # sethi 0, %g0


def _branch_cond_of(name):
    """Condition mnemonic of a branch instruction name, or None.

    Accepts names like ``bne``, ``ba,a``; rejects non-branch mnemonics.
    """
    if not name.startswith("b"):
        return None
    base = name[1:]
    if base.endswith(",a"):
        base = base[:-2]
    return base if base in COND_NUMBER else None


def _fields_tuple(**kwargs):
    return tuple(sorted(kwargs.items()))


def _live(regs):
    """Register set for liveness: the hardwired zero register never counts."""
    return frozenset(r for r in regs if r != REG_G0)


class SparcCodec(MachineCodec):
    """Decode/encode for the SPARC V8 subset."""

    arch = "sparc"
    regs = SPARC_REGS

    _singleton = None

    @classmethod
    def instance(cls):
        if cls._singleton is None:
            cls._singleton = cls()
        return cls._singleton

    @property
    def nop_word(self):
        return NOP_WORD

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decode_uncached(self, word):
        op = bits.extract(word, 30, 31)
        if op == 1:
            return self._decode_call(word)
        if op == 0:
            return self._decode_format2(word)
        if op == 2:
            return self._decode_alu(word)
        return self._decode_memory(word)

    def _decode_call(self, word):
        disp30 = bits.extract_signed(word, 0, 29)
        return DecodedInst(
            word=word,
            name="call",
            category=Category.CALL,
            fields=_fields_tuple(disp30=disp30),
            reads=frozenset(),
            writes=_live({REG_O7}),
            is_delayed=True,
            operands=("disp30",),
        )

    def _decode_format2(self, word):
        op2 = bits.extract(word, 22, 24)
        rd = bits.extract(word, 25, 29)
        if op2 == 0b100:
            imm22 = bits.extract(word, 0, 21)
            return DecodedInst(
                word=word,
                name="sethi",
                category=Category.COMPUTE,
                fields=_fields_tuple(rd=rd, imm22=imm22),
                reads=frozenset(),
                writes=_live({rd}),
                operands=("imm22", "rd"),
            )
        if op2 == 0b010:
            cond = bits.extract(word, 25, 28)
            aflag = bits.extract(word, 29, 29)
            disp22 = bits.extract_signed(word, 0, 21)
            cond_name = BRANCH_CONDS[cond]
            # ba,a annuls its delay slot unconditionally: model as undelayed.
            annulled_always = aflag == 1 and cond_name == "a"
            reads = frozenset() if cond_name in ("a", "n") else frozenset({REG_ICC})
            return DecodedInst(
                word=word,
                name="b" + cond_name + (",a" if aflag else ""),
                category=Category.BRANCH,
                fields=_fields_tuple(cond=cond, aflag=aflag, disp22=disp22),
                reads=reads,
                writes=frozenset(),
                is_delayed=not annulled_always,
                annul_untaken=bool(aflag) and not annulled_always,
                cond=cond_name,
                operands=("disp22",),
            )
        return self._invalid(word)

    def _decode_alu(self, word):
        op3 = bits.extract(word, 19, 24)
        rd = bits.extract(word, 25, 29)
        rs1 = bits.extract(word, 14, 18)
        iflag = bits.extract(word, 13, 13)
        rs2 = bits.extract(word, 0, 4)
        simm13 = bits.extract_signed(word, 0, 12)

        src_reads = {rs1} if iflag else {rs1, rs2}
        if iflag:
            fields = _fields_tuple(rd=rd, rs1=rs1, iflag=1, simm13=simm13)
            operands = ("rs1", "simm13", "rd")
        else:
            fields = _fields_tuple(rd=rd, rs1=rs1, iflag=0, rs2=rs2)
            operands = ("rs1", "rs2", "rd")

        if op3 in ALU_BY_OP3:
            name = ALU_BY_OP3[op3]
            writes = {rd}
            reads = set(src_reads)
            if name.endswith("cc"):
                writes.add(REG_ICC)
            if name in ("umul", "smul"):
                writes.add(REG_Y)
            # Deviation from SPARC V8: udiv/sdiv here divide 32-bit rs1
            # (ignoring Y as the upper dividend half), so they do not
            # read %y.  Documented in DESIGN.md.
            return DecodedInst(
                word=word,
                name=name,
                category=Category.COMPUTE,
                fields=fields,
                reads=_live(reads),
                writes=_live(writes),
                operands=operands,
            )
        if op3 == OP3_JMPL:
            return self._decode_jmpl(word, rd, rs1, iflag, rs2, simm13, fields, src_reads)
        if op3 == OP3_TRAP:
            cond = bits.extract(word, 25, 28)
            if cond != TRAP_ALWAYS_COND:
                return self._invalid(word)
            trap_num = bits.extract(word, 0, 6)
            return DecodedInst(
                word=word,
                name="ta",
                category=Category.SYSTEM,
                fields=_fields_tuple(trap_num=trap_num),
                # System calls read the syscall number and argument registers
                # and write the result register; be conservative.
                reads=_live({1} | set(range(8, 14))),  # %g1, %o0-%o5
                writes=_live({8, REG_ICC}),  # %o0
                operands=("trap_num",),
            )
        if op3 == OP3_RDPSR:
            return DecodedInst(
                word=word,
                name="rdpsr",
                category=Category.COMPUTE,
                fields=_fields_tuple(rd=rd),
                reads=frozenset({REG_ICC}),
                writes=_live({rd}),
                operands=("rd",),
            )
        if op3 == OP3_WRPSR:
            return DecodedInst(
                word=word,
                name="wrpsr",
                category=Category.COMPUTE,
                fields=_fields_tuple(rs1=rs1),
                reads=_live({rs1}),
                writes=frozenset({REG_ICC}),
                operands=("rs1",),
            )
        if op3 == OP3_SAVE or op3 == OP3_RESTORE:
            name = "save" if op3 == OP3_SAVE else "restore"
            return DecodedInst(
                word=word,
                name=name,
                category=Category.COMPUTE,
                fields=fields,
                reads=_live(src_reads),
                writes=_live({rd}),
                operands=operands,
            )
        return self._invalid(word)

    def _decode_jmpl(self, word, rd, rs1, iflag, rs2, simm13, fields, src_reads):
        """Resolve the SPARC jmpl overloads (paper Figure 6)."""
        is_delayed = True
        if rd == REG_O7:
            category = Category.CALL_INDIRECT
        elif rd == REG_G0 and iflag and simm13 == 8 and rs1 in (REG_O7, REG_I7):
            category = Category.RETURN
        elif rd == REG_G0 and iflag and rs1 == REG_G0:
            # Jump to a literal address: statically known target.
            category = Category.JUMP
        else:
            category = Category.JUMP_INDIRECT
        return DecodedInst(
            word=word,
            name="jmpl",
            category=category,
            fields=fields,
            reads=_live(src_reads),
            writes=_live({rd}),
            is_delayed=is_delayed,
            operands=("rs1", "simm13" if iflag else "rs2", "rd"),
        )

    def _decode_memory(self, word):
        op3 = bits.extract(word, 19, 24)
        spec = MEM_BY_OP3.get(op3)
        if spec is None:
            return self._invalid(word)
        name, width, signed, is_store = spec
        rd = bits.extract(word, 25, 29)
        rs1 = bits.extract(word, 14, 18)
        iflag = bits.extract(word, 13, 13)
        rs2 = bits.extract(word, 0, 4)
        simm13 = bits.extract_signed(word, 0, 12)
        addr_reads = {rs1} if iflag else {rs1, rs2}
        if iflag:
            fields = _fields_tuple(rd=rd, rs1=rs1, iflag=1, simm13=simm13)
        else:
            fields = _fields_tuple(rd=rd, rs1=rs1, iflag=0, rs2=rs2)
        if is_store:
            reads = addr_reads | {rd}
            writes = set()
            category = Category.STORE
        else:
            reads = addr_reads
            writes = {rd}
            category = Category.LOAD
        return DecodedInst(
            word=word,
            name=name,
            category=category,
            fields=fields,
            reads=_live(reads),
            writes=_live(writes),
            mem_width=width,
            mem_signed=signed,
            operands=("mem", "rd") if not is_store else ("rd", "mem"),
        )

    def _invalid(self, word):
        return DecodedInst(
            word=word,
            name=".word",
            category=Category.INVALID,
            fields=_fields_tuple(value=word),
            reads=frozenset(),
            writes=frozenset(),
        )

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, name, **fields):
        if name == "call":
            disp30 = fields["disp30"]
            if not bits.fits_signed(disp30, 30):
                raise SpanError("call displacement %d out of range" % disp30)
            return bits.to_u32((1 << 30) | (disp30 & bits.mask(30)))
        if name == "sethi":
            word = 0
            word = bits.insert(word, 22, 24, 0b100)
            word = bits.insert(word, 25, 29, fields["rd"])
            word = bits.insert(word, 0, 21, fields["imm22"])
            return word
        if _branch_cond_of(name) is not None:
            return self._encode_branch(name, fields)
        if name in ALU_OP3:
            return self._encode_format3(2, ALU_OP3[name], fields)
        if name == "jmpl":
            return self._encode_format3(2, OP3_JMPL, fields)
        if name == "save":
            return self._encode_format3(2, OP3_SAVE, fields)
        if name == "restore":
            return self._encode_format3(2, OP3_RESTORE, fields)
        if name == "rdpsr":
            word = bits.insert(0, 30, 31, 2)
            word = bits.insert(word, 19, 24, OP3_RDPSR)
            word = bits.insert(word, 25, 29, fields["rd"])
            return word
        if name == "wrpsr":
            word = bits.insert(0, 30, 31, 2)
            word = bits.insert(word, 19, 24, OP3_WRPSR)
            word = bits.insert(word, 14, 18, fields["rs1"])
            return word
        if name == "ta":
            word = bits.insert(0, 30, 31, 2)
            word = bits.insert(word, 19, 24, OP3_TRAP)
            word = bits.insert(word, 25, 28, TRAP_ALWAYS_COND)
            word = bits.insert(word, 13, 13, 1)
            word = bits.insert(word, 0, 6, fields.get("trap_num", 0))
            return word
        if name in MEM_OPS:
            return self._encode_format3(3, MEM_OPS[name][0], fields)
        raise ValueError("cannot encode unknown instruction %r" % name)

    def _encode_branch(self, name, fields):
        base = _branch_cond_of(name)
        aflag = 1 if name.endswith(",a") else 0
        if base is None:
            raise ValueError("unknown branch condition %r" % name)
        disp22 = fields["disp22"]
        if not bits.fits_signed(disp22, 22):
            raise SpanError("branch displacement %d out of range" % disp22)
        word = bits.insert(0, 22, 24, 0b010)
        word = bits.insert(word, 25, 28, COND_NUMBER[base])
        word = bits.insert(word, 29, 29, fields.get("aflag", aflag))
        word = bits.insert(word, 0, 21, disp22)
        return word

    def _encode_format3(self, op, op3, fields):
        word = bits.insert(0, 30, 31, op)
        word = bits.insert(word, 19, 24, op3)
        word = bits.insert(word, 25, 29, fields.get("rd", 0))
        word = bits.insert(word, 14, 18, fields.get("rs1", 0))
        if "simm13" in fields:
            simm13 = fields["simm13"]
            if not bits.fits_signed(simm13, 13):
                raise SpanError("simm13 value %d out of range" % simm13)
            word = bits.insert(word, 13, 13, 1)
            word = bits.insert(word, 0, 12, simm13)
        else:
            word = bits.insert(word, 13, 13, 0)
            word = bits.insert(word, 0, 4, fields.get("rs2", 0))
        return word

    # ------------------------------------------------------------------
    # Control-flow helpers
    # ------------------------------------------------------------------
    def control_target(self, inst, pc):
        """Static target of a direct transfer at *pc*, or None."""
        if inst.name == "call":
            return bits.to_u32(pc + (inst.get_field("disp30") << 2))
        if inst.category is Category.BRANCH:
            return bits.to_u32(pc + (inst.get_field("disp22") << 2))
        if inst.name == "jmpl" and inst.category is Category.JUMP:
            return bits.to_u32(inst.get_field("simm13"))
        return None

    def with_control_target(self, word, pc, target):
        inst = self.decode(word)
        offset = bits.to_s32(target - pc)
        if inst.name == "call":
            if offset & 3:
                raise SpanError("misaligned call target")
            return bits.insert(word, 0, 29, offset >> 2)
        if inst.category is Category.BRANCH:
            if offset & 3:
                raise SpanError("misaligned branch target")
            if not bits.fits_signed(offset >> 2, 22):
                raise SpanError("branch displacement out of span")
            return bits.insert(word, 0, 21, offset >> 2)
        if inst.name == "jmpl" and inst.category is Category.JUMP:
            if not bits.fits_signed(target, 13):
                raise SpanError("literal jump target out of span")
            return bits.insert(word, 0, 12, target)
        raise ValueError("instruction %s has no direct target" % inst.name)

    def invert_branch(self, word):
        """Return *word* with its branch condition inverted."""
        inst = self.decode(word)
        if inst.category is not Category.BRANCH:
            raise ValueError("not a branch: %s" % inst.name)
        cond = inst.get_field("cond")
        return bits.insert(word, 25, 28, cond ^ 8)

    def clear_annul(self, word):
        """Return the non-annulling variant of a branch word."""
        inst = self.decode(word)
        if inst.category is not Category.BRANCH:
            raise ValueError("not a branch: %s" % inst.name)
        return bits.insert(word, 29, 29, 0)

    # ------------------------------------------------------------------
    # Disassembly
    # ------------------------------------------------------------------
    def disassemble(self, word, pc=None):
        inst = self.decode(word)
        name = inst.name
        if inst.category is Category.INVALID:
            return ".word 0x%08x" % word
        if name == "call":
            target = self.control_target(inst, pc) if pc is not None else None
            if target is not None:
                return "call 0x%x" % target
            return "call .%+d" % (inst.get_field("disp30") << 2)
        if inst.category is Category.BRANCH:
            target = self.control_target(inst, pc) if pc is not None else None
            where = "0x%x" % target if target is not None else (
                ".%+d" % (inst.get_field("disp22") << 2))
            return "%s %s" % (name, where)
        if name == "sethi":
            if inst.get_field("rd") == 0 and inst.get_field("imm22") == 0:
                return "nop"
            return "sethi %%hi(0x%x), %s" % (
                inst.get_field("imm22") << 10,
                self.regs.name(inst.get_field("rd")),
            )
        if name == "ta":
            return "ta %d" % inst.get_field("trap_num")
        if name in MEM_OPS:
            addr = self._format_address(inst)
            rd = self.regs.name(inst.get_field("rd"))
            if inst.category is Category.STORE:
                return "%s %s, [%s]" % (name, rd, addr)
            return "%s [%s], %s" % (name, addr, rd)
        if name == "jmpl":
            addr = self._format_address(inst)
            rd = inst.get_field("rd")
            if inst.category is Category.RETURN:
                return "ret" if inst.get_field("rs1") == REG_I7 else "retl"
            if rd == REG_O7:
                return "call %s" % addr
            if rd == REG_G0:
                return "jmp %s" % addr
            return "jmpl %s, %s" % (addr, self.regs.name(rd))
        if name == "rdpsr":
            return "rd %%psr, %s" % self.regs.name(inst.get_field("rd"))
        if name == "wrpsr":
            return "wr %s, %%psr" % self.regs.name(inst.get_field("rs1"))
        # ALU / save / restore
        rs1 = self.regs.name(inst.get_field("rs1"))
        rd = self.regs.name(inst.get_field("rd"))
        if inst.has_field("simm13"):
            src2 = str(inst.get_field("simm13"))
        else:
            src2 = self.regs.name(inst.get_field("rs2"))
        return "%s %s, %s, %s" % (name, rs1, src2, rd)

    def _format_address(self, inst):
        rs1 = inst.get_field("rs1")
        if inst.has_field("simm13"):
            simm13 = inst.get_field("simm13")
            if rs1 == REG_G0:
                return "0x%x" % (simm13 & 0xFFFFFFFF)
            if simm13 == 0:
                return self.regs.name(rs1)
            return "%s %+d" % (self.regs.name(rs1), simm13)
        rs2 = inst.get_field("rs2")
        if rs1 == REG_G0:
            return self.regs.name(rs2)
        if rs2 == REG_G0:
            return self.regs.name(rs1)
        return "%s + %s" % (self.regs.name(rs1), self.regs.name(rs2))
