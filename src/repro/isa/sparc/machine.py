"""SPARC machine conventions: the system-dependent fragments EEL needs.

Register roles, constant synthesis (sethi/or), the Figure-5 counter
snippet, spill code, and long-span jumps all live here so that the
machine-independent core and the portable tools never encode SPARC
knowledge themselves.
"""

from repro.isa import bits
from repro.isa.base import MachineConventions, SpanError
from repro.isa.sparc.handwritten import (
    REG_FP,
    REG_G0,
    REG_ICC,
    REG_O7,
    REG_SP,
    SparcCodec,
)

# Scratch-spill slots live below the stack pointer; the simulator has no
# asynchronous traps, so the area below %sp is never clobbered.
SPILL_BASE_OFFSET = -64


def hi22(value):
    """Upper 22 bits of a 32-bit constant, as sethi's imm22 field."""
    return (value >> 10) & bits.mask(22)


def lo10(value):
    """Low 10 bits of a 32-bit constant, for the or/ld/st immediate."""
    return value & bits.mask(10)


class SparcConventions(MachineConventions):
    arch = "sparc"

    sp_reg = REG_SP
    fp_reg = REG_FP
    retaddr_reg = REG_O7
    retval_reg = 8  # %o0
    syscall_num_reg = 1  # %g1
    # Scratch register the layout engine may clobber in long-branch
    # stubs (sethi/jmpl needs a base register).  %g1 is the SPARC ABI
    # "assembler temporary": dead across control transfers except in
    # the mov-%g1/ta syscall idiom, where the jump can only land on
    # the mov (block leaders), never between mov and ta.
    assembler_temp = 1  # %g1
    arg_regs = (8, 9, 10, 11, 12, 13)  # %o0-%o5
    cc_regs = frozenset({REG_ICC})

    # Registers a snippet may scavenge when liveness proves them dead.
    # Locals first (they are most often dead), then outs, then the
    # application globals %g2-%g4 (reserved for applications by the
    # SPARC ABI and untouched by our compiler and runtime), then %g1.
    scavenge_candidates = (tuple(range(16, 24)) + tuple(range(8, 14))
                           + (2, 3, 4, 1))

    # Placeholder registers used when writing snippet bodies; the snippet
    # register allocator rebinds them (paper section 3.5).
    placeholder_regs = (16, 17, 18, 19)  # %l0-%l3

    @property
    def codec(self):
        return SparcCodec.instance()

    # ------------------------------------------------------------------
    def load_const(self, reg, value):
        value = bits.to_u32(value)
        codec = self.codec
        if bits.fits_signed(bits.to_s32(value), 13):
            return [codec.encode("or", rd=reg, rs1=REG_G0, simm13=bits.to_s32(value))]
        words = [codec.encode("sethi", rd=reg, imm22=hi22(value))]
        if lo10(value):
            words.append(codec.encode("or", rd=reg, rs1=reg, simm13=lo10(value)))
        return words

    def counter_increment(self, counter_addr, tmp_addr_reg, tmp_val_reg):
        """The Figure 5 snippet: load, increment, and store a counter."""
        codec = self.codec
        return [
            codec.encode("sethi", rd=tmp_addr_reg, imm22=hi22(counter_addr)),
            codec.encode("ld", rd=tmp_val_reg, rs1=tmp_addr_reg,
                         simm13=lo10(counter_addr)),
            codec.encode("add", rd=tmp_val_reg, rs1=tmp_val_reg, simm13=1),
            codec.encode("st", rd=tmp_val_reg, rs1=tmp_addr_reg,
                         simm13=lo10(counter_addr)),
        ]

    def spill(self, reg, slot):
        offset = SPILL_BASE_OFFSET - 4 * slot
        return [self.codec.encode("st", rd=reg, rs1=REG_SP, simm13=offset)]

    def unspill(self, reg, slot):
        offset = SPILL_BASE_OFFSET - 4 * slot
        return [self.codec.encode("ld", rd=reg, rs1=REG_SP, simm13=offset)]

    def save_cc(self, reg):
        """Words that copy the condition codes into *reg*."""
        return [self.codec.encode("rdpsr", rd=reg)]

    def restore_cc(self, reg):
        """Words that restore the condition codes from *reg*."""
        return [self.codec.encode("wrpsr", rs1=reg)]

    def long_jump(self, scratch_reg, target):
        """sethi/jmpl pair reaching any 32-bit target; delay slot is a nop."""
        codec = self.codec
        return [
            codec.encode("sethi", rd=scratch_reg, imm22=hi22(target)),
            codec.encode("jmpl", rd=REG_G0, rs1=scratch_reg, simm13=lo10(target)),
            codec.nop_word,
        ]

    def direct_jump(self, pc, target):
        """An unconditional one-word branch (plus its delay slot is the
        caller's concern); raises SpanError beyond +-8MB."""
        offset = bits.to_s32(target - pc)
        if offset & 3 or not bits.fits_signed(offset >> 2, 22):
            raise SpanError("ba target out of span")
        return self.codec.encode("ba", disp22=offset >> 2)

    def direct_jump_annulled(self, pc, target):
        """ba,a: jump whose (absent) delay slot never executes."""
        offset = bits.to_s32(target - pc)
        if offset & 3 or not bits.fits_signed(offset >> 2, 22):
            raise SpanError("ba,a target out of span")
        return self.codec.encode("ba,a", disp22=offset >> 2)

    def call_word(self, pc, target):
        offset = bits.to_s32(target - pc)
        if offset & 3:
            raise SpanError("misaligned call target")
        return self.codec.encode("call", disp30=offset >> 2)

    # ------------------------------------------------------------------
    def rebind_registers(self, words, mapping):
        """Rewrite register fields of snippet *words* per *mapping*."""
        if not mapping:
            return list(words)
        out = []
        for word in words:
            op = bits.extract(word, 30, 31)
            if op in (2, 3):
                word = self._rebind_format3(word, mapping)
            elif op == 0 and bits.extract(word, 22, 24) == 0b100:  # sethi
                rd = bits.extract(word, 25, 29)
                if rd in mapping:
                    word = bits.insert(word, 25, 29, mapping[rd])
            out.append(word)
        return out

    def _rebind_format3(self, word, mapping):
        from repro.isa.sparc.handwritten import OP3_RDPSR, OP3_TRAP, OP3_WRPSR

        op3 = bits.extract(word, 19, 24)
        if bits.extract(word, 30, 31) == 2 and op3 == OP3_TRAP:
            return word
        rd = bits.extract(word, 25, 29)
        rs1 = bits.extract(word, 14, 18)
        if bits.extract(word, 30, 31) == 2 and op3 == OP3_WRPSR:
            if rs1 in mapping:
                word = bits.insert(word, 14, 18, mapping[rs1])
            return word
        if rd in mapping and not (
            bits.extract(word, 30, 31) == 2 and op3 == OP3_WRPSR
        ):
            word = bits.insert(word, 25, 29, mapping[rd])
        if rs1 in mapping and not (
            bits.extract(word, 30, 31) == 2 and op3 == OP3_RDPSR
        ):
            word = bits.insert(word, 14, 18, mapping[rs1])
        if not bits.extract(word, 13, 13):  # register form: rewrite rs2
            rs2 = bits.extract(word, 0, 4)
            if rs2 in mapping:
                word = bits.insert(word, 0, 4, mapping[rs2])
        return word
