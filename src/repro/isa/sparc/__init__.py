"""SPARC V8 subset: handwritten codec and machine conventions."""
