"""Handwritten MIPS-I-like subset codec.

The second architecture, used to demonstrate EEL's machine independence
(the paper's earlier qpt ran on MIPS under Ultrix).  Differences from
SPARC that exercise distinct code paths:

* branch displacements are relative to the delay slot (pc + 4);
* ``j``/``jal`` use 26-bit pseudo-absolute region targets;
* branch-likely instructions (``beql`` etc.) are the annulled variants;
* there are no condition codes: compare-and-branch reads registers.
"""

from repro.isa import bits
from repro.isa.base import Category, DecodedInst, MachineCodec, RegisterSet, SpanError

INT_REG_NAMES = (
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
)

REG_ZERO = 0
REG_AT = 1
REG_V0 = 2
REG_SP = 29
REG_RA = 31
REG_HI = 32
REG_LO = 33

MIPS_REGS = RegisterSet("mips", INT_REG_NAMES, ["$hi", "$lo"], zero_regs={REG_ZERO})

# R-type (opcode 0) funct values: name -> (funct, kind)
# kind: "shift" (rd, rt, shamt), "reg3" (rd, rs, rt), "jr", "jalr",
# "syscall", "mfhi"/"mflo", "multdiv"
R_TYPE = {
    "sll": (0x00, "shift"),
    "srl": (0x02, "shift"),
    "sra": (0x03, "shift"),
    "sllv": (0x04, "reg3v"),
    "srlv": (0x06, "reg3v"),
    "srav": (0x07, "reg3v"),
    "jr": (0x08, "jr"),
    "jalr": (0x09, "jalr"),
    "syscall": (0x0C, "syscall"),
    "mfhi": (0x10, "mfhi"),
    "mflo": (0x12, "mflo"),
    "mult": (0x18, "multdiv"),
    "multu": (0x19, "multdiv"),
    "div": (0x1A, "multdiv"),
    "divu": (0x1B, "multdiv"),
    "addu": (0x21, "reg3"),
    "subu": (0x23, "reg3"),
    "and": (0x24, "reg3"),
    "or": (0x25, "reg3"),
    "xor": (0x26, "reg3"),
    "nor": (0x27, "reg3"),
    "slt": (0x2A, "reg3"),
    "sltu": (0x2B, "reg3"),
}
R_BY_FUNCT = {funct: (name, kind) for name, (funct, kind) in R_TYPE.items()}

# I-type opcodes: name -> (opcode, kind)
I_TYPE = {
    "beq": (0x04, "branch2"),
    "bne": (0x05, "branch2"),
    "blez": (0x06, "branch1"),
    "bgtz": (0x07, "branch1"),
    "addiu": (0x09, "imm"),
    "slti": (0x0A, "imm"),
    "sltiu": (0x0B, "imm"),
    "andi": (0x0C, "immu"),
    "ori": (0x0D, "immu"),
    "xori": (0x0E, "immu"),
    "lui": (0x0F, "lui"),
    "beql": (0x14, "branch2"),
    "bnel": (0x15, "branch2"),
    "blezl": (0x16, "branch1"),
    "bgtzl": (0x17, "branch1"),
    "lb": (0x20, "load"),
    "lh": (0x21, "load"),
    "lw": (0x23, "load"),
    "lbu": (0x24, "load"),
    "lhu": (0x25, "load"),
    "sb": (0x28, "store"),
    "sh": (0x29, "store"),
    "sw": (0x2B, "store"),
}
I_BY_OPCODE = {opcode: (name, kind) for name, (opcode, kind) in I_TYPE.items()}

LOAD_WIDTHS = {"lb": (1, True), "lh": (2, True), "lw": (4, False),
               "lbu": (1, False), "lhu": (2, False)}
STORE_WIDTHS = {"sb": 1, "sh": 2, "sw": 4}

# REGIMM (opcode 1) rt-field encodings.
REGIMM = {"bltz": 0, "bgez": 1, "bltzl": 2, "bgezl": 3}
REGIMM_BY_RT = {rt: name for name, rt in REGIMM.items()}

OP_J = 0x02
OP_JAL = 0x03
OP_REGIMM = 0x01

BRANCH_INVERSES = {
    "beq": "bne", "bne": "beq", "blez": "bgtz", "bgtz": "blez",
    "bltz": "bgez", "bgez": "bltz",
    "beql": "bnel", "bnel": "beql", "blezl": "bgtzl", "bgtzl": "blezl",
    "bltzl": "bgezl", "bgezl": "bltzl",
}

NOP_WORD = 0x00000000  # sll $zero, $zero, 0


def _fields_tuple(**kwargs):
    return tuple(sorted(kwargs.items()))


def _live(regs):
    return frozenset(r for r in regs if r != REG_ZERO)


class MipsCodec(MachineCodec):
    arch = "mips"
    regs = MIPS_REGS

    _singleton = None

    @classmethod
    def instance(cls):
        if cls._singleton is None:
            cls._singleton = cls()
        return cls._singleton

    @property
    def nop_word(self):
        return NOP_WORD

    # ------------------------------------------------------------------
    def _decode_uncached(self, word):
        opcode = bits.extract(word, 26, 31)
        if opcode == 0:
            return self._decode_rtype(word)
        if opcode == OP_REGIMM:
            return self._decode_regimm(word)
        if opcode in (OP_J, OP_JAL):
            return self._decode_jtype(word, opcode)
        return self._decode_itype(word, opcode)

    def _decode_rtype(self, word):
        funct = bits.extract(word, 0, 5)
        entry = R_BY_FUNCT.get(funct)
        if entry is None:
            return self._invalid(word)
        name, kind = entry
        rs = bits.extract(word, 21, 25)
        rt = bits.extract(word, 16, 20)
        rd = bits.extract(word, 11, 15)
        shamt = bits.extract(word, 6, 10)

        if kind == "shift":
            if bits.extract(word, 16, 31) == 0 and shamt == 0 and rd == 0:
                pass  # canonical nop decodes below as sll
            return DecodedInst(
                word=word, name=name, category=Category.COMPUTE,
                fields=_fields_tuple(rd=rd, rt=rt, shamt=shamt),
                reads=_live({rt}), writes=_live({rd}),
                operands=("rd", "rt", "shamt"),
            )
        if kind in ("reg3", "reg3v"):
            return DecodedInst(
                word=word, name=name, category=Category.COMPUTE,
                fields=_fields_tuple(rd=rd, rs=rs, rt=rt),
                reads=_live({rs, rt}), writes=_live({rd}),
                operands=("rd", "rs", "rt"),
            )
        if kind == "jr":
            category = Category.RETURN if rs == REG_RA else Category.JUMP_INDIRECT
            return DecodedInst(
                word=word, name=name, category=category,
                fields=_fields_tuple(rs=rs),
                reads=_live({rs}), writes=frozenset(),
                is_delayed=True, operands=("rs",),
            )
        if kind == "jalr":
            return DecodedInst(
                word=word, name=name, category=Category.CALL_INDIRECT,
                fields=_fields_tuple(rd=rd, rs=rs),
                reads=_live({rs}), writes=_live({rd}),
                is_delayed=True, operands=("rd", "rs"),
            )
        if kind == "syscall":
            return DecodedInst(
                word=word, name=name, category=Category.SYSTEM,
                fields=_fields_tuple(code=bits.extract(word, 6, 25)),
                reads=_live({REG_V0, 4, 5, 6, 7}),
                writes=_live({REG_V0}),
                operands=(),
            )
        if kind == "mfhi":
            return DecodedInst(
                word=word, name=name, category=Category.COMPUTE,
                fields=_fields_tuple(rd=rd),
                reads=frozenset({REG_HI}), writes=_live({rd}),
                operands=("rd",),
            )
        if kind == "mflo":
            return DecodedInst(
                word=word, name=name, category=Category.COMPUTE,
                fields=_fields_tuple(rd=rd),
                reads=frozenset({REG_LO}), writes=_live({rd}),
                operands=("rd",),
            )
        if kind == "multdiv":
            return DecodedInst(
                word=word, name=name, category=Category.COMPUTE,
                fields=_fields_tuple(rs=rs, rt=rt),
                reads=_live({rs, rt}),
                writes=frozenset({REG_HI, REG_LO}),
                operands=("rs", "rt"),
            )
        return self._invalid(word)

    def _decode_regimm(self, word):
        rt = bits.extract(word, 16, 20)
        name = REGIMM_BY_RT.get(rt)
        if name is None:
            return self._invalid(word)
        rs = bits.extract(word, 21, 25)
        imm16 = bits.extract_signed(word, 0, 15)
        return DecodedInst(
            word=word, name=name, category=Category.BRANCH,
            fields=_fields_tuple(rs=rs, imm16=imm16),
            reads=_live({rs}), writes=frozenset(),
            is_delayed=True, annul_untaken=name.endswith("l"),
            cond=name[1:], operands=("rs", "imm16"),
        )

    def _decode_jtype(self, word, opcode):
        target26 = bits.extract(word, 0, 25)
        if opcode == OP_JAL:
            return DecodedInst(
                word=word, name="jal", category=Category.CALL,
                fields=_fields_tuple(target26=target26),
                reads=frozenset(), writes=frozenset({REG_RA}),
                is_delayed=True, operands=("target26",),
            )
        return DecodedInst(
            word=word, name="j", category=Category.JUMP,
            fields=_fields_tuple(target26=target26),
            reads=frozenset(), writes=frozenset(),
            is_delayed=True, operands=("target26",),
        )

    def _decode_itype(self, word, opcode):
        entry = I_BY_OPCODE.get(opcode)
        if entry is None:
            return self._invalid(word)
        name, kind = entry
        rs = bits.extract(word, 21, 25)
        rt = bits.extract(word, 16, 20)
        imm16 = bits.extract_signed(word, 0, 15)
        uimm16 = bits.extract(word, 0, 15)

        if kind == "branch2":
            return DecodedInst(
                word=word, name=name, category=Category.BRANCH,
                fields=_fields_tuple(rs=rs, rt=rt, imm16=imm16),
                reads=_live({rs, rt}), writes=frozenset(),
                is_delayed=True, annul_untaken=name.endswith("l"),
                cond=name[1:], operands=("rs", "rt", "imm16"),
            )
        if kind == "branch1":
            return DecodedInst(
                word=word, name=name, category=Category.BRANCH,
                fields=_fields_tuple(rs=rs, imm16=imm16),
                reads=_live({rs}), writes=frozenset(),
                is_delayed=True, annul_untaken=name.endswith("l"),
                cond=name[1:], operands=("rs", "imm16"),
            )
        if kind == "imm":
            return DecodedInst(
                word=word, name=name, category=Category.COMPUTE,
                fields=_fields_tuple(rt=rt, rs=rs, imm16=imm16),
                reads=_live({rs}), writes=_live({rt}),
                operands=("rt", "rs", "imm16"),
            )
        if kind == "immu":
            return DecodedInst(
                word=word, name=name, category=Category.COMPUTE,
                fields=_fields_tuple(rt=rt, rs=rs, uimm16=uimm16),
                reads=_live({rs}), writes=_live({rt}),
                operands=("rt", "rs", "uimm16"),
            )
        if kind == "lui":
            return DecodedInst(
                word=word, name=name, category=Category.COMPUTE,
                fields=_fields_tuple(rt=rt, uimm16=uimm16),
                reads=frozenset(), writes=_live({rt}),
                operands=("rt", "uimm16"),
            )
        if kind == "load":
            width, signed = LOAD_WIDTHS[name]
            return DecodedInst(
                word=word, name=name, category=Category.LOAD,
                fields=_fields_tuple(rt=rt, rs=rs, imm16=imm16),
                reads=_live({rs}), writes=_live({rt}),
                mem_width=width, mem_signed=signed,
                operands=("rt", "mem"),
            )
        if kind == "store":
            return DecodedInst(
                word=word, name=name, category=Category.STORE,
                fields=_fields_tuple(rt=rt, rs=rs, imm16=imm16),
                reads=_live({rs, rt}), writes=frozenset(),
                mem_width=STORE_WIDTHS[name],
                operands=("rt", "mem"),
            )
        return self._invalid(word)

    def _invalid(self, word):
        return DecodedInst(
            word=word, name=".word", category=Category.INVALID,
            fields=_fields_tuple(value=word),
            reads=frozenset(), writes=frozenset(),
        )

    # ------------------------------------------------------------------
    def encode(self, name, **fields):
        if name in R_TYPE:
            return self._encode_rtype(name, fields)
        if name in REGIMM:
            word = bits.insert(0, 26, 31, OP_REGIMM)
            word = bits.insert(word, 16, 20, REGIMM[name])
            word = bits.insert(word, 21, 25, fields.get("rs", 0))
            imm16 = fields["imm16"]
            if not bits.fits_signed(imm16, 16):
                raise SpanError("branch displacement out of range")
            return bits.insert(word, 0, 15, imm16)
        if name in ("j", "jal"):
            word = bits.insert(0, 26, 31, OP_J if name == "j" else OP_JAL)
            return bits.insert(word, 0, 25, fields["target26"])
        if name in I_TYPE:
            return self._encode_itype(name, fields)
        raise ValueError("cannot encode unknown instruction %r" % name)

    def _encode_rtype(self, name, fields):
        funct, kind = R_TYPE[name]
        word = bits.insert(0, 0, 5, funct)
        word = bits.insert(word, 11, 15, fields.get("rd", 0))
        word = bits.insert(word, 21, 25, fields.get("rs", 0))
        word = bits.insert(word, 16, 20, fields.get("rt", 0))
        word = bits.insert(word, 6, 10, fields.get("shamt", 0))
        if kind == "syscall":
            word = bits.insert(word, 6, 25, fields.get("code", 0))
        if kind == "jalr" and "rd" not in fields:
            word = bits.insert(word, 11, 15, REG_RA)
        return word

    def _encode_itype(self, name, fields):
        opcode, kind = I_TYPE[name]
        word = bits.insert(0, 26, 31, opcode)
        word = bits.insert(word, 21, 25, fields.get("rs", 0))
        word = bits.insert(word, 16, 20, fields.get("rt", 0))
        if "uimm16" in fields:
            if not bits.fits_unsigned(fields["uimm16"], 16):
                raise SpanError("unsigned immediate out of range")
            return bits.insert(word, 0, 15, fields["uimm16"])
        imm16 = fields.get("imm16", 0)
        if not bits.fits_signed(imm16, 16):
            raise SpanError("immediate %d out of range" % imm16)
        return bits.insert(word, 0, 15, imm16)

    # ------------------------------------------------------------------
    def control_target(self, inst, pc):
        if inst.category is Category.BRANCH:
            return bits.to_u32(pc + 4 + (inst.get_field("imm16") << 2))
        if inst.name in ("j", "jal"):
            return bits.to_u32(((pc + 4) & 0xF0000000)
                               | (inst.get_field("target26") << 2))
        return None

    def with_control_target(self, word, pc, target):
        inst = self.decode(word)
        if inst.category is Category.BRANCH:
            offset = bits.to_s32(target - pc - 4)
            if offset & 3 or not bits.fits_signed(offset >> 2, 16):
                raise SpanError("branch displacement out of span")
            return bits.insert(word, 0, 15, offset >> 2)
        if inst.name in ("j", "jal"):
            if (target & 0xF0000000) != ((pc + 4) & 0xF0000000):
                raise SpanError("jump target outside 256MB region")
            return bits.insert(word, 0, 25, (target & 0x0FFFFFFF) >> 2)
        raise ValueError("instruction %s has no direct target" % inst.name)

    def invert_branch(self, word):
        inst = self.decode(word)
        inverse = BRANCH_INVERSES.get(inst.name)
        if inverse is None:
            raise ValueError("cannot invert %s" % inst.name)
        fields = dict(inst.fields)
        return self.encode(inverse, **fields)

    def clear_annul(self, word):
        """Convert a branch-likely into its always-execute-slot variant."""
        inst = self.decode(word)
        if inst.category is not Category.BRANCH:
            raise ValueError("not a branch: %s" % inst.name)
        if not inst.annul_untaken:
            return word
        fields = dict(inst.fields)
        return self.encode(inst.name[:-1], **fields)

    # ------------------------------------------------------------------
    def disassemble(self, word, pc=None):
        inst = self.decode(word)
        if word == NOP_WORD:
            return "nop"
        if inst.category is Category.INVALID:
            return ".word 0x%08x" % word
        name = inst.name
        regname = self.regs.name
        if name in ("j", "jal"):
            target = self.control_target(inst, pc if pc is not None else 0)
            return "%s 0x%x" % (name, target)
        if inst.category is Category.BRANCH:
            if pc is not None:
                where = "0x%x" % self.control_target(inst, pc)
            else:
                where = ".%+d" % ((inst.get_field("imm16") << 2) + 4)
            if inst.has_field("rt"):
                return "%s %s, %s, %s" % (
                    name, regname(inst.get_field("rs")),
                    regname(inst.get_field("rt")), where)
            return "%s %s, %s" % (name, regname(inst.get_field("rs")), where)
        if name in ("jr",):
            return "jr %s" % regname(inst.get_field("rs"))
        if name == "jalr":
            return "jalr %s, %s" % (regname(inst.get_field("rd")),
                                    regname(inst.get_field("rs")))
        if name == "syscall":
            return "syscall"
        if name in ("mfhi", "mflo"):
            return "%s %s" % (name, regname(inst.get_field("rd")))
        if name in ("mult", "multu", "div", "divu"):
            return "%s %s, %s" % (name, regname(inst.get_field("rs")),
                                  regname(inst.get_field("rt")))
        if name in ("sll", "srl", "sra"):
            return "%s %s, %s, %d" % (name, regname(inst.get_field("rd")),
                                      regname(inst.get_field("rt")),
                                      inst.get_field("shamt"))
        if name == "lui":
            return "lui %s, 0x%x" % (regname(inst.get_field("rt")),
                                     inst.get_field("uimm16"))
        if inst.category.is_memory:
            return "%s %s, %d(%s)" % (name, regname(inst.get_field("rt")),
                                      inst.get_field("imm16"),
                                      regname(inst.get_field("rs")))
        if inst.has_field("imm16"):
            return "%s %s, %s, %d" % (name, regname(inst.get_field("rt")),
                                      regname(inst.get_field("rs")),
                                      inst.get_field("imm16"))
        if inst.has_field("uimm16"):
            return "%s %s, %s, 0x%x" % (name, regname(inst.get_field("rt")),
                                        regname(inst.get_field("rs")),
                                        inst.get_field("uimm16"))
        return "%s %s, %s, %s" % (name, regname(inst.get_field("rd")),
                                  regname(inst.get_field("rs")),
                                  regname(inst.get_field("rt")))
