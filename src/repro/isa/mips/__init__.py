"""MIPS-I-like subset: handwritten codec and machine conventions."""
