"""MIPS machine conventions (system-dependent fragments)."""

from repro.isa import bits
from repro.isa.base import MachineConventions, SpanError
from repro.isa.mips.handwritten import (
    MipsCodec,
    REG_AT,
    REG_RA,
    REG_SP,
    REG_V0,
    REG_ZERO,
)

SPILL_BASE_OFFSET = -64


def hi16(value):
    """Upper half for lui, adjusted for the signed low half."""
    return ((value + 0x8000) >> 16) & 0xFFFF


def lo16(value):
    """Signed low half matching :func:`hi16`."""
    return bits.sign_extend(value & 0xFFFF, 16)


class MipsConventions(MachineConventions):
    arch = "mips"

    sp_reg = REG_SP
    retaddr_reg = REG_RA
    retval_reg = REG_V0
    syscall_num_reg = REG_V0
    # $at is reserved for the assembler by the MIPS ABI; the layout
    # engine clobbers it in long-branch stubs (lui/ori/jr).
    assembler_temp = REG_AT
    arg_regs = (4, 5, 6, 7)  # $a0-$a3
    cc_regs = frozenset()  # MIPS has no condition codes

    # Caller-saved temporaries, then $at.
    scavenge_candidates = tuple(range(8, 16)) + (24, 25, REG_AT)
    placeholder_regs = (8, 9, 10, 11)  # $t0-$t3

    @property
    def codec(self):
        return MipsCodec.instance()

    # ------------------------------------------------------------------
    def load_const(self, reg, value):
        value = bits.to_u32(value)
        codec = self.codec
        signed = bits.to_s32(value)
        if bits.fits_signed(signed, 16):
            return [codec.encode("addiu", rt=reg, rs=REG_ZERO, imm16=signed)]
        if value <= 0xFFFF:
            return [codec.encode("ori", rt=reg, rs=REG_ZERO, uimm16=value)]
        words = [codec.encode("lui", rt=reg, uimm16=(value >> 16) & 0xFFFF)]
        if value & 0xFFFF:
            words.append(codec.encode("ori", rt=reg, rs=reg,
                                      uimm16=value & 0xFFFF))
        return words

    def counter_increment(self, counter_addr, tmp_addr_reg, tmp_val_reg):
        codec = self.codec
        return [
            codec.encode("lui", rt=tmp_addr_reg, uimm16=hi16(counter_addr)),
            codec.encode("lw", rt=tmp_val_reg, rs=tmp_addr_reg,
                         imm16=lo16(counter_addr)),
            codec.encode("addiu", rt=tmp_val_reg, rs=tmp_val_reg, imm16=1),
            codec.encode("sw", rt=tmp_val_reg, rs=tmp_addr_reg,
                         imm16=lo16(counter_addr)),
        ]

    def spill(self, reg, slot):
        offset = SPILL_BASE_OFFSET - 4 * slot
        return [self.codec.encode("sw", rt=reg, rs=REG_SP, imm16=offset)]

    def unspill(self, reg, slot):
        offset = SPILL_BASE_OFFSET - 4 * slot
        return [self.codec.encode("lw", rt=reg, rs=REG_SP, imm16=offset)]

    def long_jump(self, scratch_reg, target):
        codec = self.codec
        words = self.load_const(scratch_reg, target)
        words.append(codec.encode("jr", rs=scratch_reg))
        words.append(codec.nop_word)
        return words

    def direct_jump(self, pc, target):
        # j is pseudo-absolute within a 256MB region of the delay slot.
        if (target & 0xF0000000) != ((pc + 4) & 0xF0000000):
            raise SpanError("j target outside 256MB region")
        return self.codec.encode("j", target26=(target & 0x0FFFFFFF) >> 2)

    def direct_jump_annulled(self, pc, target):
        # MIPS has no annulled unconditional jump; callers must lay out a
        # real delay slot after direct_jump instead.
        raise SpanError("mips has no annulled unconditional jump")

    def call_word(self, pc, target):
        if (target & 0xF0000000) != ((pc + 4) & 0xF0000000):
            raise SpanError("jal target outside 256MB region")
        return self.codec.encode("jal", target26=(target & 0x0FFFFFFF) >> 2)

    # ------------------------------------------------------------------
    def rebind_registers(self, words, mapping):
        if not mapping:
            return list(words)
        out = []
        for word in words:
            inst = self.codec.decode(word)
            fields = dict(inst.fields)
            changed = False
            for field_name in ("rs", "rt", "rd"):
                if field_name in fields and fields[field_name] in mapping:
                    fields[field_name] = mapping[fields[field_name]]
                    changed = True
            if changed:
                word = self.codec.encode(inst.name, **fields)
            out.append(word)
        return out
