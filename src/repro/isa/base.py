"""Architecture-neutral interfaces of the machine layer.

EEL divides instructions into functional categories and asks a small set of
questions about each (paper section 3.4).  :class:`DecodedInst` is the answer
record a codec produces for one machine word; :class:`MachineCodec` is the
decode/encode interface; :class:`MachineConventions` captures the
system-dependent knowledge (stack pointer, spill code, snippet fragments)
that EEL's machine-independent core parameterizes over.
"""

import enum
from dataclasses import dataclass, field

from repro.isa import bits


class Category(enum.Enum):
    """Functional categories of instructions (paper section 3.4, Figure 6)."""

    CALL = "call"  # direct subroutine call
    CALL_INDIRECT = "call_indirect"  # call through a register
    JUMP = "jump"  # direct unconditional jump
    JUMP_INDIRECT = "jump_indirect"  # jump through a register
    BRANCH = "branch"  # conditional direct branch
    RETURN = "return"  # subroutine return
    SYSTEM = "system"  # trap / system call
    LOAD = "load"  # memory read
    STORE = "store"  # memory write
    COMPUTE = "compute"  # everything else that is valid
    INVALID = "invalid"  # not an instruction (data)

    @property
    def is_control(self):
        return self in _CONTROL_CATEGORIES

    @property
    def is_memory(self):
        return self in (Category.LOAD, Category.STORE)


_CONTROL_CATEGORIES = frozenset(
    {
        Category.CALL,
        Category.CALL_INDIRECT,
        Category.JUMP,
        Category.JUMP_INDIRECT,
        Category.BRANCH,
        Category.RETURN,
        Category.SYSTEM,
    }
)


class RegisterSet:
    """Names and roles of an architecture's registers.

    Registers are identified by small ints.  Integer registers come first
    (0 .. num_int - 1); special registers (condition codes, Y/HI/LO, ...)
    follow.  ``zero_regs`` are hardwired-zero registers that are never live
    and whose writes are discarded.
    """

    def __init__(self, arch, int_names, special_names, zero_regs=()):
        self.arch = arch
        self.num_int = len(int_names)
        self._names = tuple(int_names) + tuple(special_names)
        self.num_total = len(self._names)
        self.zero_regs = frozenset(zero_regs)
        self._by_name = {}
        for index, name in enumerate(self._names):
            self._by_name[name] = index

    def name(self, reg):
        return self._names[reg]

    def number(self, name):
        return self._by_name[name]

    def __contains__(self, name):
        return name in self._by_name

    def all_registers(self):
        return range(self.num_total)

    def int_registers(self):
        return range(self.num_int)


@dataclass(frozen=True)
class DecodedInst:
    """Machine-independent description of one decoded machine word.

    Instances are interned by the codec: one object represents every
    occurrence of a given 32-bit word (paper section 3.4's factor-of-four
    space optimization), so no positional state lives here.
    """

    word: int
    name: str
    category: Category
    fields: tuple  # sorted (field_name, value) pairs
    reads: frozenset
    writes: frozenset
    is_delayed: bool = False  # has an architectural delay slot
    annul_untaken: bool = False  # delay slot annulled when branch not taken
    mem_width: int = 0  # bytes accessed, for LOAD/STORE
    mem_signed: bool = False
    cond: str = ""  # condition mnemonic for branches
    operands: tuple = field(default=())  # disassembly operand text

    def __post_init__(self):
        # Field dict for hot paths (simulator dispatch); fields stays a
        # tuple so the dataclass remains hashable.
        object.__setattr__(self, "f", dict(self.fields))

    def get_field(self, name):
        return self.f[name]

    def has_field(self, name):
        return name in self.f

    @property
    def is_valid(self):
        return self.category is not Category.INVALID

    @property
    def is_control(self):
        return self.category.is_control

    @property
    def is_conditional(self):
        return self.category is Category.BRANCH

    def reads_register(self, reg):
        return reg in self.reads

    def writes_register(self, reg):
        return reg in self.writes


class SpanError(Exception):
    """A control-transfer displacement does not fit in its field.

    Layout catches this and substitutes a longer-span snippet
    (paper section 3.3.1).
    """


class MachineCodec:
    """Decode and encode machine words for one architecture.

    Subclasses (handwritten or spawn-generated) fill in ``_decode_uncached``
    and the encode tables.  ``decode`` interns results so that all instances
    of a machine word share one :class:`DecodedInst`.
    """

    arch = None
    regs = None
    word_size = 4

    def __init__(self):
        self._decode_cache = {}
        self.decode_calls = 0  # statistics for the flyweight experiment

    def decode(self, word):
        """Decode *word*, returning an interned :class:`DecodedInst`."""
        self.decode_calls += 1
        word = bits.to_u32(word)
        inst = self._decode_cache.get(word)
        if inst is None:
            inst = self._decode_uncached(word)
            self._decode_cache[word] = inst
        return inst

    @property
    def distinct_decoded(self):
        """Number of distinct instruction objects allocated so far."""
        return len(self._decode_cache)

    def reset_statistics(self):
        self.decode_calls = 0
        self._decode_cache.clear()

    # -- subclass responsibilities -------------------------------------
    def _decode_uncached(self, word):
        raise NotImplementedError

    def encode(self, name, **fields):
        """Encode instruction *name* with the given field values."""
        raise NotImplementedError

    def control_target(self, inst, pc):
        """Static target address of a direct control transfer, else None."""
        raise NotImplementedError

    def with_control_target(self, word, pc, target):
        """Re-encode *word* (at *pc*) so its displacement reaches *target*.

        Raises :class:`SpanError` when the displacement does not fit.
        """
        raise NotImplementedError

    def disassemble(self, word, pc=None):
        """Human-readable text for one machine word."""
        raise NotImplementedError

    @property
    def nop_word(self):
        raise NotImplementedError


class MachineConventions:
    """System-dependent conventions and code fragments (paper section 4).

    Everything EEL's core or the portable tools need that depends on the
    architecture or OS lives behind this interface: register roles, code
    snippets for counters and spills, and long-span jump sequences.
    All code-producing methods return lists of machine words.
    """

    arch = None

    @classmethod
    def instance(cls):
        if getattr(cls, "_instance", None) is None:
            cls._instance = cls()
        return cls._instance

    @property
    def codec(self):
        raise NotImplementedError

    # -- register roles -------------------------------------------------
    sp_reg = None
    retaddr_reg = None
    retval_reg = None
    syscall_num_reg = None
    arg_regs = ()
    scavenge_candidates = ()  # registers snippets may scavenge when dead
    cc_regs = frozenset()  # condition-code pseudo registers

    # -- code fragments ---------------------------------------------------
    def load_const(self, reg, value):
        """Words that load the 32-bit constant *value* into *reg*."""
        raise NotImplementedError

    def counter_increment(self, counter_addr, tmp_addr_reg, tmp_val_reg):
        """Words that increment the 32-bit counter at *counter_addr*.

        This is the Figure 5 snippet body; the two temporaries are
        placeholders that EEL's register allocator rebinds.
        """
        raise NotImplementedError

    def spill(self, reg, slot):
        """Words that save *reg* to scratch slot *slot* (below the stack)."""
        raise NotImplementedError

    def unspill(self, reg, slot):
        """Words that restore *reg* from scratch slot *slot*."""
        raise NotImplementedError

    def long_jump(self, scratch_reg, target):
        """Words for an unconditional jump of unlimited span via *scratch_reg*."""
        raise NotImplementedError

    def direct_jump(self, pc, target):
        """One-word direct jump from *pc* to *target* (may raise SpanError)."""
        raise NotImplementedError

    def rebind_registers(self, words, mapping):
        """Rewrite register numbers in snippet *words* per *mapping*.

        *mapping* maps placeholder register numbers to allocated ones.
        Used by snippet register allocation (paper section 3.5).
        """
        raise NotImplementedError
