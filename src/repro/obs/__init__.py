"""repro.obs — zero-dependency telemetry for the edit/simulate pipeline.

Six layers:

* :mod:`repro.obs.trace` — nestable wall-clock spans with a no-op fast
  path while disabled (the default);
* :mod:`repro.obs.context` — request-scoped trace contexts propagated
  across threads and the serve protocol;
* :mod:`repro.obs.metrics` — interned counters/gauges/histograms with
  bounded-reservoir percentiles;
* :mod:`repro.obs.events` — durable append-only JSONL event log with
  rotation (``repro.events/1``), replayed by ``repro trace``;
* :mod:`repro.obs.export` — Prometheus text-format export;
* :mod:`repro.obs.report` — stable-schema JSON export consumed by the
  CLI (``stats``, ``--stats-json``) and the benchmark harness.

Typical tool-side usage::

    from repro import obs

    obs.enable()
    with obs.span("mytool.instrument"):
        ...
    report = obs.dump("stats.json")
"""

from repro.obs import context, events, metrics, trace
from repro.obs.metrics import counter, gauge, histogram
from repro.obs.report import build_report, dump, render
from repro.obs.trace import is_enabled, span


def enable():
    """Turn on span recording (metrics always accumulate)."""
    trace.enable()


def disable():
    trace.disable()


def reset():
    """Clear recorded spans and zero every metric."""
    trace.reset()
    metrics.reset()


__all__ = [
    "enable",
    "disable",
    "reset",
    "is_enabled",
    "span",
    "counter",
    "gauge",
    "histogram",
    "build_report",
    "dump",
    "render",
    "context",
    "events",
    "metrics",
    "trace",
]
