"""repro.obs — zero-dependency telemetry for the edit/simulate pipeline.

Three layers:

* :mod:`repro.obs.trace` — nestable wall-clock spans with a no-op fast
  path while disabled (the default);
* :mod:`repro.obs.metrics` — interned counters/gauges/histograms;
* :mod:`repro.obs.report` — stable-schema JSON export consumed by the
  CLI (``stats``, ``--stats-json``) and the benchmark harness.

Typical tool-side usage::

    from repro import obs

    obs.enable()
    with obs.span("mytool.instrument"):
        ...
    report = obs.dump("stats.json")
"""

from repro.obs import metrics, trace
from repro.obs.metrics import counter, gauge, histogram
from repro.obs.report import build_report, dump, render
from repro.obs.trace import is_enabled, span


def enable():
    """Turn on span recording (metrics always accumulate)."""
    trace.enable()


def disable():
    trace.disable()


def reset():
    """Clear recorded spans and zero every metric."""
    trace.reset()
    metrics.reset()


__all__ = [
    "enable",
    "disable",
    "reset",
    "is_enabled",
    "span",
    "counter",
    "gauge",
    "histogram",
    "build_report",
    "dump",
    "render",
    "metrics",
    "trace",
]
