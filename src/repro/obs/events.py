"""Durable structured event log: append-only JSONL with rotation.

Schema ``repro.events/1`` — one JSON object per line::

    {"ts": <unix seconds>, "kind": "request.finish",
     "trace_id": "...", ...kind-specific fields...}

The first record of every file is ``{"kind": "log.open", "schema":
"repro.events/1", ...}`` so a reader can verify what it is holding.
Rotation is size-based and happens *after* a record is fully written:
the record that crosses the threshold always lands intact in the file
being rotated out — rotation can never drop an in-flight record.
Rotated files are ``<path>.1`` (newest) .. ``<path>.N`` (oldest);
:func:`iter_events` replays them oldest-first followed by the live
file, skipping a torn trailing line (a crashed writer) without
failing.

Emitting is process-global: :func:`configure` opens the log,
:func:`emit` appends (a no-op while unconfigured, so instrumented code
needs no guards).  ``emit`` stamps the current thread's
:class:`~repro.obs.context.TraceContext` onto the record unless the
caller passed an explicit ``trace_id``.

Event taxonomy (producers; see DESIGN.md §5h):

* serve daemon — ``daemon.start``, ``request.admit``,
  ``request.finish``, ``request.error``, ``request.requeued``,
  ``coalesce.leader``/``coalesce.loser``, ``worker.death``,
  ``worker.restart``, ``worker.degraded``, ``drain.begin``,
  ``drain.finish``;
* fuzz campaigns — ``campaign.begin``, ``fuzz.seed`` (per-seed
  classification with stage timings), ``campaign.end``.
"""

import json
import os
import threading
import time

from repro.env import env_int
from repro.obs import context as _context

SCHEMA = "repro.events/1"

DEFAULT_MAX_BYTES = 4 << 20
DEFAULT_MAX_FILES = 4


class EventLog:
    """One append-only JSONL file with size-based rotation."""

    def __init__(self, path, max_bytes=None, max_files=None):
        self.path = path
        self.max_bytes = max_bytes if max_bytes is not None else \
            env_int("REPRO_EVENTS_MAX_BYTES", DEFAULT_MAX_BYTES, minimum=1024)
        self.max_files = max_files if max_files is not None else \
            env_int("REPRO_EVENTS_FILES", DEFAULT_MAX_FILES, minimum=1)
        self._lock = threading.Lock()
        self._handle = None
        self._size = 0

    # ------------------------------------------------------------------
    def emit(self, kind, **fields):
        """Append one event; thread-safe, never raises into callers."""
        record = {"ts": time.time(), "kind": kind}
        if "trace_id" not in fields:
            ctx = _context.current()
            if ctx is not None:
                record["trace_id"] = ctx.trace_id
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            try:
                if self._handle is None:
                    self._open()
                self._handle.write(data)
                self._handle.flush()
                self._size += len(data)
                # Rotate only after the record is durably in the old
                # file: the in-flight record is never the one dropped.
                if self._size >= self.max_bytes:
                    self._rotate()
            except OSError:
                pass  # a full disk must not take the daemon down
        return record

    def close(self):
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    # ------------------------------------------------------------------
    def _open(self):
        directory = os.path.dirname(os.path.abspath(self.path))
        if directory and not os.path.isdir(directory):
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "ab")
        self._size = self._handle.tell()
        if self._size == 0:
            header = json.dumps({"ts": time.time(), "kind": "log.open",
                                 "schema": SCHEMA, "pid": os.getpid()},
                                sort_keys=True) + "\n"
            data = header.encode("utf-8")
            self._handle.write(data)
            self._handle.flush()
            self._size = len(data)

    def _rotate(self):
        self._handle.close()
        self._handle = None
        for index in range(self.max_files - 1, 0, -1):
            older = "%s.%d" % (self.path, index)
            newer = "%s.%d" % (self.path, index + 1)
            if os.path.exists(older):
                if index + 1 >= self.max_files:
                    os.unlink(older)
                else:
                    os.replace(older, newer)
        os.replace(self.path, "%s.1" % self.path)
        self._open()


# ----------------------------------------------------------------------
# Process-global log (the daemon and fuzz campaigns write here)
# ----------------------------------------------------------------------

LOG = None

# Fields stamped onto every record emitted through the global log
# (e.g. ``shard=2`` on a fleet member); explicit per-emit fields win.
_BOUND = {}


def configure(path, max_bytes=None, max_files=None):
    """Open the process-global event log at *path*; returns it."""
    global LOG
    if LOG is not None:
        LOG.close()
    LOG = EventLog(path, max_bytes=max_bytes, max_files=max_files)
    return LOG


def unconfigure():
    """Close and drop the process-global log (tests, daemon shutdown)."""
    global LOG
    if LOG is not None:
        LOG.close()
        LOG = None
    _BOUND.clear()


def bind(**fields):
    """Stamp *fields* onto every future :func:`emit` record.

    A fleet shard binds ``shard=N`` once at startup instead of
    threading the id through every emit site; ``None`` values are
    ignored so ``bind(shard=config.shard_id)`` is safe standalone.
    """
    for key, value in fields.items():
        if value is not None:
            _BOUND[key] = value


def emit(kind, **fields):
    """Append to the global log; silently a no-op while unconfigured."""
    if LOG is None:
        return None
    if _BOUND:
        merged = dict(_BOUND)
        merged.update(fields)
        fields = merged
    return LOG.emit(kind, **fields)


def is_configured():
    return LOG is not None


# ----------------------------------------------------------------------
# Reading and trace reconstruction (`repro trace`)
# ----------------------------------------------------------------------

def iter_events(path):
    """Yield every event across the rotated set, oldest first.

    A torn trailing line (the writer died mid-record) is skipped, not
    fatal; any other undecodable line raises ValueError with the file
    and line number.
    """
    files = []
    for index in range(DEFAULT_MAX_FILES * 4, 0, -1):
        rotated = "%s.%d" % (path, index)
        if os.path.exists(rotated):
            files.append(rotated)
    files.append(path)
    for name in files:
        if not os.path.exists(name):
            continue
        with open(name, "rb") as handle:
            data = handle.read()
        lines = data.split(b"\n")
        torn = bool(lines and lines[-1].strip())
        for number, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                yield json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                if torn and number == len(lines):
                    continue  # crashed writer's half-record
                raise ValueError("%s:%d: undecodable event line"
                                 % (name, number))


def load_events(path):
    return list(iter_events(path))


class TraceRecord:
    """Everything the log knows about one trace_id."""

    def __init__(self, trace_id):
        self.trace_id = trace_id
        self.admit = None       # request.admit event
        self.finish = None      # request.finish / request.error event
        self.events = []        # every event carrying this trace_id

    @property
    def op(self):
        for event in (self.finish, self.admit):
            if event and "op" in event:
                return event["op"]
        return None

    @property
    def status(self):
        if self.finish is None:
            return "in-flight"
        if self.finish["kind"] == "request.error":
            return "error:%s" % self.finish.get("code", "unknown")
        return "ok"

    @property
    def queue_wait_s(self):
        return self.finish.get("queue_wait_s") if self.finish else None

    @property
    def handler_s(self):
        return self.finish.get("handler_s") if self.finish else None

    @property
    def attempts(self):
        return self.finish.get("attempts", 0) if self.finish else 0

    @property
    def spans(self):
        return self.finish.get("spans") if self.finish else None

    @property
    def span_union(self):
        """Every span forest any event of this trace carried, merged.

        Under a fleet one trace_id produces finish events in *two*
        logs — the gateway's (``fleet.request`` spans) and the serving
        shard's (``serve.request`` spans whose root points at the
        gateway's forward span).  Merging the forests lets
        :func:`connected_spans` validate the cross-process hop.
        """
        forests = []
        for event in self.events:
            spans = event.get("spans")
            if spans:
                forests.extend(spans)
        return forests


def build_traces(events):
    """Ordered ``{trace_id: TraceRecord}`` for every traced request."""
    traces = {}
    for event in events:
        trace_id = event.get("trace_id")
        if not trace_id:
            continue
        record = traces.get(trace_id)
        if record is None:
            record = traces[trace_id] = TraceRecord(trace_id)
        record.events.append(event)
        kind = event.get("kind")
        if kind == "request.admit":
            record.admit = event
        elif kind in ("request.finish", "request.error"):
            record.finish = event
    return traces


def _span_lines(node, depth, lines):
    duration = node.get("duration_s")
    label = "%s%s" % ("  " * depth, node.get("name", "?"))
    timing = "%10.3fms" % (duration * 1e3) if duration is not None \
        else "        ? "
    attrs = "".join(
        " %s=%s" % (key, value)
        for key, value in sorted(node.get("attrs", {}).items()))
    lines.append("  %-48s %s%s" % (label, timing, attrs))
    for child in node.get("children", ()):
        _span_lines(child, depth + 1, lines)


def render_trace(record):
    """Pretty-printed span tree for one :class:`TraceRecord`."""
    lines = ["trace %s  op=%s  status=%s" % (record.trace_id, record.op,
                                             record.status)]
    if record.admit is not None:
        lines.append("  admitted (queue_depth=%s)"
                     % record.admit.get("queue_depth", "?"))
    if record.queue_wait_s is not None:
        lines.append("  %-48s %10.3fms" % ("queue.wait",
                                           record.queue_wait_s * 1e3))
    if record.spans:
        for root in record.spans:
            _span_lines(root, 1, lines)
    elif record.handler_s is not None:
        lines.append("  %-48s %10.3fms"
                     % ("handler (no spans; run the daemon with "
                        "--stats-json or --trace)",
                        record.handler_s * 1e3))
    if record.attempts:
        lines.append("  retried %d time(s)" % record.attempts)
    for event in record.events:
        if event.get("kind") in ("request.requeued", "coalesce.loser",
                                 "coalesce.leader"):
            lines.append("  %s %s" % (event["kind"],
                                      event.get("key", "")))
    return "\n".join(lines)


def span_tree_ids(spans):
    """Flatten a span forest to ``{span_id: parent_span_id}``."""
    table = {}

    def walk(node):
        span_id = node.get("span_id")
        if span_id is not None:
            table[span_id] = node.get("parent_span_id")
        for child in node.get("children", ()):
            walk(child)

    for node in spans or ():
        walk(node)
    return table


def connected_spans(spans, root_parent=None):
    """True when every span links to another span or *root_parent* —
    i.e. the tree has no orphan spans."""
    table = span_tree_ids(spans)
    if not table:
        return False
    for span_id, parent in table.items():
        if parent is None or parent == root_parent:
            continue
        if parent not in table:
            return False
    return True


# ----------------------------------------------------------------------
# Anomaly flagging (`repro trace` trailer)
# ----------------------------------------------------------------------

def find_anomalies(events, outlier_min_count=10):
    """Human-readable anomaly lines: latency outliers, retried
    requests, degraded-mode windows, worker deaths."""
    anomalies = []
    traces = build_traces(events)

    by_op = {}
    for record in traces.values():
        if record.handler_s is not None:
            by_op.setdefault(record.op, []).append(record)
    for op, records in sorted(by_op.items(), key=lambda kv: str(kv[0])):
        if len(records) < outlier_min_count:
            continue
        latencies = sorted(r.handler_s for r in records)
        median = latencies[len(latencies) // 2]
        position = 0.99 * (len(latencies) - 1)
        p99 = latencies[int(position)]
        threshold = max(p99, 2.0 * median)
        for record in records:
            if record.handler_s > threshold:
                anomalies.append(
                    "p99-outlier: trace %s op=%s took %.3fms "
                    "(op p99 %.3fms, median %.3fms)"
                    % (record.trace_id, op, record.handler_s * 1e3,
                       p99 * 1e3, median * 1e3))

    for record in traces.values():
        if record.attempts:
            anomalies.append("retries: trace %s op=%s retried %d time(s)"
                             % (record.trace_id, record.op,
                                record.attempts))

    degraded_since = None
    degraded_requests = 0
    for event in events:
        kind = event.get("kind")
        if kind == "worker.degraded" and degraded_since is None:
            degraded_since = event.get("ts")
            degraded_requests = 0
        elif kind in ("request.finish", "request.error") \
                and degraded_since is not None:
            degraded_requests += 1
        elif kind == "drain.finish" and degraded_since is not None:
            anomalies.append(
                "degraded-window: %.1fs in serial fallback "
                "(%d request(s) served degraded)"
                % ((event.get("ts", degraded_since) - degraded_since),
                   degraded_requests))
            degraded_since = None
    if degraded_since is not None:
        anomalies.append("degraded-window: daemon entered serial fallback "
                         "and never recovered (%d request(s) served "
                         "degraded)" % degraded_requests)

    deaths = sum(1 for event in events
                 if event.get("kind") == "worker.death")
    if deaths:
        anomalies.append("worker-deaths: %d worker death(s) in the log"
                         % deaths)
    return anomalies
