"""Prometheus text-format export of the ``repro.obs/1`` report.

Turns a report dict (from :func:`repro.obs.report.build_report`, a
``--stats-json`` file, or a daemon's ``stats`` op) into the Prometheus
exposition format (text/plain; version=0.0.4), so any scraper can
ingest the same counters, gauges, and latency percentiles the CLI
prints:

    repro_serve_requests 42
    repro_serve_latency_run{quantile="0.99"} 0.0137
    repro_serve_latency_run_count 18
    repro_serve_latency_run_sum 0.1922

Metric names are sanitized (dots and dashes become underscores) and
histograms are exported as Prometheus *summaries*: ``{quantile=...}``
samples plus ``_count`` and ``_sum`` series.  ``repro export`` drives
this from the command line against either a stats JSON file or a live
daemon.
"""

import re

_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def metric_name(name):
    """A legal Prometheus metric name for a repro metric name."""
    return _SANITIZE.sub("_", "repro_" + name)


def _format_value(value):
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def prometheus_text(report=None):
    """The full report as Prometheus exposition text."""
    if report is None:
        from repro.obs.report import build_report

        report = build_report()
    lines = []
    for name, value in sorted(report.get("counters", {}).items()):
        metric = metric_name(name)
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s %s" % (metric, _format_value(value)))
    for name, value in sorted(report.get("gauges", {}).items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        metric = metric_name(name)
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s %s" % (metric, _format_value(value)))
    for name, summary in sorted(report.get("histograms", {}).items()):
        metric = metric_name(name)
        lines.append("# TYPE %s summary" % metric)
        for quantile, key in QUANTILES:
            value = summary.get(key)
            if value is not None:
                lines.append('%s{quantile="%s"} %s'
                             % (metric, quantile, _format_value(value)))
        lines.append("%s_count %s"
                     % (metric, _format_value(summary.get("count", 0))))
        lines.append("%s_sum %s"
                     % (metric, _format_value(summary.get("sum", 0))))
    for name, value in sorted(report.get("derived", {}).items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        metric = metric_name("derived." + name)
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s %s" % (metric, _format_value(value)))
    lines.extend(_shard_lines(report))
    return "\n".join(lines) + "\n"


def _shard_lines(report):
    """Per-shard samples, labeled ``{shard="N"}``, from a gateway report.

    A report taken from a fleet gateway carries a populated
    ``fleet.shards`` table; each numeric field of each shard becomes a
    ``repro_fleet_shard_<field>{shard="N"}`` sample so one scrape of
    the gateway covers the whole fleet.  Standalone reports have an
    empty table and contribute nothing.
    """
    shards = (report.get("fleet") or {}).get("shards") or {}
    lines = []
    typed = set()
    for shard_id in sorted(shards, key=str):
        entry = shards[shard_id] or {}
        for field in sorted(entry):
            value = entry[field]
            if not isinstance(value, (int, float, bool)):
                continue
            metric = metric_name("fleet.shard." + field)
            if metric not in typed:
                typed.add(metric)
                lines.append("# TYPE %s gauge" % metric)
            lines.append('%s{shard="%s"} %s'
                         % (metric, shard_id, _format_value(value)))
    return lines
