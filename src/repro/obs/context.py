"""Request-scoped trace contexts: one id per request, everywhere.

A :class:`TraceContext` names a request (``trace_id``) and the span the
next child should hang under (``span_id``).  The current context is
thread-local; code that crosses a thread boundary captures the context
on one side and attaches it on the other:

    context = obs_context.current()            # connection thread
    ...
    token = obs_context.attach(context)        # worker thread
    try:
        ...   # spans opened here join the request's trace
    finally:
        obs_context.detach(token)

Spans opened while a context is attached record ``trace_id``,
``span_id``, and ``parent_span_id`` (see :mod:`repro.obs.trace`), so a
serve request produces one coherent span tree across the client
process, the daemon's connection thread, and whichever worker thread
executes it.  The wire form (``to_wire``/``from_wire``) is the
``trace`` field of the ``repro.serve/1`` protocol.
"""

import os
import threading

_TLS = threading.local()


def new_trace_id():
    """A fresh 16-hex-digit request id."""
    return os.urandom(8).hex()


def new_span_id():
    """A fresh 8-hex-digit span id."""
    return os.urandom(4).hex()


class TraceContext:
    """Identity of one request: trace id + parent span for children."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id=None, span_id=None):
        self.trace_id = trace_id or new_trace_id()
        self.span_id = span_id

    def child(self, span_id):
        """The context a span with *span_id* hands to its children."""
        return TraceContext(self.trace_id, span_id)

    def to_wire(self):
        """JSON-ready dict for the protocol's ``trace`` field."""
        wire = {"trace_id": self.trace_id}
        if self.span_id is not None:
            wire["parent_span_id"] = self.span_id
        return wire

    @classmethod
    def from_wire(cls, wire):
        """Context from a request's ``trace`` field; None if absent or
        malformed (a bad peer must not break tracing)."""
        if not isinstance(wire, dict):
            return None
        trace_id = wire.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent = wire.get("parent_span_id")
        return cls(trace_id, parent if isinstance(parent, str) else None)

    def __repr__(self):
        return "TraceContext(%s/%s)" % (self.trace_id, self.span_id)


def current():
    """The attached context of this thread, or None."""
    return getattr(_TLS, "context", None)


def attach(context):
    """Make *context* current for this thread; returns a detach token
    (the previously current context)."""
    token = current()
    _TLS.context = context
    return token


def detach(token):
    """Restore the context that was current before the matching
    :func:`attach`."""
    _TLS.context = token


class attached:
    """``with attached(ctx):`` — attach for the duration of a block."""

    __slots__ = ("context", "_token")

    def __init__(self, context):
        self.context = context
        self._token = None

    def __enter__(self):
        self._token = attach(self.context)
        return self.context

    def __exit__(self, exc_type, exc, tb):
        detach(self._token)
        return False
