"""Nestable tracing spans timed with ``perf_counter``.

The tracer is a module-level singleton.  Call sites write

    with span("refine.symtab", routine="main"):
        ...

and pay **one attribute lookup** when tracing is disabled: ``span``
checks ``Tracer.enabled`` and returns a shared no-op context manager,
so instrumented code has effectively zero cost by default.

When enabled, spans record wall time, parent/child hierarchy, and
arbitrary per-span attributes.  The finished forest is exported by
:mod:`repro.obs.report` in a stable JSON schema.
"""

import threading
from time import perf_counter

from repro.obs import context as _context
from repro.obs import metrics as _metrics

# Span names whose durations also feed a latency histogram, so
# ``build_report()`` can quote p50/p95/p99 per pipeline phase.  The
# observation happens in ``Span.__exit__`` — only while tracing is
# enabled — so the disabled fast path is untouched.
PHASE_SPANS = {
    "refine.stage1_symtab": "phase.refine.symtab",
    "refine.stage2_stripped": "phase.refine.stripped",
    "refine.stage3_interproc": "phase.refine.interproc",
    "refine.stage4_cfg": "phase.refine.cfg",
    "exe.read_contents": "phase.refine.total",
    "cfg.build": "phase.cfg.build",
    "indirect.resolve": "phase.indirect.resolve",
    "layout.routine": "phase.layout.routine",
    "layout.finalize": "phase.layout.finalize",
    "verify.lints": "phase.verify.lints",
    "verify.cosim": "phase.verify.cosim",
    "sim.run": "phase.sim.run",
    "cache.load": "phase.cache.load",
    "cache.store": "phase.cache.store",
    "facts.populate": "phase.facts.populate",
    "facts.solve": "phase.facts.solve",
}


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One timed region; children are spans opened while it is active.

    While a :class:`~repro.obs.context.TraceContext` is attached to the
    opening thread, the span additionally records its request identity:
    ``trace_id``, a fresh ``span_id``, and ``parent_span_id`` (the
    enclosing span, or the context's remote parent for the outermost
    span of a thread).  A *detached* span nests children normally but
    never roots in the tracer's global forest — the serve daemon uses
    this for per-request trees that are serialized into the durable
    event log instead of accumulating in process memory.
    """

    __slots__ = ("tracer", "name", "attrs", "start", "duration", "children",
                 "trace_id", "span_id", "parent_span_id", "detached")

    def __init__(self, tracer, name, attrs, detached=False):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = None
        self.duration = None
        self.children = []
        self.trace_id = None
        self.span_id = None
        self.parent_span_id = None
        self.detached = detached

    def set(self, **attrs):
        """Attach attributes to the span; returns the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        tracer = self.tracer
        stack = tracer._stack
        parent = stack[-1] if stack else None
        ctx = _context.current()
        if ctx is not None:
            self.trace_id = ctx.trace_id
            self.span_id = _context.new_span_id()
            self.parent_span_id = parent.span_id if parent is not None \
                else ctx.span_id
        if parent is not None:
            parent.children.append(self)
        elif not self.detached:
            tracer.roots.append(self)
        stack.append(self)
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration = perf_counter() - self.start
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        histogram_name = PHASE_SPANS.get(self.name)
        if histogram_name is not None:
            _metrics.histogram(histogram_name).observe(self.duration)
        return False

    def to_dict(self):
        node = {
            "name": self.name,
            "duration_s": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }
        if self.trace_id is not None:
            node["trace_id"] = self.trace_id
            node["span_id"] = self.span_id
            if self.parent_span_id is not None:
                node["parent_span_id"] = self.parent_span_id
        return node

    def __repr__(self):
        return "Span(%s %.6fs)" % (
            self.name, self.duration if self.duration is not None else -1.0,
        )


class Tracer:
    """Singleton holder of the span forest; disabled by default."""

    def __init__(self):
        self.enabled = False
        self.roots = []
        # The open-span stack is per thread: the serve daemon records
        # spans from many worker threads at once, and a shared stack
        # would interleave their hierarchies (and strand entries, since
        # __exit__ only pops its own span).  Each thread's outermost
        # spans root in the shared forest; appends are GIL-atomic.
        self._tls = threading.local()

    @property
    def _stack(self):
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(self, name, **attrs):
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def request_span(self, name, **attrs):
        """A *detached* span: times and nests children like any other,
        but never joins ``roots`` — the caller owns serialization (the
        daemon writes it to the event log, then drops it)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs, detached=True)

    def enable(self):
        self.enabled = True

    def disable(self):
        self.enabled = False

    def reset(self):
        """Drop all recorded spans (keeps the enabled flag)."""
        self.roots = []
        self._tls = threading.local()

    def tree(self):
        """The completed span forest as plain dicts."""
        return [root.to_dict() for root in self.roots]

    def render(self, min_duration=0.0):
        """Human-readable span tree, one line per span."""
        lines = []

        def emit(node, depth):
            duration = node.duration if node.duration is not None else 0.0
            if duration < min_duration and node.children:
                pass  # still show parents of slow children
            attrs = "".join(
                " %s=%s" % (key, value)
                for key, value in sorted(node.attrs.items())
            )
            lines.append("%s%-*s %10.3fms%s" % (
                "  " * depth, max(1, 40 - 2 * depth), node.name,
                duration * 1e3, attrs,
            ))
            for child in node.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines)


TRACER = Tracer()

# Bound once so a call site pays: global load + call + one attribute
# lookup (``self.enabled``) when disabled.
span = TRACER.span


def enable():
    TRACER.enable()


def disable():
    TRACER.disable()


def is_enabled():
    return TRACER.enabled


def reset():
    TRACER.reset()
