"""Nestable tracing spans timed with ``perf_counter``.

The tracer is a module-level singleton.  Call sites write

    with span("refine.symtab", routine="main"):
        ...

and pay **one attribute lookup** when tracing is disabled: ``span``
checks ``Tracer.enabled`` and returns a shared no-op context manager,
so instrumented code has effectively zero cost by default.

When enabled, spans record wall time, parent/child hierarchy, and
arbitrary per-span attributes.  The finished forest is exported by
:mod:`repro.obs.report` in a stable JSON schema.
"""

import threading
from time import perf_counter


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One timed region; children are spans opened while it is active."""

    __slots__ = ("tracer", "name", "attrs", "start", "duration", "children")

    def __init__(self, tracer, name, attrs):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = None
        self.duration = None
        self.children = []

    def set(self, **attrs):
        """Attach attributes to the span; returns the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        tracer = self.tracer
        stack = tracer._stack
        (stack[-1].children if stack else tracer.roots).append(self)
        stack.append(self)
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration = perf_counter() - self.start
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        return False

    def to_dict(self):
        return {
            "name": self.name,
            "duration_s": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self):
        return "Span(%s %.6fs)" % (
            self.name, self.duration if self.duration is not None else -1.0,
        )


class Tracer:
    """Singleton holder of the span forest; disabled by default."""

    def __init__(self):
        self.enabled = False
        self.roots = []
        # The open-span stack is per thread: the serve daemon records
        # spans from many worker threads at once, and a shared stack
        # would interleave their hierarchies (and strand entries, since
        # __exit__ only pops its own span).  Each thread's outermost
        # spans root in the shared forest; appends are GIL-atomic.
        self._tls = threading.local()

    @property
    def _stack(self):
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(self, name, **attrs):
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def enable(self):
        self.enabled = True

    def disable(self):
        self.enabled = False

    def reset(self):
        """Drop all recorded spans (keeps the enabled flag)."""
        self.roots = []
        self._tls = threading.local()

    def tree(self):
        """The completed span forest as plain dicts."""
        return [root.to_dict() for root in self.roots]

    def render(self, min_duration=0.0):
        """Human-readable span tree, one line per span."""
        lines = []

        def emit(node, depth):
            duration = node.duration if node.duration is not None else 0.0
            if duration < min_duration and node.children:
                pass  # still show parents of slow children
            attrs = "".join(
                " %s=%s" % (key, value)
                for key, value in sorted(node.attrs.items())
            )
            lines.append("%s%-*s %10.3fms%s" % (
                "  " * depth, max(1, 40 - 2 * depth), node.name,
                duration * 1e3, attrs,
            ))
            for child in node.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines)


TRACER = Tracer()

# Bound once so a call site pays: global load + call + one attribute
# lookup (``self.enabled``) when disabled.
span = TRACER.span


def enable():
    TRACER.enable()


def disable():
    TRACER.disable()


def is_enabled():
    return TRACER.enabled


def reset():
    TRACER.reset()
