"""Counters, gauges, and histograms for the edit/simulate pipeline.

Metric objects are interned by name in a module-level :class:`Registry`
so hot call sites can hold a direct reference:

    _BLOCKS = metrics.counter("cfg.blocks")
    ...
    _BLOCKS.inc(len(self.blocks))

``Registry.reset()`` zeroes values **in place** — interned references
stay valid across resets, which is what lets the CLI take a clean
measurement without reloading modules.

Counters are cheap enough to leave unconditional everywhere except the
simulator's fetch/execute loop, which keeps a separate untelemetered
fast path (see ``repro.sim.machine``).
"""

import random as _random
import zlib as _zlib


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def reset(self):
        self.value = 0

    def snapshot(self):
        return self.value


class Gauge:
    """Last-write-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = None

    def set(self, value):
        self.value = value

    def reset(self):
        self.value = None

    def snapshot(self):
        return self.value


class Histogram:
    """Streaming summary plus a bounded reservoir for percentiles.

    The first ``capacity`` observations are kept verbatim; after that,
    classic reservoir sampling keeps a uniform sample of everything
    seen so far, so :meth:`percentile` stays accurate at fixed memory
    no matter how long the process runs.  The sampler's RNG is seeded
    from the metric name, keeping runs reproducible.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "capacity", "_reservoir", "_rng")

    DEFAULT_CAPACITY = 512

    def __init__(self, name, capacity=DEFAULT_CAPACITY):
        self.name = name
        self.capacity = capacity
        self._rng = _random.Random(_zlib.crc32(name.encode("utf-8")))
        self.reset()

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        reservoir = self._reservoir
        if len(reservoir) < self.capacity:
            reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                reservoir[slot] = value

    def percentile(self, q):
        """The *q*-quantile (0.0..1.0) of the sampled distribution,
        linearly interpolated; None before any observation."""
        reservoir = self._reservoir
        if not reservoir:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile %r outside [0, 1]" % (q,))
        ordered = sorted(reservoir)
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def reset(self):
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None
        self._reservoir = []

    def snapshot(self):
        mean = self.total / self.count if self.count else None
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class Registry:
    """Interning store for all metric instruments."""

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def _intern(self, table, factory, name):
        instrument = table.get(name)
        if instrument is None:
            instrument = table[name] = factory(name)
        return instrument

    def counter(self, name):
        return self._intern(self.counters, Counter, name)

    def gauge(self, name):
        return self._intern(self.gauges, Gauge, name)

    def histogram(self, name):
        return self._intern(self.histograms, Histogram, name)

    def reset(self):
        """Zero every instrument in place (references stay valid)."""
        for table in (self.counters, self.gauges, self.histograms):
            for instrument in table.values():
                instrument.reset()

    def snapshot(self):
        """All current values as plain (JSON-ready) dicts."""
        return {
            "counters": {name: c.snapshot()
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: g.snapshot()
                       for name, g in sorted(self.gauges.items())
                       if g.value is not None},
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self.histograms.items())
                           if h.count},
        }


REGISTRY = Registry()

counter = REGISTRY.counter
gauge = REGISTRY.gauge
histogram = REGISTRY.histogram


def reset():
    REGISTRY.reset()


def snapshot():
    return REGISTRY.snapshot()
