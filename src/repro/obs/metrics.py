"""Counters, gauges, and histograms for the edit/simulate pipeline.

Metric objects are interned by name in a module-level :class:`Registry`
so hot call sites can hold a direct reference:

    _BLOCKS = metrics.counter("cfg.blocks")
    ...
    _BLOCKS.inc(len(self.blocks))

``Registry.reset()`` zeroes values **in place** — interned references
stay valid across resets, which is what lets the CLI take a clean
measurement without reloading modules.

Counters are cheap enough to leave unconditional everywhere except the
simulator's fetch/execute loop, which keeps a separate untelemetered
fast path (see ``repro.sim.machine``).
"""


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def reset(self):
        self.value = 0

    def snapshot(self):
        return self.value


class Gauge:
    """Last-write-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = None

    def set(self, value):
        self.value = value

    def reset(self):
        self.value = None

    def snapshot(self):
        return self.value


class Histogram:
    """Streaming summary: count, sum, min, max."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name):
        self.name = name
        self.reset()

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def reset(self):
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None

    def snapshot(self):
        mean = self.total / self.count if self.count else None
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": mean,
        }


class Registry:
    """Interning store for all metric instruments."""

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def _intern(self, table, factory, name):
        instrument = table.get(name)
        if instrument is None:
            instrument = table[name] = factory(name)
        return instrument

    def counter(self, name):
        return self._intern(self.counters, Counter, name)

    def gauge(self, name):
        return self._intern(self.gauges, Gauge, name)

    def histogram(self, name):
        return self._intern(self.histograms, Histogram, name)

    def reset(self):
        """Zero every instrument in place (references stay valid)."""
        for table in (self.counters, self.gauges, self.histograms):
            for instrument in table.values():
                instrument.reset()

    def snapshot(self):
        """All current values as plain (JSON-ready) dicts."""
        return {
            "counters": {name: c.snapshot()
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: g.snapshot()
                       for name, g in sorted(self.gauges.items())
                       if g.value is not None},
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self.histograms.items())
                           if h.count},
        }


REGISTRY = Registry()

counter = REGISTRY.counter
gauge = REGISTRY.gauge
histogram = REGISTRY.histogram


def reset():
    REGISTRY.reset()


def snapshot():
    return REGISTRY.snapshot()
