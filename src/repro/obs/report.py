"""JSON export of telemetry with a stable, versioned schema.

The report is the machine-readable surface the benchmarks and the CLI
share: ``python -m repro.cli stats`` and ``run --stats-json`` both call
:func:`dump`, and ``benchmarks/conftest.py`` writes its
``BENCH_RESULTS.json`` through :func:`write_bench_results`.

Schema ``repro.obs/1``::

    {
      "schema": "repro.obs/1",
      "spans": [ {name, duration_s, attrs, children: [...],
                  trace_id?, span_id?, parent_span_id?} ],
      "counters": { name: int },
      "gauges": { name: value },
      "histograms": { name: {count, sum, min, max, mean,
                             p50, p95, p99} },
      "derived": { name: value },     # ratios + phase percentiles
      "phases": { name: {count, mean, p50, p95, p99, max} },
      "cache": { enabled, dir, hits, misses, stores, invalidations,
                 evictions, hit_rate, latency },  # analysis-cache state
      "facts": { derived, rederived, refreshed, invalidated, adopted,
                 hydrated, hydrate_rejects, escalations,
                 incremental_rate, solve },  # incremental fact store
      "meta": { present, trusted, rejects, trust_rate,
                reject_reasons: {reason: int} },  # .eel.meta trust path
      "serve": { requests, ok, errors, rejected, timeouts, retries,
                 coalesced, degraded, worker_deaths, ok_rate,
                 latency, queue_wait },
      "fleet": { requests, forwarded, rerouted, retries, rejected,
                 shard_deaths, respawns, hot_restarts, forward_rate,
                 queues: {interactive, bulk}, queue_wait,
                 shards: {id: {...}} },  # shards filled by a gateway
      "sim": { default_engine, instructions, runs,
               flyweight: {hits, misses, compiles, evictions, hit_rate},
               blocks: {hits, misses, compiles, evictions,
                        invalidations, hit_rate} }
    }

Benchmark results use schema ``repro.obs.bench/1``::

    { "schema": "repro.obs.bench/1",
      "results": [ {name, value, unit} ] }

New keys may be added; existing keys keep their meaning (tests pin the
key set, so widening the schema is an explicit act).
"""

import json

from repro.obs import metrics, trace

# Pre-register the cache counters (interned by name — repro.cache gets
# the same objects) so they are present, zero-valued, in every snapshot
# even before the cache package loads; otherwise consecutive reports in
# one process could disagree on the counter key set.
for _name in ("hits", "misses", "stores", "invalidations", "evictions",
              "store_errors", "restored_cfgs", "parallel_fallbacks",
              "memory_hits", "prune_races", "parallel_suppressed"):
    metrics.counter("cache." + _name)

# And the serve daemon: a drained daemon flushes these through
# --stats-json, and a report taken in a process that never served
# still carries the full, zero-valued key set.
for _name in ("requests", "responses.ok", "responses.error",
              "rejected.queue_full", "rejected.draining", "timeouts",
              "retries", "coalesced", "degraded", "worker_deaths"):
    metrics.counter("serve." + _name)

# Same for the verify subsystem: lints, cosimulation, and verdict
# memoization report through these whether or not a verify ever runs.
for _name in ("runs", "passed", "failed", "lints_run", "findings",
              "cosim_syncs", "cosim_divergences", "memo_hits",
              "memo_misses", "parallel_fallbacks"):
    metrics.counter("verify." + _name)

# The fleet gateway: forwarding outcomes and lifecycle counters, so a
# gateway's --stats-json (and the `stats` op it serves) always carries
# the full key set, and a non-gateway process reports them as zeros.
for _name in ("requests", "forwarded", "rerouted", "retries",
              "rejected", "shard_deaths", "respawns", "hot_restarts"):
    metrics.counter("fleet." + _name)

# And the simulator engines: the prepared-op flyweight (per-instruction
# engine) and the block-compilation cache (block engine) both report
# here, so a report carries the full key set whichever engine ran.
for _name in ("instructions", "runs", "flyweight.hits",
              "flyweight.misses", "flyweight.compiles",
              "flyweight.evictions", "blocks.hits", "blocks.misses",
              "blocks.compiles", "blocks.evictions",
              "blocks.invalidations"):
    metrics.counter("sim." + _name)

# The incremental fact store (repro.core.facts): derivation, dirty-set,
# hydration, and adoption traffic — the surface the incremental
# re-analysis benchmark and tests assert against.
for _name in ("derived", "rederived", "refreshed", "invalidated",
              "adopted", "hydrated", "hydrate_rejects", "escalations"):
    metrics.counter("facts." + _name)

# Trusted-producer metadata (repro.core.trust): how often .eel.meta was
# present, trusted, or rejected — with one counter per typed rejection
# reason so the adversarial fuzz campaign's classification is visible
# in stats/top/Prometheus without parsing details.
for _name in ("present", "trusted", "rejects"):
    metrics.counter("meta." + _name)
for _name in ("format", "text-hash", "extent", "entry", "dispatch",
              "island", "probe", "cti"):
    metrics.counter("meta.reject." + _name)
del _name

SCHEMA = "repro.obs/1"
BENCH_SCHEMA = "repro.obs.bench/1"


def _ratio(numerator, denominator):
    return numerator / denominator if denominator else None


def _percentiles(summary):
    """The percentile view of one histogram snapshot dict."""
    if not summary:
        return None
    return {
        "count": summary.get("count", 0),
        "mean": summary.get("mean"),
        "p50": summary.get("p50"),
        "p95": summary.get("p95"),
        "p99": summary.get("p99"),
        "max": summary.get("max"),
    }


def derived_metrics(counters, histograms=None):
    """Ratios the paper's Table 1 discussion quotes directly, plus
    p50/p95/p99 for every per-phase latency histogram."""
    derived = {}
    for name, summary in sorted((histograms or {}).items()):
        if name.startswith(("phase.", "serve.latency.", "serve.queue")):
            for key in ("p50", "p95", "p99"):
                if summary.get(key) is not None:
                    derived["%s.%s" % (name, key)] = summary[key]
    hits = counters.get("sim.flyweight.hits", 0)
    misses = counters.get("sim.flyweight.misses", 0)
    rate = _ratio(hits, hits + misses)
    if rate is not None:
        derived["sim.flyweight.hit_rate"] = rate
    bhits = counters.get("sim.blocks.hits", 0)
    bmisses = counters.get("sim.blocks.misses", 0)
    rate = _ratio(bhits, bhits + bmisses)
    if rate is not None:
        derived["sim.blocks.hit_rate"] = rate
    resolved = sum(counters.get("indirect.%s" % status, 0)
                   for status in ("table", "literal", "tailcall"))
    fallback = counters.get("indirect.unanalyzable", 0)
    if resolved or fallback:
        derived["indirect.resolved"] = resolved
        derived["indirect.fallback"] = fallback
        derived["indirect.resolved_rate"] = _ratio(resolved,
                                                   resolved + fallback)
    editable = counters.get("cfg.editable_blocks", 0)
    blocks = counters.get("cfg.blocks", 0)
    if blocks:
        derived["cfg.uneditable_block_rate"] = _ratio(blocks - editable,
                                                      blocks)
    editable_edges = counters.get("cfg.editable_edges", 0)
    edges = counters.get("cfg.edges", 0)
    if edges:
        derived["cfg.uneditable_edge_rate"] = _ratio(edges - editable_edges,
                                                     edges)
    scavenged = counters.get("regalloc.scavenged", 0)
    spilled = counters.get("regalloc.spilled", 0)
    if scavenged or spilled:
        derived["regalloc.spill_rate"] = _ratio(spilled, scavenged + spilled)
    return derived


def cache_section(counters, histograms=None):
    """Analysis-cache state and counters (tentpole surface)."""
    # Imported lazily: repro.obs must not depend on repro.cache at
    # import time (cache.store uses the metrics registry).
    from repro.cache.store import cache_dir, enabled

    histograms = histograms or {}
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    return {
        "enabled": enabled(),
        "dir": cache_dir(),
        "hits": hits,
        "misses": misses,
        "stores": counters.get("cache.stores", 0),
        "invalidations": counters.get("cache.invalidations", 0),
        "evictions": counters.get("cache.evictions", 0),
        "hit_rate": _ratio(hits, hits + misses),
        "latency": {
            "load": _percentiles(histograms.get("phase.cache.load")),
            "store": _percentiles(histograms.get("phase.cache.store")),
        },
    }


def serve_section(counters, histograms=None):
    """Edit-serving daemon state: admission, outcomes, resilience,
    and per-op latency percentiles."""
    histograms = histograms or {}
    requests = counters.get("serve.requests", 0)
    ok = counters.get("serve.responses.ok", 0)
    rejected = (counters.get("serve.rejected.queue_full", 0)
                + counters.get("serve.rejected.draining", 0))
    latency = {}
    for name, summary in sorted(histograms.items()):
        if name.startswith("serve.latency."):
            latency[name[len("serve.latency."):]] = _percentiles(summary)
    return {
        "requests": requests,
        "ok": ok,
        "errors": counters.get("serve.responses.error", 0),
        "rejected": rejected,
        "timeouts": counters.get("serve.timeouts", 0),
        "retries": counters.get("serve.retries", 0),
        "coalesced": counters.get("serve.coalesced", 0),
        "degraded": counters.get("serve.degraded", 0),
        "worker_deaths": counters.get("serve.worker_deaths", 0),
        "ok_rate": _ratio(ok, requests),
        "latency": latency,
        "queue_wait": _percentiles(histograms.get("serve.queue_wait")),
    }


def fleet_section(counters, gauges=None, histograms=None):
    """Fleet gateway state: forwarding outcomes, queue depths, and the
    per-shard table.

    ``shards`` is empty here — only a live gateway knows its shard
    processes, and it grafts its table into this section when it
    answers the ``stats`` op (see ``fleet.gateway``).  Every other
    field comes from the process-local metrics registry, so the
    section exists (zero-valued) in any process's report.
    """
    gauges = gauges or {}
    histograms = histograms or {}
    requests = counters.get("fleet.requests", 0)
    forwarded = counters.get("fleet.forwarded", 0)
    return {
        "requests": requests,
        "forwarded": forwarded,
        "rerouted": counters.get("fleet.rerouted", 0),
        "retries": counters.get("fleet.retries", 0),
        "rejected": counters.get("fleet.rejected", 0),
        "shard_deaths": counters.get("fleet.shard_deaths", 0),
        "respawns": counters.get("fleet.respawns", 0),
        "hot_restarts": counters.get("fleet.hot_restarts", 0),
        "forward_rate": _ratio(forwarded, requests),
        "queues": {
            "interactive": gauges.get("fleet.queue.interactive", 0),
            "bulk": gauges.get("fleet.queue.bulk", 0),
        },
        "queue_wait": _percentiles(histograms.get("fleet.queue_wait")),
        "shards": {},
    }


def sim_section(counters):
    """Simulator engine state: which engine new simulators get by
    default, flyweight (per-instruction) and block-cache (block
    engine) traffic with hit rates."""
    from repro.sim.machine import default_engine

    fly_hits = counters.get("sim.flyweight.hits", 0)
    fly_misses = counters.get("sim.flyweight.misses", 0)
    blk_hits = counters.get("sim.blocks.hits", 0)
    blk_misses = counters.get("sim.blocks.misses", 0)
    return {
        "default_engine": default_engine(),
        "instructions": counters.get("sim.instructions", 0),
        "runs": counters.get("sim.runs", 0),
        "flyweight": {
            "hits": fly_hits,
            "misses": fly_misses,
            "compiles": counters.get("sim.flyweight.compiles", 0),
            "evictions": counters.get("sim.flyweight.evictions", 0),
            "hit_rate": _ratio(fly_hits, fly_hits + fly_misses),
        },
        "blocks": {
            "hits": blk_hits,
            "misses": blk_misses,
            "compiles": counters.get("sim.blocks.compiles", 0),
            "evictions": counters.get("sim.blocks.evictions", 0),
            "invalidations": counters.get("sim.blocks.invalidations", 0),
            "hit_rate": _ratio(blk_hits, blk_hits + blk_misses),
        },
    }


def facts_section(counters, histograms=None):
    """Incremental fact-store state: derivation and dirty-set traffic,
    cache hydration outcomes, and the solve-latency percentiles.

    ``incremental_rate`` is the share of fact derivations that were
    incremental re-derivations or refreshes (vs. cold derivations) —
    the number the incremental-analysis benchmark moves."""
    histograms = histograms or {}
    derived = counters.get("facts.derived", 0)
    rederived = counters.get("facts.rederived", 0)
    refreshed = counters.get("facts.refreshed", 0)
    return {
        "derived": derived,
        "rederived": rederived,
        "refreshed": refreshed,
        "invalidated": counters.get("facts.invalidated", 0),
        "adopted": counters.get("facts.adopted", 0),
        "hydrated": counters.get("facts.hydrated", 0),
        "hydrate_rejects": counters.get("facts.hydrate_rejects", 0),
        "escalations": counters.get("facts.escalations", 0),
        "incremental_rate": _ratio(rederived + refreshed, derived),
        "solve": _percentiles(histograms.get("phase.facts.solve")),
    }


def meta_section(counters):
    """Trusted-metadata fast-path outcomes: how many analyzed images
    carried ``.eel.meta``, how many were trusted vs rejected, and the
    per-reason rejection breakdown (see ``repro.core.trust``)."""
    present = counters.get("meta.present", 0)
    trusted = counters.get("meta.trusted", 0)
    prefix = "meta.reject."
    return {
        "present": present,
        "trusted": trusted,
        "rejects": counters.get("meta.rejects", 0),
        "trust_rate": _ratio(trusted, present),
        "reject_reasons": {name[len(prefix):]: value
                           for name, value in sorted(counters.items())
                           if name.startswith(prefix)},
    }


def phases_section(histograms):
    """Percentile summary of every per-phase latency histogram
    (refinement, CFG build, indirect resolution, layout, cosim,
    simulator runs — see ``trace.PHASE_SPANS``)."""
    return {name[len("phase."):]: _percentiles(summary)
            for name, summary in sorted(histograms.items())
            if name.startswith("phase.")}


def build_report():
    """Snapshot the tracer and metrics registry as one JSON-ready dict."""
    snap = metrics.snapshot()
    return {
        "schema": SCHEMA,
        "spans": trace.TRACER.tree(),
        "counters": snap["counters"],
        "gauges": snap["gauges"],
        "histograms": snap["histograms"],
        "derived": derived_metrics(snap["counters"], snap["histograms"]),
        "phases": phases_section(snap["histograms"]),
        "cache": cache_section(snap["counters"], snap["histograms"]),
        "facts": facts_section(snap["counters"], snap["histograms"]),
        "meta": meta_section(snap["counters"]),
        "serve": serve_section(snap["counters"], snap["histograms"]),
        "fleet": fleet_section(snap["counters"], snap["gauges"],
                               snap["histograms"]),
        "sim": sim_section(snap["counters"]),
    }


def dump(path=None):
    """Build the report; write it to *path* when given.  Returns the dict."""
    report = build_report()
    if path is not None:
        with open(path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def render(report=None, stream=None):
    """Span-tree + top-counter text summary (for ``--trace`` on stderr)."""
    import sys

    if report is None:
        report = build_report()
    if stream is None:
        stream = sys.stderr
    lines = ["-- spans " + "-" * 48]
    lines.append(trace.TRACER.render() or "(tracing disabled or no spans)")
    lines.append("-- counters " + "-" * 45)
    for name, value in sorted(report["counters"].items()):
        lines.append("%-44s %12d" % (name, value))
    for name, value in sorted(report["derived"].items()):
        lines.append("%-44s %12.4f" % (name, value)
                     if isinstance(value, float)
                     else "%-44s %12d" % (name, value))
    print("\n".join(lines), file=stream)


# ----------------------------------------------------------------------
# Benchmark results (satellite: machine-readable bench output)
# ----------------------------------------------------------------------

def bench_record(name, value, unit):
    """One benchmark measurement in the shared schema."""
    return {"name": str(name), "value": value, "unit": str(unit)}


def write_bench_results(path, records):
    """Write ``BENCH_RESULTS.json``; returns the payload dict."""
    payload = {"schema": BENCH_SCHEMA, "results": list(records)}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
