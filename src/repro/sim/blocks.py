"""Block-compiling execution engine (``engine="block"``).

The per-instruction engine in :mod:`repro.sim.machine` pays a fetch,
a decode-cache probe, and a closure call for every architectural
instruction.  This engine decodes a *basic block* once — a straight
run of instructions ending at a control-transfer instruction (CTI),
its delay slot, or a configurable maximum length — and compiles it
into one specialized Python function: operands and pc-relative
targets are folded to constants, the pc/npc delay bookkeeping is
fused away for the straight-line interior, and condition codes live
in locals between instructions.  Compiled blocks are cached per entry
pc within the current text version (a write into an executable
section bumps ``text_version`` and empties the cache, which is the
flyweight eviction story for ``(pc, text-version)`` keys with zero
stale residency) under the same FIFO eviction accounting as the
prepared-op flyweight, reported through the ``sim.blocks.*``
counters.

Two process-wide memo layers sit behind the per-simulator caches:
generated source → code object (``_compile_source``), and per-Image
``(mode, stops, max_len, pc)`` → code entry (``image._block_memo``).
The factory code is simulator-independent — every constant is folded
into the source, state is passed at bind time — so a fresh simulator
over an already-seen image binds ready-made code objects instead of
re-decoding and re-emitting, and skips the single-step warm-up for
memoized pcs.  The memo is only consulted and populated while
``text_version`` is 0 (memory's executable ranges still equal the
image's); once a simulator writes its own text, its compiles go
private.

Observable equivalence with the per-instruction engine is the
contract:

* ``max_steps`` is honored exactly — a block only runs when its
  worst-case length fits the remaining budget, otherwise execution
  falls back to single stepping.
* ``run_until`` blocks are truncated so no interior pc is a stop pc;
  cosim sync points land between instructions exactly as before.
* ``count_pcs`` increments are emitted immediately before each
  instruction's semantics, so profiles match even on crashing runs.
  Category telemetry is aggregated per exit path (a mid-block fault
  may under-count categories by the tail of one block; pc counts,
  registers, and memory never drift).
* ``mem_hook`` fires once per access, before the access, as in the
  interpreter.
* Stores into an executable section invalidate the block caches and
  abort the current block at the store, so self-modifying (or
  runtime-edited) text re-decodes before the next instruction runs.

Known, documented divergence: inside a compiled block ``cpu.pc`` and
``cpu.icc`` are only synchronized at block exits (and before every
syscall dispatch and memory hook that can observe them mid-block they
are *not* repaired) — exception messages fold the faulting pc at
compile time instead of reading ``cpu.pc``, so user-visible errors
still name the right instruction.
"""

import struct

from repro.isa import bits
from repro.isa.base import Category
from repro.obs.trace import TRACER as _TRACER
from repro.sim.machine import (
    M32,
    MipsCPU,
    SimulationError,
    SimulationTimeout,
    SparcCPU,
    _MIPS_IMM,
    _MIPS_REG3,
    _SPARC_ALU,
)

# A block compiles only once its entry pc has been looked up this many
# times: one-shot straight-line code stays on the interpreter (no
# compile latency), loops compile on their second iteration.
WARM_THRESHOLD = 2

# Source -> code object memo shared by every simulator in the process.
# Generated source embeds every constant (pcs, operands, text ranges),
# so equal source means equal code; repeated runs over the same image —
# cosim pairs, benchmark reruns, daemon request streams — skip
# bytecode compilation entirely.  FIFO-bounded like the other caches.
_CODE_CACHE = {}
_CODE_CACHE_CAP = 4096


def _compile_source(source, filename):
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source, filename, "exec")
        if len(_CODE_CACHE) >= _CODE_CACHE_CAP:
            _CODE_CACHE.pop(next(iter(_CODE_CACHE)))
        _CODE_CACHE[source] = code
    return code

# Globals shared by every generated block function: rarely-executed
# names resolve here, hot names are bound as factory locals.
_EXEC_GLOBALS = {
    "to_s32": bits.to_s32,
    "SimulationError": SimulationError,
    "_WORD": struct.Struct(">I"),
    "_HALF": struct.Struct(">H"),
    "_Z16": (0,) * 16,
}
for _category in Category:
    _EXEC_GLOBALS["_CAT_%s" % _category.name] = _category
del _category


# A compiled cache entry is a plain ``(max_len, func)`` tuple — one
# UNPACK in the dispatch loop instead of two attribute loads.  ``func``
# executes the block and returns its instruction count; ``max_len``
# bounds any path for the budget check.  ``func is None`` marks a pc
# the compiler cannot handle (the dispatch loop single-steps it
# forever).
#
# The emitter itself produces *code entries* ``(max_len, code object)``:
# the factory code is simulator-independent (every constant — pcs,
# operands, text bounds — is folded into the source), so it is memoized
# on the Image and shared by every simulator running unmodified text.
# Binding a code entry to one simulator's state (registers, memory,
# syscalls, profile dicts) turns it into the ``(max_len, func)`` form
# the dispatch loop executes.
_UNCOMPILABLE = (1, None)

# Per-image memo cap: code entries for every (mode, stop set, pc) seen
# across all simulators of one image.  FIFO like the other caches.
BLOCK_MEMO_CAP = 4096


def _reg(number):
    return "r[%d]" % number if number else "0"


# ----------------------------------------------------------------------
# Source emission
# ----------------------------------------------------------------------

class _Emitter(object):
    """Builds the Python source of one block, instruction by
    instruction, tracking per-path state (condition-code locals on
    SPARC, category tallies) so each exit path writes back exactly
    what it dirtied."""

    BASE = "        "  # statement indent inside ``def _block():``

    def __init__(self, cpu, mode, stops):
        self.cpu = cpu
        self.count_pcs, self.counting, self.hooked = mode
        self.stops = stops
        self.lines = []
        self.ntmp = 0
        self.path_cats = []
        self.max_count = 0
        self.needs = set()  # which factory-local helpers to bind

    # -- shared helpers ------------------------------------------------
    def tmp(self):
        self.ntmp += 1
        return "_t%d" % self.ntmp

    def count(self, ind, pc, inst):
        if self.count_pcs:
            self.lines.append("%spc_counts[%d] = _pg(%d, 0) + 1"
                              % (ind, pc, pc))
        if self.counting:
            self.path_cats.append(inst.category)

    def snapshot(self):
        return (len(self.path_cats), self._state())

    def restore(self, snap):
        ncats, state = snap
        del self.path_cats[ncats:]
        self._restore_state(state)

    def _state(self):
        return None

    def _restore_state(self, state):
        pass

    def flags_writeback(self, ind):
        pass

    def flush_exit_prologue(self, ind):
        self.flags_writeback(ind)
        if self.counting and self.path_cats:
            tally = {}
            for category in self.path_cats:
                tally[category] = tally.get(category, 0) + 1
            for category in sorted(tally, key=lambda c: c.name):
                name = "_CAT_%s" % category.name
                self.lines.append("%scat[%s] = _cg(%s, 0) + %d"
                                  % (ind, name, name, tally[category]))

    def exit_const(self, ind, count, target):
        self.flush_exit_prologue(ind)
        out = self.lines
        out.append("%scpu.pc = %d" % (ind, target))
        out.append("%scpu.npc = %d" % (ind, target + 4))
        out.append("%ssim.instructions_executed += %d" % (ind, count))
        out.append("%sreturn %d" % (ind, count))
        if count > self.max_count:
            self.max_count = count

    def exit_var(self, ind, count, var):
        self.flush_exit_prologue(ind)
        out = self.lines
        out.append("%scpu.pc = %s" % (ind, var))
        out.append("%scpu.npc = %s + 4" % (ind, var))
        out.append("%ssim.instructions_executed += %d" % (ind, count))
        out.append("%sreturn %d" % (ind, count))
        if count > self.max_count:
            self.max_count = count

    def emit_trap(self, ind, pc, count, num_expr, args_expr, result_reg):
        """A system trap ends the block: architectural state (flags,
        counts, pc/npc) is written back *before* dispatch so a syscall
        — or the ExitProgram unwind — observes exactly what the
        interpreter would show."""
        out = self.lines
        self.flush_exit_prologue(ind)
        out.append("%scpu.pc = %d" % (ind, pc))
        out.append("%scpu.npc = %d" % (ind, pc + 4))
        out.append("%ssim.instructions_executed += %d" % (ind, count))
        t = self.tmp()
        out.append("%s%s = syscalls.dispatch(%s, %s)"
                   % (ind, t, num_expr, args_expr))
        out.append("%sr[%d] = %s & 4294967295" % (ind, result_reg, t))
        out.append("%scpu.pc = %d" % (ind, pc + 4))
        out.append("%scpu.npc = %d" % (ind, pc + 8))
        out.append("%sreturn %d" % (ind, count))
        if count > self.max_count:
            self.max_count = count

    def _emit_store(self, ind, a, width, value_expr):
        """The store proper, with the aligned common case inlined as a
        direct page write (a width-aligned access never crosses a page
        boundary).  The misaligned path falls back to ``mem_store``,
        which carries the strict-mode fault and byte-wise semantics."""
        out = self.lines
        if width == 4:
            self.needs.update(("mem", "page", "word"))
            out.append("%sif %s & 3:" % (ind, a))
            out.append("%s    mem_store(%s, 4, %s)" % (ind, a, value_expr))
            out.append("%selse:" % ind)
            p = self.tmp()
            out.append("%s    %s = _pget(%s >> 12) or _mkpage(%s)"
                       % (ind, p, a, a))
            out.append("%s    _wp(%s, %s & 4095, (%s) & 4294967295)"
                       % (ind, p, a, value_expr))
        elif width == 1:
            self.needs.add("page")
            p = self.tmp()
            out.append("%s%s = _pget(%s >> 12) or _mkpage(%s)"
                       % (ind, p, a, a))
            out.append("%s%s[%s & 4095] = (%s) & 255"
                       % (ind, p, a, value_expr))
        elif width == 2:
            self.needs.update(("mem", "page", "half"))
            out.append("%sif %s & 1:" % (ind, a))
            out.append("%s    mem_store(%s, 2, %s)" % (ind, a, value_expr))
            out.append("%selse:" % ind)
            p = self.tmp()
            out.append("%s    %s = _pget(%s >> 12) or _mkpage(%s)"
                       % (ind, p, a, a))
            out.append("%s    _hp(%s, %s & 4095, (%s) & 65535)"
                       % (ind, p, a, value_expr))
        else:
            self.needs.add("mem")
            out.append("%smem_store(%s, %d, %s)" % (ind, a, width,
                                                    value_expr))

    def _emit_load(self, ind, a, width, signed, dest_reg):
        """Register load with the aligned hit inlined (an unmapped page
        reads as zero, as in :meth:`Memory.load`); a sign-extended
        value is re-masked to 32 bits exactly as the interpreter's
        prepared ops do."""
        out = self.lines
        fallback = "mem_load(%s, %d, %s)" % (a, width, signed)
        if signed:
            fallback += " & 4294967295"
        if width == 4:
            self.needs.update(("mem", "page", "word"))
            p = self.tmp()
            out.append("%sif %s & 3:" % (ind, a))
            out.append("%s    r[%d] = %s" % (ind, dest_reg, fallback))
            out.append("%selse:" % ind)
            out.append("%s    %s = _pget(%s >> 12)" % (ind, p, a))
            out.append("%s    r[%d] = _wu(%s, %s & 4095)[0] "
                       "if %s is not None else 0"
                       % (ind, dest_reg, p, a, p))
        elif width == 1:
            self.needs.add("page")
            p = self.tmp()
            b = self.tmp()
            out.append("%s%s = _pget(%s >> 12)" % (ind, p, a))
            out.append("%s%s = %s[%s & 4095] if %s is not None else 0"
                       % (ind, b, p, a, p))
            if signed:
                # (b - 256) & M32 == b + 4294967040 for the negative
                # half; the positive half passes through unchanged.
                out.append("%sr[%d] = %s + 4294967040 if %s > 127 else %s"
                           % (ind, dest_reg, b, b, b))
            else:
                out.append("%sr[%d] = %s" % (ind, dest_reg, b))
        elif width == 2:
            self.needs.update(("mem", "page", "half"))
            p = self.tmp()
            h = self.tmp()
            out.append("%sif %s & 1:" % (ind, a))
            out.append("%s    r[%d] = %s" % (ind, dest_reg, fallback))
            out.append("%selse:" % ind)
            out.append("%s    %s = _pget(%s >> 12)" % (ind, p, a))
            out.append("%s    %s = _hu(%s, %s & 4095)[0] "
                       "if %s is not None else 0" % (ind, h, p, a, p))
            if signed:
                out.append("%s    r[%d] = %s + 4294901760 "
                           "if %s > 32767 else %s"
                           % (ind, dest_reg, h, h, h))
            else:
                out.append("%s    r[%d] = %s" % (ind, dest_reg, h))
        else:
            self.needs.add("mem")
            out.append("%sr[%d] = %s" % (ind, dest_reg, fallback))

    def emit_memory(self, ind, pc, inst, idx, in_slot, addr_expr,
                    value_expr, dest_reg):
        out = self.lines
        width = inst.mem_width
        cpu = self.cpu
        if inst.category is Category.STORE:
            a = self.tmp()
            out.append("%s%s = %s" % (ind, a, addr_expr))
            if self.hooked:
                out.append("%shook(True, %s, %d)" % (ind, a, width))
            self._emit_store(ind, a, width, value_expr)
            if cpu._text_ranges:
                out.append("%sif %d <= %s < %d:"
                           % (ind, cpu._text_lo, a, cpu._text_hi))
                if in_slot:
                    # The block ends right after the slot: invalidate,
                    # but no compiled tail remains to abort.
                    out.append("%s    cpu._text_write(%s)" % (ind, a))
                else:
                    out.append("%s    if cpu._text_write(%s):" % (ind, a))
                    # Self-modifying text: the rest of this block may
                    # be stale, so exit at the next pc and re-decode.
                    self.exit_const(ind + "        ", idx + 1, pc + 4)
            return
        signed = inst.mem_signed
        a = self.tmp()
        out.append("%s%s = %s" % (ind, a, addr_expr))
        if self.hooked:
            out.append("%shook(False, %s, %d)" % (ind, a, width))
        if dest_reg:
            self._emit_load(ind, a, width, signed, dest_reg)
        elif width in (2, 4):
            # Zero destination: an *aligned* access can neither fault
            # nor store, so only the misaligned path (strict-mode
            # fault parity) still has to run.
            self.needs.add("mem")
            out.append("%sif %s & %d:" % (ind, a, width - 1))
            out.append("%s    mem_load(%s, %d, %s)" % (ind, a, width,
                                                       signed))
        elif width not in (1, 2, 4):
            self.needs.add("mem")
            out.append("%smem_load(%s, %d, %s)" % (ind, a, width, signed))

    def is_nop_branch(self, inst):
        return False

    def fuse_cti(self, ind, pc, inst, count):
        """Emit an unconditional, constant-target CTI *inline* and hand
        the scan its continuation pc, or return None when this CTI must
        end the block.  Fusing calls and unconditional branches is what
        lets blocks span whole call chains instead of stopping every
        handful of instructions."""
        return None

    def fusable_slot(self, pc):
        """``fetch_slot`` for fusion sites: additionally refuses a
        store when text invalidation is armed — the store's early-exit
        path assumes the block ends right after the slot, which is no
        longer true once a continuation is fused behind it."""
        slot = self.fetch_slot(pc)
        if (slot is not None and slot.category is Category.STORE
                and self.cpu._text_ranges):
            return None
        return slot

    # -- driver --------------------------------------------------------
    def compile(self, pc0):
        cpu = self.cpu
        memory = cpu.memory
        decode = cpu.codec.decode
        stops = self.stops
        max_len = cpu._block_max_len
        ind = self.BASE
        pc = pc0
        count = 0
        complete = False
        while count < max_len:
            # `count` (not `pc != pc0`) guards the entry pc: a fused
            # loop may revisit pc0 mid-block, and if pc0 is a stop the
            # interpreter would halt there.
            if stops is not None and count and pc in stops:
                break
            inst = decode(memory.load(pc, 4))
            if self.emittable(inst):
                self.count(ind, pc, inst)
                self.emit_inst(ind, pc, inst, count, False)
                count += 1
                pc += 4
                continue
            if self.is_nop_branch(inst):
                # A statically-untaken, non-annulling branch is a nop:
                # its delay slot is just the next instruction.
                self.count(ind, pc, inst)
                count += 1
                pc += 4
                continue
            fused = self.fuse_cti(ind, pc, inst, count)
            if fused is not None:
                count, pc = fused
                continue
            complete = self.emit_cti(ind, pc, inst, count)
            break
        if not complete:
            if count == 0:
                return _UNCOMPILABLE
            # Ended before an unfusable instruction, at a stop pc, or
            # at the length cap: fall through to the dispatch loop.
            self.exit_const(ind, count, pc)
        return self.finish(pc0)

    def fetch_slot(self, pc):
        """The delay-slot instruction at ``pc + 4``, when it can be
        fused into this block (compilable, not itself delayed, and not
        a run_until stop — a mid-delay stop must come from the
        single-step path so pc/npc land exactly as the interpreter
        leaves them)."""
        slot_pc = pc + 4
        if self.stops is not None and slot_pc in self.stops:
            return None
        inst = self.cpu.codec.decode(self.cpu.memory.load(slot_pc, 4))
        if self.emittable(inst):
            return inst
        return None

    def emit_slot(self, ind, slot_pc, slot, idx):
        self.count(ind, slot_pc, slot)
        self.emit_inst(ind, slot_pc, slot, idx, True)

    def finish(self, pc0):
        header = [
            "def _factory(cpu, sim, r, memory, syscalls, pc_counts, cat):",
        ]
        if "mem" in self.needs:
            header.append("    mem_load = memory.load")
            header.append("    mem_store = memory.store")
        if "page" in self.needs:
            header.append("    _pget = memory._pages.get")
            header.append("    _mkpage = memory._page")
        if "word" in self.needs:
            header.append("    _wu = _WORD.unpack_from")
            header.append("    _wp = _WORD.pack_into")
        if "half" in self.needs:
            header.append("    _hu = _HALF.unpack_from")
            header.append("    _hp = _HALF.pack_into")
        if self.count_pcs:
            header.append("    _pg = pc_counts.get")
        if self.counting:
            header.append("    _cg = cat.get")
        header.append("    def _block():")
        body = list(self.lines)
        if self.hooked:
            # Re-read per execution: cosim and tools may rebind the
            # hook between runs without reconstructing the simulator.
            body.insert(0, "        hook = sim.mem_hook")
        source = "\n".join(header + body + ["    return _block"])
        code = _compile_source(source, "<block 0x%x>" % pc0)
        return (self.max_count, code)


# ----------------------------------------------------------------------
# SPARC
# ----------------------------------------------------------------------

_SPARC_COND = {
    "e": "z",
    "ne": "not z",
    "l": "n ^ v",
    "le": "z or (n ^ v)",
    "ge": "not (n ^ v)",
    "g": "not (z or (n ^ v))",
    "cs": "c",
    "leu": "c or z",
    "gu": "not (c or z)",
    "cc": "not c",
    "pos": "not n",
    "neg": "n",
    "vs": "v",
    "vc": "not v",
}

_SPARC_SIMPLE = frozenset(_SPARC_ALU) | frozenset(
    ("sethi", "save", "restore", "rdpsr", "wrpsr"))


class _SparcEmitter(_Emitter):

    def __init__(self, cpu, mode, stops):
        _Emitter.__init__(self, cpu, mode, stops)
        self.flags_loaded = False
        self.flags_dirty = False

    def _state(self):
        return (self.flags_loaded, self.flags_dirty)

    def _restore_state(self, state):
        self.flags_loaded, self.flags_dirty = state

    def ensure_flags(self, ind):
        if not self.flags_loaded:
            self.lines.append(ind + "n, z, v, c = cpu.icc")
            self.flags_loaded = True

    def set_flags_dirty(self):
        self.flags_loaded = True
        self.flags_dirty = True

    def flags_writeback(self, ind):
        if self.flags_dirty:
            self.lines.append(ind + "cpu.icc = (n, z, v, c)")

    # -- operand helpers -----------------------------------------------
    def src2_const(self, f):
        return f["simm13"] & M32 if f.get("iflag") else None

    def src2_expr(self, f):
        const = self.src2_const(f)
        if const is not None:
            return str(const)
        return _reg(f["rs2"])

    def add_expr(self, rs1, f):
        """``(r[rs1] + src2) & M32`` with constant/zero folding."""
        const = self.src2_const(f)
        if const is not None:
            if rs1 == 0:
                return str(const)
            if const == 0:
                return "r[%d]" % rs1
            return "(r[%d] + %d) & 4294967295" % (rs1, const)
        rs2 = f["rs2"]
        if rs1 == 0:
            return _reg(rs2)
        if rs2 == 0:
            return "r[%d]" % rs1
        return "(r[%d] + r[%d]) & 4294967295" % (rs1, rs2)

    # -- classification ------------------------------------------------
    def emittable(self, inst):
        category = inst.category
        if category is Category.INVALID or category.is_control:
            return False
        if category.is_memory:
            return True
        return inst.name in _SPARC_SIMPLE

    def is_nop_branch(self, inst):
        # ``bn`` without annulment advances like a nop and its "slot"
        # is simply the next instruction.
        return (inst.category is Category.BRANCH and inst.cond == "n"
                and not inst.f["aflag"])

    # -- straight-line instructions --------------------------------------
    def emit_inst(self, ind, pc, inst, idx, in_slot):
        name = inst.name
        f = inst.f
        out = self.lines
        if inst.category.is_memory:
            addr = self.add_expr(f["rs1"], f)
            self.emit_memory(ind, pc, inst, idx, in_slot, addr,
                             _reg(f["rd"]), f["rd"])
            return
        if name == "sethi":
            if f["rd"]:
                out.append("%sr[%d] = %d"
                           % (ind, f["rd"], (f["imm22"] << 10) & M32))
            return
        if name in _SPARC_ALU:
            self.emit_alu(ind, pc, inst, name, f)
            return
        if name == "save":
            t = self.tmp()
            out.append("%s%s = %s" % (ind, t, self.add_expr(f["rs1"], f)))
            out.append("%scpu.windows.append((r[16:24], r[24:32]))" % ind)
            out.append("%sr[24:32] = r[8:16]" % ind)
            out.append("%sr[8:24] = _Z16" % ind)
            if f["rd"]:
                out.append("%sr[%d] = %s" % (ind, f["rd"], t))
            return
        if name == "restore":
            out.append("%sif not cpu.windows:" % ind)
            out.append("%s    raise SimulationError("
                       "'register window underflow')" % ind)
            t = self.tmp()
            out.append("%s%s = %s" % (ind, t, self.add_expr(f["rs1"], f)))
            out.append("%sr[8:16] = r[24:32]" % ind)
            tl, ti = self.tmp(), self.tmp()
            out.append("%s%s, %s = cpu.windows.pop()" % (ind, tl, ti))
            out.append("%sr[16:24] = %s" % (ind, tl))
            out.append("%sr[24:32] = %s" % (ind, ti))
            if f["rd"]:
                out.append("%sr[%d] = %s" % (ind, f["rd"], t))
            return
        if name == "rdpsr":
            if f["rd"]:
                self.ensure_flags(ind)
                out.append("%sr[%d] = (n << 23) | (z << 22) | (v << 21)"
                           " | (c << 20)" % (ind, f["rd"]))
            return
        if name == "wrpsr":
            t = self.tmp()
            out.append("%s%s = %s" % (ind, t, _reg(f["rs1"])))
            out.append("%sn = (%s >> 23) & 1" % (ind, t))
            out.append("%sz = (%s >> 22) & 1" % (ind, t))
            out.append("%sv = (%s >> 21) & 1" % (ind, t))
            out.append("%sc = (%s >> 20) & 1" % (ind, t))
            self.set_flags_dirty()
            return
        raise AssertionError("emittable() admitted %s" % name)

    def emit_alu(self, ind, pc, inst, name, f):
        out = self.lines
        sets_cc = name.endswith("cc")
        base = name[:-2] if sets_cc else name
        rs1 = f["rs1"]
        rd = f["rd"]
        A = _reg(rs1)
        B = self.src2_expr(f)
        const = self.src2_const(f)

        if base in ("add", "sub"):
            if not sets_cc:
                if not rd:
                    return
                if base == "add":
                    out.append("%sr[%d] = %s" % (ind, rd,
                                                 self.add_expr(rs1, f)))
                elif const == 0:
                    out.append("%sr[%d] = %s" % (ind, rd, A))
                else:
                    out.append("%sr[%d] = (%s - %s) & 4294967295"
                               % (ind, rd, A, B))
                return
            a, b, res = self.tmp(), self.tmp(), self.tmp()
            op = "-" if base == "sub" else "+"
            out.append("%s%s = %s" % (ind, a, A))
            out.append("%s%s = %s" % (ind, b, B))
            out.append("%s%s = (%s %s %s) & 4294967295"
                       % (ind, res, a, op, b))
            out.append("%sn = %s >> 31" % (ind, res))
            out.append("%sz = 1 if %s == 0 else 0" % (ind, res))
            if base == "sub":
                out.append("%sv = (((%s ^ %s) & (%s ^ %s)) >> 31) & 1"
                           % (ind, a, b, a, res))
                out.append("%sc = 1 if %s > %s else 0" % (ind, b, a))
            else:
                out.append("%sv = ((~(%s ^ %s) & (%s ^ %s)) >> 31) & 1"
                           % (ind, a, b, a, res))
                out.append("%sc = 1 if %s + %s > 4294967295 else 0"
                           % (ind, a, b))
            self.set_flags_dirty()
            if rd:
                out.append("%sr[%d] = %s" % (ind, rd, res))
            return

        if base in ("sll", "srl", "sra"):
            if not rd:
                return
            if const is not None:
                k = const & 31
                if base == "sll":
                    expr = A if k == 0 else \
                        "(%s << %d) & 4294967295" % (A, k)
                elif base == "srl":
                    expr = A if k == 0 else "%s >> %d" % (A, k)
                else:
                    expr = "(to_s32(%s) >> %d) & 4294967295" % (A, k)
            else:
                if base == "sll":
                    expr = "(%s << (%s & 31)) & 4294967295" % (A, B)
                elif base == "srl":
                    expr = "%s >> (%s & 31)" % (A, B)
                else:
                    expr = "(to_s32(%s) >> (%s & 31)) & 4294967295" % (A, B)
            out.append("%sr[%d] = %s" % (ind, rd, expr))
            return

        if base in ("umul", "smul"):
            p = self.tmp()
            if base == "umul":
                out.append("%s%s = %s * %s" % (ind, p, A, B))
            else:
                out.append("%s%s = to_s32(%s) * to_s32(%s)" % (ind, p, A, B))
            out.append("%scpu.y = (%s >> 32) & 4294967295" % (ind, p))
            if rd:
                out.append("%sr[%d] = %s & 4294967295" % (ind, rd, p))
            return

        if base in ("udiv", "sdiv"):
            b = self.tmp()
            out.append("%s%s = %s" % (ind, b, B))
            out.append("%sif %s == 0:" % (ind, b))
            out.append("%s    raise SimulationError("
                       "'division by zero at 0x%x')" % (ind, pc))
            if base == "udiv":
                if rd:
                    out.append("%sr[%d] = (%s // %s) & 4294967295"
                               % (ind, rd, A, b))
                return
            sa, sb, q = self.tmp(), self.tmp(), self.tmp()
            out.append("%s%s = to_s32(%s)" % (ind, sa, A))
            out.append("%s%s = to_s32(%s)" % (ind, sb, b))
            out.append("%s%s = abs(%s) // abs(%s)" % (ind, q, sa, sb))
            out.append("%sif (%s < 0) != (%s < 0):" % (ind, sa, sb))
            out.append("%s    %s = -%s" % (ind, q, q))
            if rd:
                out.append("%sr[%d] = %s & 4294967295" % (ind, rd, q))
            return

        # Bitwise family: results stay within 32 bits, so the inverted
        # operand of andn/orn/xnor folds into a constant xor.
        if base == "and":
            expr = "%s & %s" % (A, B)
        elif base == "or":
            expr = "%s | %s" % (A, B)
        elif base == "xor":
            expr = "%s ^ %s" % (A, B)
        elif base == "andn":
            expr = "%s & %s" % (A, str(const ^ M32) if const is not None
                                else "(%s ^ 4294967295)" % B)
        elif base == "orn":
            expr = "%s | %s" % (A, str(const ^ M32) if const is not None
                                else "(%s ^ 4294967295)" % B)
        elif base == "xnor":
            if const is not None:
                expr = "%s ^ %d" % (A, const ^ M32)
            else:
                expr = "(%s ^ %s) ^ 4294967295" % (A, B)
        else:
            raise AssertionError("unhandled ALU op %s" % name)
        if not sets_cc:
            if rd:
                out.append("%sr[%d] = %s" % (ind, rd, expr))
            return
        res = self.tmp()
        out.append("%s%s = %s" % (ind, res, expr))
        out.append("%sn = %s >> 31" % (ind, res))
        out.append("%sz = 1 if %s == 0 else 0" % (ind, res))
        out.append("%sv = 0" % ind)
        out.append("%sc = 0" % ind)
        self.set_flags_dirty()
        if rd:
            out.append("%sr[%d] = %s" % (ind, rd, res))

    # -- control transfers ---------------------------------------------
    def fuse_cti(self, ind, pc, inst, count):
        name = inst.name
        f = inst.f
        if inst.category is Category.BRANCH:
            cond = inst.cond
            annulled = bool(f["aflag"])
            if cond == "a":
                target = (pc + (f["disp22"] << 2)) & M32
                if annulled:
                    self.count(ind, pc, inst)
                    return count + 1, target
                slot = self.fusable_slot(pc)
                if slot is None:
                    return None
                self.count(ind, pc, inst)
                self.emit_slot(ind, pc + 4, slot, count + 1)
                return count + 2, target
            if cond == "n" and annulled:
                self.count(ind, pc, inst)
                return count + 1, pc + 8
            return None
        if name == "call":
            slot = self.fusable_slot(pc)
            if slot is None:
                return None
            target = (pc + (f["disp30"] << 2)) & M32
            self.count(ind, pc, inst)
            self.lines.append("%sr[15] = %d" % (ind, pc))
            self.emit_slot(ind, pc + 4, slot, count + 1)
            return count + 2, target
        return None

    def emit_cti(self, ind, pc, inst, idx):
        name = inst.name
        f = inst.f
        out = self.lines

        if name == "ta":
            self.count(ind, pc, inst)
            self.emit_trap(ind, pc, idx + 1, "r[1]", "r[8:14]", 8)
            return True

        if inst.category is Category.BRANCH:
            cond = inst.cond
            annulled = bool(f["aflag"])
            target = (pc + (f["disp22"] << 2)) & M32
            if cond == "a" and annulled:
                self.count(ind, pc, inst)
                self.exit_const(ind, idx + 1, target)
                return True
            if cond == "n":  # annulled: plain bn is handled as a nop
                self.count(ind, pc, inst)
                self.exit_const(ind, idx + 1, pc + 8)
                return True
            slot = self.fetch_slot(pc)
            if slot is None:
                return False
            if cond == "a":
                self.count(ind, pc, inst)
                self.emit_slot(ind, pc + 4, slot, idx + 1)
                self.exit_const(ind, idx + 2, target)
                return True
            self.count(ind, pc, inst)
            self.ensure_flags(ind)
            out.append("%sif %s:" % (ind, _SPARC_COND[cond]))
            snap = self.snapshot()
            self.emit_slot(ind + "    ", pc + 4, slot, idx + 1)
            self.exit_const(ind + "    ", idx + 2, target)
            self.restore(snap)
            if annulled:
                self.exit_const(ind, idx + 1, pc + 8)
            else:
                self.emit_slot(ind, pc + 4, slot, idx + 1)
                self.exit_const(ind, idx + 2, pc + 8)
            return True

        if name == "call":
            slot = self.fetch_slot(pc)
            if slot is None:
                return False
            target = (pc + (f["disp30"] << 2)) & M32
            self.count(ind, pc, inst)
            out.append("%sr[15] = %d" % (ind, pc))
            self.emit_slot(ind, pc + 4, slot, idx + 1)
            self.exit_const(ind, idx + 2, target)
            return True

        if name == "jmpl":
            slot = self.fetch_slot(pc)
            if slot is None:
                return False
            self.count(ind, pc, inst)
            t = self.tmp()
            out.append("%s%s = %s" % (ind, t, self.add_expr(f["rs1"], f)))
            if f["rd"]:
                out.append("%sr[%d] = %d" % (ind, f["rd"], pc))
            out.append("%sif %s & 3:" % (ind, t))
            out.append("%s    raise SimulationError("
                       "'misaligned jump to 0x%%x' %% %s)" % (ind, t))
            self.emit_slot(ind, pc + 4, slot, idx + 1)
            self.exit_var(ind, idx + 2, t)
            return True

        return False


# ----------------------------------------------------------------------
# MIPS
# ----------------------------------------------------------------------

_MIPS_LIKELY = ("beql", "bnel", "blezl", "bgtzl", "bltzl", "bgezl")

_MIPS_SIMPLE = frozenset(_MIPS_REG3) | frozenset(_MIPS_IMM) | frozenset(
    ("sll", "srl", "sra", "sllv", "srlv", "srav", "lui",
     "mfhi", "mflo", "mult", "multu", "div", "divu"))


class _MipsEmitter(_Emitter):

    def emittable(self, inst):
        category = inst.category
        if category is Category.INVALID or category.is_control:
            return False
        if category.is_memory:
            return True
        return inst.name in _MIPS_SIMPLE

    def addr_expr(self, rs, imm):
        if rs == 0:
            return str(imm & M32)
        if imm == 0:
            return "r[%d]" % rs
        return "(r[%d] + %d) & 4294967295" % (rs, imm)

    @staticmethod
    def _branch_parts(inst):
        name = inst.name
        base = name[:-1] if name in _MIPS_LIKELY else name
        f = inst.f
        return base, f["rs"], f.get("rt", 0)

    def _static_branch(self, inst):
        """True/False when the branch outcome is decidable at compile
        time (``$zero`` comparisons), None when it is dynamic."""
        base, rs, rt = self._branch_parts(inst)
        if base in ("beq", "bne"):
            if rs == rt:
                return base == "beq"
            if rs == 0 or rt == 0:
                return None
            return None
        if rs == 0:
            return base in ("blez", "bgez")
        return None

    def _branch_test(self, inst):
        base, rs, rt = self._branch_parts(inst)
        A = _reg(rs)
        if base == "beq":
            return "%s == %s" % (A, _reg(rt))
        if base == "bne":
            return "%s != %s" % (A, _reg(rt))
        if base == "blez":
            return "to_s32(%s) <= 0" % A
        if base == "bgtz":
            return "to_s32(%s) > 0" % A
        if base == "bltz":
            return "to_s32(%s) < 0" % A
        if base == "bgez":
            return "to_s32(%s) >= 0" % A
        return None

    def is_nop_branch(self, inst):
        if inst.category is not Category.BRANCH or inst.annul_untaken:
            return False
        return self._static_branch(inst) is False

    # -- straight-line instructions --------------------------------------
    def emit_inst(self, ind, pc, inst, idx, in_slot):
        name = inst.name
        f = inst.f
        out = self.lines
        category = inst.category

        if category.is_memory:
            addr = self.addr_expr(f["rs"], f["imm16"])
            self.emit_memory(ind, pc, inst, idx, in_slot, addr,
                             _reg(f["rt"]), f["rt"])
            return

        if name in _MIPS_REG3:
            rd, rs, rt = f["rd"], f["rs"], f["rt"]
            if not rd:
                return
            A, B = _reg(rs), _reg(rt)
            if name == "addu":
                if rs == 0:
                    expr = B
                elif rt == 0:
                    expr = A
                else:
                    expr = "(%s + %s) & 4294967295" % (A, B)
            elif name == "subu":
                expr = A if rt == 0 else "(%s - %s) & 4294967295" % (A, B)
            elif name == "and":
                expr = "%s & %s" % (A, B)
            elif name == "or":
                expr = "%s | %s" % (A, B)
            elif name == "xor":
                expr = "%s ^ %s" % (A, B)
            elif name == "nor":
                expr = "(%s | %s) ^ 4294967295" % (A, B)
            elif name == "slt":
                expr = "1 if to_s32(%s) < to_s32(%s) else 0" % (A, B)
            else:  # sltu
                expr = "1 if %s < %s else 0" % (A, B)
            out.append("%sr[%d] = %s" % (ind, rd, expr))
            return

        if name in ("sll", "srl", "sra"):
            rd, rt, k = f["rd"], f["rt"], f["shamt"]
            if not rd:
                return
            A = _reg(rt)
            if name == "sll":
                expr = A if k == 0 else "(%s << %d) & 4294967295" % (A, k)
            elif name == "srl":
                expr = A if k == 0 else "%s >> %d" % (A, k)
            else:
                expr = "(to_s32(%s) >> %d) & 4294967295" % (A, k)
            out.append("%sr[%d] = %s" % (ind, rd, expr))
            return

        if name in ("sllv", "srlv", "srav"):
            rd, rt, rs = f["rd"], f["rt"], f["rs"]
            if not rd:
                return
            A, S = _reg(rt), "(%s & 31)" % _reg(rs)
            if name == "sllv":
                expr = "(%s << %s) & 4294967295" % (A, S)
            elif name == "srlv":
                expr = "%s >> %s" % (A, S)
            else:
                expr = "(to_s32(%s) >> %s) & 4294967295" % (A, S)
            out.append("%sr[%d] = %s" % (ind, rd, expr))
            return

        if name in _MIPS_IMM:
            rt, rs = f["rt"], f["rs"]
            if not rt:
                return
            imm = f.get("imm16", f.get("uimm16", 0))
            A = _reg(rs)
            if name == "addiu":
                expr = self.addr_expr(rs, imm)
            elif name == "slti":
                expr = "1 if to_s32(%s) < %d else 0" % (A, imm)
            elif name == "sltiu":
                expr = "1 if %s < %d else 0" % (A, imm & M32)
            elif name == "andi":
                expr = "%s & %d" % (A, imm)
            elif name == "ori":
                expr = A if imm == 0 else "%s | %d" % (A, imm)
            else:  # xori
                expr = "%s ^ %d" % (A, imm)
            out.append("%sr[%d] = %s" % (ind, rt, expr))
            return

        if name == "lui":
            if f["rt"]:
                out.append("%sr[%d] = %d"
                           % (ind, f["rt"], (f["uimm16"] << 16) & M32))
            return

        if name in ("mfhi", "mflo"):
            if f["rd"]:
                out.append("%sr[%d] = cpu.%s"
                           % (ind, f["rd"],
                              "hi" if name == "mfhi" else "lo"))
            return

        if name in ("mult", "multu"):
            rs, rt = f["rs"], f["rt"]
            p = self.tmp()
            if name == "mult":
                out.append("%s%s = to_s32(%s) * to_s32(%s)"
                           % (ind, p, _reg(rs), _reg(rt)))
            else:
                out.append("%s%s = %s * %s" % (ind, p, _reg(rs), _reg(rt)))
            out.append("%scpu.hi = (%s >> 32) & 4294967295" % (ind, p))
            out.append("%scpu.lo = %s & 4294967295" % (ind, p))
            return

        if name in ("div", "divu"):
            rs, rt = f["rs"], f["rt"]
            A = _reg(rs)
            b = self.tmp()
            out.append("%s%s = %s" % (ind, b, _reg(rt)))
            out.append("%sif %s == 0:" % (ind, b))
            out.append("%s    raise SimulationError("
                       "'division by zero at 0x%x')" % (ind, pc))
            if name == "divu":
                out.append("%scpu.lo = %s // %s" % (ind, A, b))
                out.append("%scpu.hi = %s %% %s" % (ind, A, b))
                return
            sa, sb, q = self.tmp(), self.tmp(), self.tmp()
            out.append("%s%s = to_s32(%s)" % (ind, sa, A))
            out.append("%s%s = to_s32(%s)" % (ind, sb, b))
            out.append("%s%s = abs(%s) // abs(%s)" % (ind, q, sa, sb))
            out.append("%sif (%s < 0) != (%s < 0):" % (ind, sa, sb))
            out.append("%s    %s = -%s" % (ind, q, q))
            out.append("%scpu.lo = %s & 4294967295" % (ind, q))
            out.append("%scpu.hi = (%s - %s * %s) & 4294967295"
                       % (ind, sa, q, sb))
            return

        raise AssertionError("emittable() admitted %s" % name)

    # -- control transfers ---------------------------------------------
    def fuse_cti(self, ind, pc, inst, count):
        name = inst.name
        f = inst.f
        if inst.category is Category.BRANCH:
            decided = self._static_branch(inst)
            if decided is False and inst.annul_untaken:
                self.count(ind, pc, inst)
                return count + 1, pc + 8
            if decided is True:
                slot = self.fusable_slot(pc)
                if slot is None:
                    return None
                target = (pc + (f["imm16"] << 2) + 4) & M32
                self.count(ind, pc, inst)
                self.emit_slot(ind, pc + 4, slot, count + 1)
                return count + 2, target
            return None
        if name in ("j", "jal"):
            slot = self.fusable_slot(pc)
            if slot is None:
                return None
            target = ((pc + 4) & 0xF0000000) | (f["target26"] << 2)
            self.count(ind, pc, inst)
            if name == "jal":
                self.lines.append("%sr[31] = %d" % (ind, pc + 8))
            self.emit_slot(ind, pc + 4, slot, count + 1)
            return count + 2, target
        return None

    def emit_cti(self, ind, pc, inst, idx):
        name = inst.name
        f = inst.f
        out = self.lines

        if name == "syscall":
            self.count(ind, pc, inst)
            self.emit_trap(ind, pc, idx + 1, "r[2]", "r[4:8]", 2)
            return True

        if inst.category is Category.BRANCH:
            annulled = inst.annul_untaken
            target = (pc + (f["imm16"] << 2) + 4) & M32
            decided = self._static_branch(inst)
            if decided is False:  # annulled: plain case is a nop above
                self.count(ind, pc, inst)
                self.exit_const(ind, idx + 1, pc + 8)
                return True
            slot = self.fetch_slot(pc)
            if slot is None:
                return False
            if decided is True:
                self.count(ind, pc, inst)
                self.emit_slot(ind, pc + 4, slot, idx + 1)
                self.exit_const(ind, idx + 2, target)
                return True
            test = self._branch_test(inst)
            if test is None:
                return False
            self.count(ind, pc, inst)
            out.append("%sif %s:" % (ind, test))
            snap = self.snapshot()
            self.emit_slot(ind + "    ", pc + 4, slot, idx + 1)
            self.exit_const(ind + "    ", idx + 2, target)
            self.restore(snap)
            if annulled:
                self.exit_const(ind, idx + 1, pc + 8)
            else:
                self.emit_slot(ind, pc + 4, slot, idx + 1)
                self.exit_const(ind, idx + 2, pc + 8)
            return True

        if name in ("j", "jal"):
            slot = self.fetch_slot(pc)
            if slot is None:
                return False
            target = ((pc + 4) & 0xF0000000) | (f["target26"] << 2)
            self.count(ind, pc, inst)
            if name == "jal":
                out.append("%sr[31] = %d" % (ind, pc + 8))
            self.emit_slot(ind, pc + 4, slot, idx + 1)
            self.exit_const(ind, idx + 2, target)
            return True

        if name in ("jr", "jalr"):
            slot = self.fetch_slot(pc)
            if slot is None:
                return False
            self.count(ind, pc, inst)
            t = self.tmp()
            out.append("%s%s = %s" % (ind, t, _reg(f["rs"])))
            out.append("%sif %s & 3:" % (ind, t))
            out.append("%s    raise SimulationError("
                       "'misaligned jump to 0x%%x' %% %s)" % (ind, t))
            if name == "jalr" and f["rd"]:
                out.append("%sr[%d] = %d" % (ind, f["rd"], pc + 8))
            self.emit_slot(ind, pc + 4, slot, idx + 1)
            self.exit_var(ind, idx + 2, t)
            return True

        return False


# ----------------------------------------------------------------------
# Dispatch loops
# ----------------------------------------------------------------------

class _BlockMixin(object):
    """Block-compiling dispatch shared by both architectures.

    Sits in front of the per-instruction CPU in the MRO: the parent
    supplies register state and prepared-op semantics (the single-step
    fallback), this mixin supplies the block cache and its run loops.
    """

    _EMITTER = None  # set by subclasses

    def __init__(self, simulator):
        super(_BlockMixin, self).__init__(simulator)
        self._block_caches = {}  # mode -> {entry pc: (max_len, func)}
        self._until_caches = {}  # same, truncated at the active stops
        self._until_stops = None
        self._block_cap = simulator.block_cache_cap
        self._block_max_len = simulator.block_max_len
        self._visits = {}
        # Code entries shared across every simulator of this image:
        # valid only while this CPU's text is untouched (text_version
        # 0 means memory's executable ranges still equal the image's).
        memo = getattr(simulator.image, "_block_memo", None)
        if memo is None:
            memo = simulator.image._block_memo = {}
        self._memo = memo
        self.text_version = 0
        self.block_compiles = 0
        self.block_hits = 0
        self.block_misses = 0
        self.block_evictions = 0
        self.block_invalidations = 0
        self.fly_hits = 0  # exact single-step prepared-cache hits
        ranges = []
        for section in simulator.image.sections.values():
            if section.is_exec:
                ranges.append((section.vaddr, section.vaddr + section.size))
        self._text_ranges = ranges
        if ranges:
            # 3-byte slack below each range start so a misaligned store
            # spilling into text from below still invalidates.
            self._text_lo = min(lo for lo, _ in ranges) - 3
            self._text_hi = max(hi for _, hi in ranges)
        else:
            self._text_lo, self._text_hi = 1, 0

    # -- cache plumbing ------------------------------------------------
    def _mode(self, counting):
        simulator = self.simulator
        if counting and self.category_counts is None:
            self.category_counts = {}
        return (simulator.count_pcs, counting,
                simulator.mem_hook is not None)

    def _compile(self, pc, mode, stops):
        if self.text_version:
            # Text diverged from the image: compile privately, never
            # touch the shared memo.
            return self._bind(self._EMITTER(self, mode, stops).compile(pc))
        memo = self._memo
        # Callers may pass stop pcs as any set type; freeze for the key.
        key = (mode, None if stops is None else frozenset(stops),
               self._block_max_len, pc)
        code_entry = memo.get(key)
        if code_entry is None:
            code_entry = self._EMITTER(self, mode, stops).compile(pc)
            memo[key] = code_entry
            if len(memo) > BLOCK_MEMO_CAP:
                memo.pop(next(iter(memo)))
        return self._bind(code_entry)

    def _memo_warm(self, pc, mode, stops):
        """True when another simulator already compiled this block —
        skip the single-step warm-up and bind it immediately."""
        return (not self.text_version
                and (mode, None if stops is None else frozenset(stops),
                     self._block_max_len, pc) in self._memo)

    def _bind(self, code_entry):
        """Turn a shareable ``(max_len, code)`` entry into this
        simulator's executable ``(max_len, func)`` entry."""
        max_count, code = code_entry
        if code is None:
            return _UNCOMPILABLE
        namespace = {}
        exec(code, _EXEC_GLOBALS, namespace)
        simulator = self.simulator
        func = namespace["_factory"](self, simulator, self.r, self.memory,
                                     simulator.syscalls,
                                     simulator.pc_counts,
                                     self.category_counts)
        return (max_count, func)

    def _insert(self, cache, pc, block):
        self.block_compiles += 1
        cache[pc] = block
        if len(cache) > self._block_cap:
            cache.pop(next(iter(cache)))
            self.block_evictions += 1

    def _text_write(self, addr):
        """A store landed in (or within 3 bytes below) an executable
        section: bump the text version and drop every compiled block.
        Returns True when the caches were invalidated."""
        for lo, hi in self._text_ranges:
            if lo - 3 <= addr < hi:
                break
        else:
            return False
        self.text_version += 1
        self.block_invalidations += 1
        for cache in self._block_caches.values():
            cache.clear()
        for cache in self._until_caches.values():
            cache.clear()
        self._visits.clear()
        return True

    def _prepare(self, inst):
        op = super(_BlockMixin, self)._prepare(inst)
        if inst.category is Category.STORE and self._text_ranges:
            reader = self._store_addr_reader(inst)
            lo, hi = self._text_lo, self._text_hi
            text_write = self._text_write
            def checked_store():
                addr = reader()
                op()
                if lo <= addr < hi:
                    text_write(addr)
            return checked_store
        return op

    def _step_one(self, count_pcs, counting):
        """Single-step fallback: byte-for-byte the interpreter's loop
        body, plus exact flyweight-hit accounting (the cheap path here
        is cold by construction)."""
        simulator = self.simulator
        pc = self.pc
        if count_pcs:
            counts = simulator.pc_counts
            counts[pc] = counts.get(pc, 0) + 1
        word = self.memory.load(pc, 4)
        inst = self.codec.decode(word)
        prepared = self._prepared
        op = prepared.get(inst)
        if op is None:
            op = self._prepare(inst)
            prepared[inst] = op
            self.compiles += 1
            if len(prepared) > self._prepared_cap:
                prepared.pop(next(iter(prepared)))
                self.evictions += 1
        else:
            self.fly_hits += 1
        if counting:
            categories = self.category_counts
            categories[inst.category] = categories.get(inst.category, 0) + 1
        simulator.instructions_executed += 1
        op()

    # -- run loops -----------------------------------------------------
    def run(self):
        simulator = self.simulator
        counting = _TRACER.enabled
        count_pcs = simulator.count_pcs
        mode = self._mode(counting)
        cache = self._block_caches.get(mode)
        if cache is None:
            cache = self._block_caches[mode] = {}
        get = cache.get
        visits = self._visits
        budget = simulator.max_steps - simulator.instructions_executed
        steps = 0
        hits = 0
        misses = 0
        try:
            while steps < budget:
                pc = self.pc
                if self.npc != pc + 4:
                    # Resumed mid-delay-slot: restore the straight-line
                    # pc/npc invariant blocks are compiled against.
                    self._step_one(count_pcs, counting)
                    steps += 1
                    continue
                entry = get(pc)
                if entry is None:
                    misses += 1
                    seen = visits.get(pc, 0) + 1
                    if seen < WARM_THRESHOLD \
                            and not self._memo_warm(pc, mode, None):
                        visits[pc] = seen
                        self._step_one(count_pcs, counting)
                        steps += 1
                        continue
                    visits.pop(pc, None)
                    entry = self._compile(pc, mode, None)
                    self._insert(cache, pc, entry)
                    max_len, func = entry
                    if func is None or max_len > budget - steps:
                        self._step_one(count_pcs, counting)
                        steps += 1
                    else:
                        steps += func()
                    continue
                # Hot chain: every block exit re-establishes the
                # npc == pc + 4 invariant, so consecutive cached blocks
                # dispatch without re-checking it.
                while True:
                    max_len, func = entry
                    if func is None or max_len > budget - steps:
                        self._step_one(count_pcs, counting)
                        steps += 1
                        break
                    hits += 1
                    steps += func()
                    if steps >= budget:
                        break
                    entry = get(self.pc)
                    if entry is None:
                        break
        finally:
            self.block_hits += hits
            self.block_misses += misses

    def run_until(self, stop_pcs, budget):
        """Stop-aware twin of :meth:`run` (see ``_BaseCPU.run_until``
        for the contract).  Blocks compiled here are truncated so no
        interior pc is a stop: a sync point can only land between
        instructions, never inside a fused block."""
        simulator = self.simulator
        counting = _TRACER.enabled
        count_pcs = simulator.count_pcs
        mode = self._mode(counting)
        if stop_pcs is not self._until_stops:
            # The truncation points moved with the stop set; recompile
            # lazily against the new one.
            self._until_caches.clear()
            self._until_stops = stop_pcs
        cache = self._until_caches.get(mode)
        if cache is None:
            cache = self._until_caches[mode] = {}
        get = cache.get
        steps = 0
        hits = 0
        misses = 0
        try:
            while steps < budget:
                pc = self.pc
                if self.npc != pc + 4:
                    self._step_one(count_pcs, counting)
                    steps += 1
                else:
                    entry = get(pc)
                    if entry is None:
                        misses += 1
                        entry = self._compile(pc, mode, stop_pcs)
                        self._insert(cache, pc, entry)
                        cached = False
                    else:
                        cached = True
                    max_len, func = entry
                    if func is None or max_len > budget - steps:
                        self._step_one(count_pcs, counting)
                        steps += 1
                    else:
                        if cached:
                            hits += 1
                        steps += func()
                if self.pc in stop_pcs:
                    return steps
        finally:
            self.block_hits += hits
            self.block_misses += misses
        raise SimulationTimeout(self.pc, steps)


class BlockSparcCPU(_BlockMixin, SparcCPU):
    """SPARC with block compilation over the handwritten model."""

    _EMITTER = _SparcEmitter

    def _store_addr_reader(self, inst):
        f = inst.f
        r = self.r
        rs1 = f["rs1"]
        if f.get("iflag"):
            imm = f["simm13"] & M32
            return lambda: (r[rs1] + imm) & M32
        rs2 = f["rs2"]
        return lambda: (r[rs1] + r[rs2]) & M32


class BlockMipsCPU(_BlockMixin, MipsCPU):
    """MIPS with block compilation over the handwritten model."""

    _EMITTER = _MipsEmitter

    def _store_addr_reader(self, inst):
        f = inst.f
        r = self.r
        rs, imm = f["rs"], f["imm16"]
        return lambda: (r[rs] + imm) & M32
