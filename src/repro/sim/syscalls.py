"""System-call layer shared by both simulated architectures.

The convention mimics SunOS-style software traps: the syscall number is
in a designated register (%g1 on SPARC, $v0 on MIPS), arguments in the
argument registers, and the result in the first argument/result register.
"""

SYS_EXIT = 1
SYS_PUTINT = 2
SYS_PUTCHAR = 3
SYS_PUTSTR = 4
SYS_GETINT = 5
SYS_SBRK = 6
SYS_GETCHAR = 7
SYS_CYCLES = 8
SYS_CACHE_HANDLER = 9  # host-side cache-miss handler (Active Memory tool)
SYS_FAULT = 10  # protection fault (Blizzard / SFI tools)


class ExitProgram(Exception):
    """Raised by SYS_EXIT to unwind the execution loop."""

    def __init__(self, code):
        super().__init__("exit(%d)" % code)
        self.code = code


class ProtectionFault(Exception):
    """Raised by SYS_FAULT: an access-control or sandbox violation."""

    def __init__(self, addr):
        super().__init__("protection fault at 0x%x" % addr)
        self.addr = addr


class SyscallHandler:
    """Dispatches syscalls against a simulator instance."""

    def __init__(self, simulator, stdin_text=""):
        self.simulator = simulator
        self.stdout = []
        self._stdin_tokens = stdin_text.split()
        self._stdin_chars = list(stdin_text)
        self.exit_code = None
        self.cache_hook = None  # set by the Active Memory tool harness
        self.fault_hook = None  # set by the Blizzard/SFI harnesses
        self.tool_hooks = {}  # extra syscall numbers -> callable(args)

    @property
    def output(self):
        return "".join(self.stdout)

    def dispatch(self, number, args):
        """Handle syscall *number* with *args*; return the result value."""
        if number == SYS_EXIT:
            raise ExitProgram(args[0] & 0xFFFFFFFF)
        if number == SYS_PUTINT:
            value = args[0] & 0xFFFFFFFF
            if value & 0x80000000:
                value -= 0x100000000
            self.stdout.append(str(value))
            return 0
        if number == SYS_PUTCHAR:
            self.stdout.append(chr(args[0] & 0xFF))
            return 0
        if number == SYS_PUTSTR:
            self.stdout.append(self.simulator.memory.read_cstring(args[0]))
            return 0
        if number == SYS_GETINT:
            if not self._stdin_tokens:
                return 0
            return int(self._stdin_tokens.pop(0)) & 0xFFFFFFFF
        if number == SYS_SBRK:
            return self.simulator.sbrk(args[0])
        if number == SYS_GETCHAR:
            if not self._stdin_chars:
                return 0xFFFFFFFF  # -1
            return ord(self._stdin_chars.pop(0))
        if number == SYS_CYCLES:
            return self.simulator.instructions_executed & 0xFFFFFFFF
        if number == SYS_CACHE_HANDLER:
            if self.cache_hook is None:
                return 0
            return self.cache_hook(args[0], args[1])
        if number == SYS_FAULT:
            if self.fault_hook is not None:
                return self.fault_hook(args[0])
            raise ProtectionFault(args[0])
        hook = self.tool_hooks.get(number)
        if hook is not None:
            return hook(args)
        raise ValueError("unknown syscall %d" % number)
