"""Sparse paged memory for the simulator."""

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


def _sign_extend(value, width):
    sign_bit = 1 << (width * 8 - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


class MemoryFault(Exception):
    """An access outside mapped pages (when strict) or a misaligned access."""


class Memory:
    """Byte-addressable sparse memory; pages materialize on demand.

    Misaligned scalar accesses fault only in *strict* mode.  By default
    they are performed byte-wise, matching how SPARC systems emulate
    misaligned accesses in the alignment trap handler — the program
    sees the access succeed, just slowly.
    """

    def __init__(self, strict=False):
        self._pages = {}
        self.strict = strict

    def _page(self, addr):
        number = addr >> PAGE_SHIFT
        page = self._pages.get(number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[number] = page
        return page

    # -- bulk -------------------------------------------------------------
    def write_bytes(self, addr, data):
        offset = 0
        remaining = len(data)
        while remaining:
            page = self._page(addr + offset)
            start = (addr + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - start, remaining)
            page[start : start + chunk] = data[offset : offset + chunk]
            offset += chunk
            remaining -= chunk

    def read_bytes(self, addr, count):
        out = bytearray()
        offset = 0
        while count:
            page = self._page(addr + offset)
            start = (addr + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - start, count)
            out += page[start : start + chunk]
            offset += chunk
            count -= chunk
        return bytes(out)

    # -- scalar (big-endian) -----------------------------------------------
    def load(self, addr, width, signed=False):
        if addr & (width - 1):
            if self.strict:
                raise MemoryFault(
                    "misaligned %d-byte load at 0x%x" % (width, addr)
                )
            value = int.from_bytes(self.read_bytes(addr, width), "big")
            return _sign_extend(value, width) if signed else value
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            value = 0
        else:
            start = addr & PAGE_MASK
            value = int.from_bytes(page[start : start + width], "big")
        if signed:
            value = _sign_extend(value, width)
        return value

    def store(self, addr, width, value):
        masked = value & ((1 << (width * 8)) - 1)
        if addr & (width - 1):
            if self.strict:
                raise MemoryFault(
                    "misaligned %d-byte store at 0x%x" % (width, addr)
                )
            self.write_bytes(addr, masked.to_bytes(width, "big"))
            return
        page = self._page(addr)
        start = addr & PAGE_MASK
        page[start : start + width] = masked.to_bytes(width, "big")

    def load_word(self, addr):
        return self.load(addr, 4)

    def store_word(self, addr, value):
        self.store(addr, 4, value)

    def read_cstring(self, addr, limit=4096):
        """NUL-terminated string starting at *addr*."""
        out = bytearray()
        while len(out) < limit:
            byte = self.load(addr + len(out), 1)
            if byte == 0:
                break
            out.append(byte)
        return out.decode("utf-8", "replace")
