"""Direct-execution simulator for EELF executables.

The simulator is the stand-in for the paper's SPARCstation: it runs
original and edited binaries, provides ground-truth execution counts for
validating instrumentation, and reports instruction counts that serve as
the time metric in the benchmark harness.
"""

from repro.sim.machine import (
    SimulationError,
    Simulator,
    run_image,
)
from repro.sim.memory import Memory, MemoryFault

__all__ = [
    "Simulator",
    "SimulationError",
    "run_image",
    "Memory",
    "MemoryFault",
]
