"""Direct-execution simulator for EELF executables.

The simulator is the stand-in for the paper's SPARCstation: it runs
original and edited binaries, provides ground-truth execution counts for
validating instrumentation, and reports instruction counts that serve as
the time metric in the benchmark harness.

Two interchangeable engines execute instructions (plus the
description-driven ``spawn`` engine): the per-instruction
``handwritten`` interpreter and the default ``block`` engine, which
compiles basic blocks into specialized Python functions
(:mod:`repro.sim.blocks`).  Select per Simulator with ``engine=`` or
process-wide with ``$REPRO_SIM_ENGINE``.
"""

from repro.sim.machine import (
    ENGINES,
    SimulationError,
    SimulationTimeout,
    Simulator,
    default_engine,
    run_image,
)
from repro.sim.memory import Memory, MemoryFault

__all__ = [
    "ENGINES",
    "Simulator",
    "SimulationError",
    "SimulationTimeout",
    "default_engine",
    "run_image",
    "Memory",
    "MemoryFault",
]
