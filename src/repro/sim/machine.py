"""The execution engine: pc/npc CPUs for SPARC and MIPS.

Both CPUs use the architectural pc/npc pair, which makes delayed branches
and annulment fall out naturally: a taken transfer replaces *npc* while
the delay-slot instruction (at the old npc) still executes; an annulled
untaken branch skips it.

For speed, each distinct decoded instruction is compiled once into a
closure ("prepared op"); the flyweight instruction cache keeps the number
of closures small.
"""

from repro.binfmt import layout
from repro.env import env_choice
from repro.isa import bits, get_codec
from repro.isa.base import Category
from repro.obs import metrics as _metrics
from repro.obs.trace import TRACER as _TRACER
from repro.obs.trace import span as _span
from repro.sim.memory import Memory, MemoryFault
from repro.sim.syscalls import ExitProgram, SyscallHandler

M32 = 0xFFFFFFFF

_C_INSTRUCTIONS = _metrics.counter("sim.instructions")
_C_FLY_HITS = _metrics.counter("sim.flyweight.hits")
_C_FLY_MISSES = _metrics.counter("sim.flyweight.misses")
_C_FLY_COMPILES = _metrics.counter("sim.flyweight.compiles")
_C_FLY_EVICTIONS = _metrics.counter("sim.flyweight.evictions")
_C_BLK_HITS = _metrics.counter("sim.blocks.hits")
_C_BLK_MISSES = _metrics.counter("sim.blocks.misses")
_C_BLK_COMPILES = _metrics.counter("sim.blocks.compiles")
_C_BLK_EVICTIONS = _metrics.counter("sim.blocks.evictions")
_C_BLK_INVALIDATIONS = _metrics.counter("sim.blocks.invalidations")
_C_RUNS = _metrics.counter("sim.runs")

# Default cap on prepared-op closures per CPU.  Large enough that a
# whole program compiles once (hit rates stay ~1), small enough that a
# long-lived session simulating many binaries cannot grow without bound.
PREPARED_CACHE_CAP = 4096

# Block-engine defaults: compiled blocks cached per CPU, and the
# maximum instructions fused into one block (also the conservative
# bound the budget check uses before entering a block).
BLOCK_CACHE_CAP = 1024
BLOCK_MAX_LEN = 48

# Execution engines: "block" compiles basic blocks to specialized
# Python (repro.sim.blocks), "handwritten" is the seed per-instruction
# interpreter, "spawn" derives per-instruction semantics from the
# machine description (no block compilation — see repro.spawn.executor).
ENGINES = ("block", "handwritten", "spawn")
DEFAULT_ENGINE = "block"


def default_engine():
    """The engine used when a Simulator is built without an explicit
    choice: ``$REPRO_SIM_ENGINE`` when set to a valid engine name,
    else ``"block"``."""
    return env_choice("REPRO_SIM_ENGINE", DEFAULT_ENGINE, ENGINES)


class SimulationError(Exception):
    """Illegal instruction, window underflow, runaway program, etc."""


class SimulationTimeout(SimulationError):
    """The step budget ran out before the program exited.

    Distinct from other simulation errors so callers (notably the
    verify cosimulation oracle) can tell "diverged" from "ran long",
    and carries where execution was when the budget expired.
    """

    def __init__(self, pc, steps):
        super().__init__(
            "program ran %d steps without exiting (pc 0x%x)" % (steps, pc))
        self.pc = pc
        self.steps = steps


class Simulator:
    """Load an EELF executable and execute it."""

    def __init__(self, image, stdin_text="", max_steps=50_000_000,
                 count_pcs=False, mem_hook=None, brk_base=None,
                 engine=None, prepared_cache_cap=PREPARED_CACHE_CAP,
                 strict_memory=False, block_cache_cap=BLOCK_CACHE_CAP,
                 block_max_len=BLOCK_MAX_LEN):
        self.image = image
        # A zero or negative cap would evict the entry just inserted
        # (the only one), recompiling every instruction forever while
        # the hit counters read as all-miss — a configuration error,
        # not a mode.
        if prepared_cache_cap < 1:
            raise ValueError("prepared_cache_cap must be >= 1, got %r"
                             % (prepared_cache_cap,))
        if block_cache_cap < 1:
            raise ValueError("block_cache_cap must be >= 1, got %r"
                             % (block_cache_cap,))
        if block_max_len < 1:
            raise ValueError("block_max_len must be >= 1, got %r"
                             % (block_max_len,))
        self.prepared_cache_cap = prepared_cache_cap
        self.block_cache_cap = block_cache_cap
        self.block_max_len = block_max_len
        self.memory = Memory(strict=strict_memory)
        for section in image.sections.values():
            if section.flags & 4:  # SEC_NOBITS: zero pages materialize lazily
                continue
            self.memory.write_bytes(section.vaddr, bytes(section.data))
        if brk_base is not None:
            self.brk = brk_base
        else:
            self.brk = layout.align_up(
                image.address_limit() + layout.HEAP_GAP, 16
            )
        self.max_steps = max_steps
        self.instructions_executed = 0
        # High-water marks of what _record_telemetry already merged into
        # the process-wide counters (the simulator's own totals stay
        # cumulative; the registry only ever receives deltas).
        self._reported_instructions = 0
        self._reported_compiles = 0
        self._reported_evictions = 0
        self._reported_fly_hits = 0
        self._reported_blocks = {}
        self._reported_categories = {}
        self.count_pcs = count_pcs
        self.pc_counts = {}
        self.mem_hook = mem_hook
        self.syscalls = SyscallHandler(self, stdin_text=stdin_text)
        if engine is None:
            engine = default_engine()
        self.engine = engine
        if engine == "spawn":
            # Description-driven execution: semantics come from the spawn
            # machine description instead of the handwritten CPU model.
            # Per-instruction by design (the description has no block
            # view); it still gets the shared dispatch-loop fixes.
            from repro.spawn.executor import SpawnCPU

            self.cpu = SpawnCPU(self)
        elif engine == "block":
            from repro.sim.blocks import BlockMipsCPU, BlockSparcCPU

            if image.arch == "sparc":
                self.cpu = BlockSparcCPU(self)
            elif image.arch == "mips":
                self.cpu = BlockMipsCPU(self)
            else:
                raise SimulationError("no CPU model for arch %r"
                                      % image.arch)
        elif engine == "handwritten":
            if image.arch == "sparc":
                self.cpu = SparcCPU(self)
            elif image.arch == "mips":
                self.cpu = MipsCPU(self)
            else:
                raise SimulationError("no CPU model for arch %r"
                                      % image.arch)
        else:
            raise ValueError("unknown engine %r (expected one of %s)"
                             % (engine, ", ".join(ENGINES)))

    def sbrk(self, increment):
        old = self.brk
        self.brk = (self.brk + bits.to_s32(increment) + 15) & ~15
        return old

    @property
    def output(self):
        return self.syscalls.output

    @property
    def exit_code(self):
        return self.syscalls.exit_code

    def run(self):
        """Execute until exit; returns the exit code."""
        try:
            with _span("sim.run", arch=self.image.arch) as sp:
                try:
                    self.cpu.run()
                except ExitProgram as exit_request:
                    self.syscalls.exit_code = exit_request.code
                    sp.set(exit_code=exit_request.code,
                           instructions=self.instructions_executed)
                    return exit_request.code
        finally:
            self._record_telemetry()
        # Cumulative work, not the per-call budget: a resumed run that
        # times out again reports everything executed so far.
        raise SimulationTimeout(self.cpu.pc, self.instructions_executed)

    def _record_telemetry(self):
        """Flush flyweight/instruction metrics accrued since last flush.

        ``instructions_executed``, ``compiles``, and ``evictions`` are
        cumulative over the simulator's lifetime, but a simulator can
        be flushed more than once — the cosim oracle flushes after its
        stepping loop, a timed-out run can be resumed and re-run, and
        the serve daemon reuses nothing but still funnels many runs
        through one metrics registry.  Merging the raw totals would
        re-count everything already reported, so only the delta since
        the previous flush is merged.
        """
        cpu = self.cpu
        executed = self.instructions_executed - self._reported_instructions
        compiles = getattr(cpu, "compiles", 0)
        evictions = getattr(cpu, "evictions", 0)
        compiles_delta = compiles - self._reported_compiles
        evictions_delta = evictions - self._reported_evictions
        self._reported_instructions += executed
        self._reported_compiles = compiles
        self._reported_evictions = evictions
        _C_RUNS.inc()
        _C_INSTRUCTIONS.inc(executed)
        _C_FLY_COMPILES.inc(compiles_delta)
        _C_FLY_MISSES.inc(compiles_delta)
        fly_hits = getattr(cpu, "fly_hits", None)
        if fly_hits is None:
            # Per-instruction engines: every executed instruction either
            # hit the prepared cache or compiled, so the difference is
            # the exact hit count (the cap validation above guarantees
            # an insert is never its own eviction victim).
            _C_FLY_HITS.inc(executed - compiles_delta)
        else:
            # Block engine: most instructions execute inside compiled
            # blocks and never touch the prepared cache, so the CPU
            # counts its single-step hits exactly.
            _C_FLY_HITS.inc(fly_hits - self._reported_fly_hits)
            self._reported_fly_hits = fly_hits
        _C_FLY_EVICTIONS.inc(evictions_delta)
        for counter, attr in ((_C_BLK_HITS, "block_hits"),
                              (_C_BLK_MISSES, "block_misses"),
                              (_C_BLK_COMPILES, "block_compiles"),
                              (_C_BLK_EVICTIONS, "block_evictions"),
                              (_C_BLK_INVALIDATIONS, "block_invalidations")):
            total = getattr(cpu, attr, 0)
            reported = self._reported_blocks.get(attr, 0)
            if total != reported:
                counter.inc(total - reported)
                self._reported_blocks[attr] = total
        categories = getattr(self.cpu, "category_counts", None)
        if categories:
            for category, count in categories.items():
                name = "sim.category.%s" % category.name.lower()
                reported = self._reported_categories.get(name, 0)
                self._reported_categories[name] = count
                _metrics.counter(name).inc(count - reported)


def run_image(image, stdin_text="", max_steps=50_000_000, count_pcs=False,
              strict_memory=False, engine=None):
    """Convenience: simulate *image* and return the finished Simulator."""
    simulator = Simulator(image, stdin_text=stdin_text, max_steps=max_steps,
                          count_pcs=count_pcs, strict_memory=strict_memory,
                          engine=engine)
    simulator.run()
    return simulator


class _BaseCPU:
    """Shared fetch/dispatch loop with prepared-op compilation."""

    def __init__(self, simulator):
        self.simulator = simulator
        self.memory = simulator.memory
        self.codec = get_codec(simulator.image.arch)
        self.pc = simulator.image.entry
        self.npc = self.pc + 4
        self._prepared = {}
        self._prepared_cap = getattr(simulator, "prepared_cache_cap",
                                     PREPARED_CACHE_CAP)
        self.compiles = 0  # flyweight-cache misses (one compile each)
        self.evictions = 0  # prepared ops dropped by the size cap
        self.category_counts = None  # filled by the telemetry loop

    def run(self):
        # Telemetry is checked ONCE, out here: the disabled path below is
        # byte-for-byte the seed dispatch loop, so disabled telemetry
        # costs nothing per instruction.
        if _TRACER.enabled:
            self._run_counting()
            return
        simulator = self.simulator
        memory = self.memory
        decode = self.codec.decode
        prepared = self._prepared
        cap = self._prepared_cap
        # The budget is cumulative across resumed runs: a timed-out
        # simulator run() again continues with what remains of
        # max_steps, it does not get a fresh allowance.
        budget = simulator.max_steps - simulator.instructions_executed
        count_pcs = simulator.count_pcs
        pc_counts = simulator.pc_counts
        steps = 0
        while steps < budget:
            pc = self.pc
            if count_pcs:
                pc_counts[pc] = pc_counts.get(pc, 0) + 1
            word = memory.load(pc, 4)
            inst = decode(word)
            op = prepared.get(inst)
            if op is None:
                op = self._prepare(inst)
                prepared[inst] = op
                self.compiles += 1
                if len(prepared) > cap:
                    # Evict the oldest entry (insertion order); hits pay
                    # nothing for the cap, and a re-missed instruction
                    # simply recompiles and re-enters at the tail.
                    prepared.pop(next(iter(prepared)))
                    self.evictions += 1
            steps += 1
            # Kept current so the SYS_CYCLES trap can report it.
            simulator.instructions_executed += 1
            op()

    def run_until(self, stop_pcs, budget):
        """Execute until the next fetch pc lands in *stop_pcs*.

        The lockstep stepping hook for the verify cosimulation oracle:
        the caller advances two simulators sync point to sync point and
        compares architectural state between calls.  At least one
        instruction always executes (the current pc is typically itself
        a stop).  Raises :class:`SimulationTimeout` when *budget*
        instructions run without reaching a stop; ``ExitProgram``
        propagates to the caller.  Returns the instructions executed.
        """
        simulator = self.simulator
        memory = self.memory
        decode = self.codec.decode
        prepared = self._prepared
        cap = self._prepared_cap
        # The same counting split as run(): a cosim-driven run under
        # telemetry (or with count_pcs) must profile every stepped
        # instruction, not silently skip them.
        count_pcs = simulator.count_pcs
        pc_counts = simulator.pc_counts
        categories = None
        if _TRACER.enabled:
            categories = self.category_counts
            if categories is None:
                categories = self.category_counts = {}
        steps = 0
        while steps < budget:
            pc = self.pc
            if count_pcs:
                pc_counts[pc] = pc_counts.get(pc, 0) + 1
            word = memory.load(pc, 4)
            inst = decode(word)
            op = prepared.get(inst)
            if op is None:
                op = self._prepare(inst)
                prepared[inst] = op
                self.compiles += 1
                if len(prepared) > cap:
                    prepared.pop(next(iter(prepared)))
                    self.evictions += 1
            if categories is not None:
                categories[inst.category] = \
                    categories.get(inst.category, 0) + 1
            steps += 1
            simulator.instructions_executed += 1
            op()
            if self.pc in stop_pcs:
                return steps
        raise SimulationTimeout(self.pc, steps)

    def _run_counting(self):
        """The dispatch loop with per-category instruction accounting.

        Only entered when telemetry is enabled; the counts land in the
        ``sim.category.*`` counters when the run finishes (even on
        program exit, which unwinds through here as ExitProgram).
        """
        simulator = self.simulator
        memory = self.memory
        decode = self.codec.decode
        prepared = self._prepared
        cap = self._prepared_cap
        budget = simulator.max_steps - simulator.instructions_executed
        count_pcs = simulator.count_pcs
        pc_counts = simulator.pc_counts
        # Cumulative across resumed runs, like compiles/evictions: the
        # telemetry flush merges deltas, so the totals must only grow.
        categories = self.category_counts
        if categories is None:
            categories = self.category_counts = {}
        steps = 0
        while steps < budget:
            pc = self.pc
            if count_pcs:
                pc_counts[pc] = pc_counts.get(pc, 0) + 1
            word = memory.load(pc, 4)
            inst = decode(word)
            op = prepared.get(inst)
            if op is None:
                op = self._prepare(inst)
                prepared[inst] = op
                self.compiles += 1
                if len(prepared) > cap:
                    # Evict the oldest entry (insertion order); hits pay
                    # nothing for the cap, and a re-missed instruction
                    # simply recompiles and re-enters at the tail.
                    prepared.pop(next(iter(prepared)))
                    self.evictions += 1
            category = inst.category
            categories[category] = categories.get(category, 0) + 1
            steps += 1
            simulator.instructions_executed += 1
            op()

    def _advance(self):
        self.pc = self.npc
        self.npc += 4

    def _transfer(self, target):
        """Taken control transfer: the delay slot at npc still executes."""
        self.pc = self.npc
        self.npc = target

    def _transfer_annulled(self, target):
        """Transfer that annuls its delay slot (ba,a)."""
        self.pc = target
        self.npc = target + 4

    def _skip_delay(self):
        """Untaken annulled branch: skip the delay slot."""
        self.pc = self.npc + 4
        self.npc = self.pc + 4

    def _prepare(self, inst):
        raise NotImplementedError


# ----------------------------------------------------------------------
# SPARC
# ----------------------------------------------------------------------

def _sparc_cond_test(cond):
    """Return a function of (n, z, v, c) implementing branch condition."""
    tests = {
        "a": lambda n, z, v, c: True,
        "n": lambda n, z, v, c: False,
        "e": lambda n, z, v, c: z,
        "ne": lambda n, z, v, c: not z,
        "l": lambda n, z, v, c: bool(n ^ v),
        "le": lambda n, z, v, c: bool(z or (n ^ v)),
        "ge": lambda n, z, v, c: not (n ^ v),
        "g": lambda n, z, v, c: not (z or (n ^ v)),
        "cs": lambda n, z, v, c: bool(c),
        "leu": lambda n, z, v, c: bool(c or z),
        "gu": lambda n, z, v, c: not (c or z),
        "cc": lambda n, z, v, c: not c,
        "pos": lambda n, z, v, c: not n,
        "neg": lambda n, z, v, c: bool(n),
        "vs": lambda n, z, v, c: bool(v),
        "vc": lambda n, z, v, c: not v,
    }
    return tests[cond]


class SparcCPU(_BaseCPU):
    """SPARC V8 subset with unbounded register windows."""

    def __init__(self, simulator):
        super().__init__(simulator)
        self.r = [0] * 32
        self.windows = []  # stack of (locals, ins) tuples
        self.icc = (0, 0, 0, 0)  # n, z, v, c
        self.y = 0
        # Initial stack pointer.
        self.r[14] = layout.STACK_BASE - 64

    # -- register helpers -------------------------------------------------
    def read_reg(self, number):
        return self.r[number]

    def write_reg(self, number, value):
        if number:
            self.r[number] = value & M32

    def _set_cc_arith(self, a, b, result_wide, is_sub):
        result = result_wide & M32
        n = result >> 31
        z = 1 if result == 0 else 0
        if is_sub:
            v = ((a ^ b) & (a ^ result)) >> 31
            c = 1 if b > a else 0
        else:
            v = (~(a ^ b) & (a ^ result)) >> 31 & 1
            c = 1 if result_wide > M32 else 0
        self.icc = (n, z, v & 1, c)

    def _set_cc_logic(self, result):
        self.icc = (result >> 31, 1 if result == 0 else 0, 0, 0)

    # -- preparation ------------------------------------------------------
    def _prepare(self, inst):
        name = inst.name
        category = inst.category
        f = inst.f
        r = self.r

        if category is Category.INVALID:
            def illegal():
                raise SimulationError(
                    "illegal instruction 0x%08x at pc 0x%x" % (inst.word, self.pc)
                )
            return illegal

        if name == "sethi":
            rd = f["rd"]
            value = (f["imm22"] << 10) & M32
            def sethi():
                if rd:
                    r[rd] = value
                self._advance()
            return sethi

        if name in _SPARC_ALU:
            return self._prepare_alu(inst)
        if category is Category.BRANCH:
            return self._prepare_branch(inst)
        if name == "call":
            disp = f["disp30"] << 2
            def call():
                r[15] = self.pc
                self._transfer((self.pc + disp) & M32)
            return call
        if name == "jmpl":
            return self._prepare_jmpl(inst)
        if category.is_memory:
            return self._prepare_memory(inst)
        if name == "save":
            read2 = self._source2(inst)
            rs1 = f["rs1"]
            rd = f["rd"]
            def save():
                result = (r[rs1] + read2()) & M32
                self.windows.append((r[16:24], r[24:32]))
                r[24:32] = r[8:16]
                r[16:24] = [0] * 8
                r[8:16] = [0] * 8
                if rd:
                    r[rd] = result
                self._advance()
            return save
        if name == "restore":
            read2 = self._source2(inst)
            rs1 = f["rs1"]
            rd = f["rd"]
            def restore():
                if not self.windows:
                    raise SimulationError("register window underflow")
                result = (r[rs1] + read2()) & M32
                r[8:16] = r[24:32]
                saved_locals, saved_ins = self.windows.pop()
                r[16:24] = saved_locals
                r[24:32] = saved_ins
                if rd:
                    r[rd] = result
                self._advance()
            return restore
        if name == "ta":
            def trap():
                number = r[1]
                args = r[8:14]
                result = self.simulator.syscalls.dispatch(number, args)
                r[8] = result & M32
                self._advance()
            return trap
        if name == "rdpsr":
            rd = f["rd"]
            def rdpsr():
                n, z, v, c = self.icc
                if rd:
                    r[rd] = (n << 23) | (z << 22) | (v << 21) | (c << 20)
                self._advance()
            return rdpsr
        if name == "wrpsr":
            rs1 = f["rs1"]
            def wrpsr():
                value = r[rs1]
                self.icc = ((value >> 23) & 1, (value >> 22) & 1,
                            (value >> 21) & 1, (value >> 20) & 1)
                self._advance()
            return wrpsr
        raise SimulationError("no semantics for %s" % name)

    def _source2(self, inst):
        """Reader for the reg-or-immediate second source."""
        f = inst.f
        r = self.r
        if f.get("iflag"):
            value = f["simm13"] & M32
            return lambda: value
        rs2 = f["rs2"]
        return lambda: r[rs2]

    def _prepare_alu(self, inst):
        name = inst.name
        f = inst.f
        r = self.r
        rs1 = f["rs1"]
        rd = f["rd"]
        read2 = self._source2(inst)
        operation = _SPARC_ALU[name]
        sets_cc = name.endswith("cc")
        base = name[:-2] if sets_cc else name

        if base in ("add", "sub"):
            is_sub = base == "sub"
            def arith():
                a = r[rs1]
                b = read2()
                wide = a - b + 0x100000000 if is_sub else a + b
                if sets_cc:
                    self._set_cc_arith(a, b, wide, is_sub)
                if rd:
                    r[rd] = wide & M32
                self._advance()
            return arith

        if base in ("umul", "smul", "udiv", "sdiv"):
            def muldiv():
                a = r[rs1]
                b = read2()
                if base == "umul":
                    product = a * b
                    self.y = (product >> 32) & M32
                    result = product & M32
                elif base == "smul":
                    product = bits.to_s32(a) * bits.to_s32(b)
                    self.y = (product >> 32) & M32
                    result = product & M32
                elif base == "udiv":
                    if b == 0:
                        raise SimulationError("division by zero at 0x%x" % self.pc)
                    result = (a // b) & M32
                else:
                    if b == 0:
                        raise SimulationError("division by zero at 0x%x" % self.pc)
                    sa, sb = bits.to_s32(a), bits.to_s32(b)
                    quotient = abs(sa) // abs(sb)
                    if (sa < 0) != (sb < 0):
                        quotient = -quotient
                    result = quotient & M32
                if rd:
                    r[rd] = result
                self._advance()
            return muldiv

        def logic():
            result = operation(r[rs1], read2()) & M32
            if sets_cc:
                self._set_cc_logic(result)
            if rd:
                r[rd] = result
            self._advance()
        return logic

    def _prepare_branch(self, inst):
        f = inst.f
        disp = f["disp22"] << 2
        cond = inst.cond
        annulled = bool(f["aflag"])
        test = _sparc_cond_test(cond)

        if cond == "a":
            if annulled:
                def branch_always_annul():
                    self._transfer_annulled((self.pc + disp) & M32)
                return branch_always_annul
            def branch_always():
                self._transfer((self.pc + disp) & M32)
            return branch_always
        if cond == "n":
            if annulled:
                def branch_never_annul():
                    self._skip_delay()
                return branch_never_annul
            def branch_never():
                self._advance()
            return branch_never

        def branch():
            n, z, v, c = self.icc
            if test(n, z, v, c):
                self._transfer((self.pc + disp) & M32)
            elif annulled:
                self._skip_delay()
            else:
                self._advance()
        return branch

    def _prepare_jmpl(self, inst):
        f = inst.f
        r = self.r
        rs1 = f["rs1"]
        rd = f["rd"]
        read2 = self._source2(inst)
        def jmpl():
            target = (r[rs1] + read2()) & M32
            if rd:
                r[rd] = self.pc
            if target & 3:
                raise SimulationError("misaligned jump to 0x%x" % target)
            self._transfer(target)
        return jmpl

    def _prepare_memory(self, inst):
        f = inst.f
        r = self.r
        rs1 = f["rs1"]
        rd = f["rd"]
        read2 = self._source2(inst)
        width = inst.mem_width
        signed = inst.mem_signed
        is_store = inst.category is Category.STORE
        memory = self.memory
        hook = self.simulator.mem_hook

        if is_store:
            def store():
                addr = (r[rs1] + read2()) & M32
                if hook is not None:
                    hook(True, addr, width)
                memory.store(addr, width, r[rd])
                self._advance()
            return store

        def load():
            addr = (r[rs1] + read2()) & M32
            if hook is not None:
                hook(False, addr, width)
            value = memory.load(addr, width, signed)
            if rd:
                r[rd] = value & M32
            self._advance()
        return load


_SPARC_ALU = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "andn": lambda a, b: a & ~b,
    "orn": lambda a, b: a | (~b & M32),
    "xnor": lambda a, b: ~(a ^ b) & M32,
    "addcc": lambda a, b: a + b,
    "subcc": lambda a, b: a - b,
    "andcc": lambda a, b: a & b,
    "orcc": lambda a, b: a | b,
    "xorcc": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & 31),
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: bits.to_s32(a) >> (b & 31),
    "umul": None,
    "smul": None,
    "udiv": None,
    "sdiv": None,
}


# ----------------------------------------------------------------------
# MIPS
# ----------------------------------------------------------------------

class MipsCPU(_BaseCPU):
    """MIPS-I-like subset with HI/LO and branch-likely annulment."""

    def __init__(self, simulator):
        super().__init__(simulator)
        self.r = [0] * 32
        self.hi = 0
        self.lo = 0
        self.r[29] = layout.STACK_BASE - 64  # $sp

    def _prepare(self, inst):
        name = inst.name
        f = inst.f
        r = self.r
        category = inst.category

        if category is Category.INVALID:
            def illegal():
                raise SimulationError(
                    "illegal instruction 0x%08x at pc 0x%x" % (inst.word, self.pc)
                )
            return illegal

        if name in _MIPS_REG3:
            operation = _MIPS_REG3[name]
            rd, rs, rt = f["rd"], f["rs"], f["rt"]
            def reg3():
                result = operation(r[rs], r[rt]) & M32
                if rd:
                    r[rd] = result
                self._advance()
            return reg3
        if name in ("sll", "srl", "sra"):
            rd, rt, shamt = f["rd"], f["rt"], f["shamt"]
            operation = _MIPS_SHIFT[name]
            def shift():
                result = operation(r[rt], shamt) & M32
                if rd:
                    r[rd] = result
                self._advance()
            return shift
        if name in ("sllv", "srlv", "srav"):
            rd, rt, rs = f["rd"], f["rt"], f["rs"]
            operation = _MIPS_SHIFT[name[:-1]]
            def shiftv():
                result = operation(r[rt], r[rs] & 31) & M32
                if rd:
                    r[rd] = result
                self._advance()
            return shiftv
        if name in _MIPS_IMM:
            operation = _MIPS_IMM[name]
            rt, rs = f["rt"], f["rs"]
            imm = f.get("imm16", f.get("uimm16", 0))
            def immediate():
                result = operation(r[rs], imm) & M32
                if rt:
                    r[rt] = result
                self._advance()
            return immediate
        if name == "lui":
            rt = f["rt"]
            value = (f["uimm16"] << 16) & M32
            def lui():
                if rt:
                    r[rt] = value
                self._advance()
            return lui
        if category is Category.BRANCH:
            return self._prepare_branch(inst)
        if name in ("j", "jal"):
            index = f["target26"] << 2
            is_call = name == "jal"
            def jump():
                target = ((self.pc + 4) & 0xF0000000) | index
                if is_call:
                    r[31] = self.pc + 8
                self._transfer(target)
            return jump
        if name == "jr":
            rs = f["rs"]
            def jump_register():
                target = r[rs]
                if target & 3:
                    raise SimulationError("misaligned jump to 0x%x" % target)
                self._transfer(target)
            return jump_register
        if name == "jalr":
            rs, rd = f["rs"], f["rd"]
            def jump_and_link_register():
                target = r[rs]
                if target & 3:
                    raise SimulationError("misaligned jump to 0x%x" % target)
                if rd:
                    r[rd] = self.pc + 8
                self._transfer(target)
            return jump_and_link_register
        if name == "syscall":
            def syscall():
                number = r[2]
                args = r[4:8]
                result = self.simulator.syscalls.dispatch(number, args)
                r[2] = result & M32
                self._advance()
            return syscall
        if name in ("mfhi", "mflo"):
            rd = f["rd"]
            from_hi = name == "mfhi"
            def move_from():
                if rd:
                    r[rd] = self.hi if from_hi else self.lo
                self._advance()
            return move_from
        if name in ("mult", "multu", "div", "divu"):
            rs, rt = f["rs"], f["rt"]
            def muldiv():
                a, b = r[rs], r[rt]
                if name == "mult":
                    product = bits.to_s32(a) * bits.to_s32(b)
                    self.hi = (product >> 32) & M32
                    self.lo = product & M32
                elif name == "multu":
                    product = a * b
                    self.hi = (product >> 32) & M32
                    self.lo = product & M32
                else:
                    if b == 0:
                        raise SimulationError("division by zero at 0x%x" % self.pc)
                    if name == "div":
                        sa, sb = bits.to_s32(a), bits.to_s32(b)
                        quotient = abs(sa) // abs(sb)
                        if (sa < 0) != (sb < 0):
                            quotient = -quotient
                        remainder = sa - quotient * sb
                        self.lo = quotient & M32
                        self.hi = remainder & M32
                    else:
                        self.lo = (a // b) & M32
                        self.hi = (a % b) & M32
                self._advance()
            return muldiv
        if category.is_memory:
            return self._prepare_memory(inst)
        raise SimulationError("no semantics for %s" % name)

    def _prepare_branch(self, inst):
        f = inst.f
        r = self.r
        disp = (f["imm16"] << 2) + 4
        annulled = inst.annul_untaken
        name = inst.name
        rs = f["rs"]
        rt = f.get("rt", 0)
        # beql/bnel etc: strip the trailing 'l' to get the base test.
        likely = ("beql", "bnel", "blezl", "bgtzl", "bltzl", "bgezl")
        base = name[:-1] if name in likely else name

        def test():
            a = bits.to_s32(r[rs])
            if base == "beq":
                return r[rs] == r[rt]
            if base == "bne":
                return r[rs] != r[rt]
            if base == "blez":
                return a <= 0
            if base == "bgtz":
                return a > 0
            if base == "bltz":
                return a < 0
            if base == "bgez":
                return a >= 0
            raise SimulationError("unknown branch %s" % name)

        def branch():
            if test():
                self._transfer((self.pc + disp) & M32)
            elif annulled:
                self._skip_delay()
            else:
                self._advance()
        return branch

    def _prepare_memory(self, inst):
        f = inst.f
        r = self.r
        rs, rt = f["rs"], f["rt"]
        imm = f["imm16"]
        width = inst.mem_width
        signed = inst.mem_signed
        is_store = inst.category is Category.STORE
        memory = self.memory
        hook = self.simulator.mem_hook

        if is_store:
            def store():
                addr = (r[rs] + imm) & M32
                if hook is not None:
                    hook(True, addr, width)
                memory.store(addr, width, r[rt])
                self._advance()
            return store

        def load():
            addr = (r[rs] + imm) & M32
            if hook is not None:
                hook(False, addr, width)
            value = memory.load(addr, width, signed)
            if rt:
                r[rt] = value & M32
            self._advance()
        return load


_MIPS_REG3 = {
    "addu": lambda a, b: a + b,
    "subu": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nor": lambda a, b: ~(a | b),
    "slt": lambda a, b: 1 if bits.to_s32(a) < bits.to_s32(b) else 0,
    "sltu": lambda a, b: 1 if a < b else 0,
}

_MIPS_SHIFT = {
    "sll": lambda a, s: a << s,
    "srl": lambda a, s: a >> s,
    "sra": lambda a, s: bits.to_s32(a) >> s,
}

_MIPS_IMM = {
    "addiu": lambda a, imm: a + imm,
    "slti": lambda a, imm: 1 if bits.to_s32(a) < imm else 0,
    "sltiu": lambda a, imm: 1 if a < (imm & M32) else 0,
    "andi": lambda a, imm: a & imm,
    "ori": lambda a, imm: a | imm,
    "xori": lambda a, imm: a ^ imm,
}
