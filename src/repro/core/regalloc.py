"""Snippet register allocation: scavenging and spilling (paper 3.5).

EEL finds the registers live at the insertion point and assigns dead
ones to the snippet's placeholders.  When not enough registers are dead,
the snippet is wrapped with code that spills victims to scratch slots
below the stack pointer.  If the snippet clobbers condition codes while
they are live, a save/restore pair is wrapped around it as well.
"""


from repro.obs import metrics as _metrics

_C_ALLOCATIONS = _metrics.counter("regalloc.allocations")
_C_SCAVENGED = _metrics.counter("regalloc.scavenged")
_C_SPILLED = _metrics.counter("regalloc.spilled")
_C_CC_SAVES = _metrics.counter("regalloc.cc_saves")


class RegallocError(Exception):
    pass


class AllocatedSnippet:
    """A snippet after register allocation, ready for placement."""

    def __init__(self, snippet, words, mapping, spilled):
        self.snippet = snippet
        self.words = words
        self.mapping = mapping
        self.spilled = spilled  # [(reg, slot)]

    def run_callback(self, address):
        if self.snippet.callback is not None:
            replacement = self.snippet.callback(list(self.words), address,
                                                dict(self.mapping))
            if replacement is not None:
                if len(replacement) != len(self.words):
                    raise RegallocError(
                        "snippet call-back changed the instruction count"
                    )
                self.words = list(replacement)
        return self.words


def allocate_snippet(snippet, live, conventions):
    """Bind *snippet*'s placeholder registers given the *live* set."""
    needed = list(snippet.alloc_regs)
    cc_live = bool(conventions.cc_regs & set(live))
    want_cc_save = snippet.clobbers_cc and cc_live
    if want_cc_save:
        needed = needed + ["__cc__"]

    forbidden = set(snippet.forbidden_regs)
    dead = [
        reg
        for reg in conventions.scavenge_candidates
        if reg not in live and reg not in forbidden
    ]
    # Victims for spilling, preferred in scavenge order.
    victims = [
        reg
        for reg in conventions.scavenge_candidates
        if reg in live and reg not in forbidden
    ]

    mapping = {}
    spilled = []
    assigned = []
    slot = 0
    for placeholder in needed:
        if dead:
            reg = dead.pop(0)
        elif victims:
            reg = victims.pop(0)
            spilled.append((reg, slot))
            slot += 1
        else:
            raise RegallocError("no registers available for snippet")
        assigned.append((placeholder, reg))

    cc_reg = None
    for placeholder, reg in assigned:
        if placeholder == "__cc__":
            cc_reg = reg
        else:
            mapping[placeholder] = reg

    _C_ALLOCATIONS.inc()
    _C_SCAVENGED.inc(len(assigned) - len(spilled))
    _C_SPILLED.inc(len(spilled))
    if cc_reg is not None:
        _C_CC_SAVES.inc()

    body = conventions.rebind_registers(snippet.words, mapping)
    prologue = []
    epilogue = []
    for reg, spill_slot in spilled:
        prologue.extend(conventions.spill(reg, spill_slot))
        epilogue.extend(conventions.unspill(reg, spill_slot))
    if cc_reg is not None:
        prologue.extend(conventions.save_cc(cc_reg))
        epilogue = list(conventions.restore_cc(cc_reg)) + epilogue
    words = prologue + body + epilogue
    return AllocatedSnippet(snippet, words, mapping, spilled)
