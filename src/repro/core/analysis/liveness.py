"""Live-register analysis over the normalized CFG.

Backward dataflow on registers (including condition-code pseudo
registers).  Call surrogate blocks use the calling convention: they are
assumed to read the argument registers and stack pointer and to clobber
every caller-saved register.  The result answers "which registers are
dead here?" — the basis of snippet register scavenging (paper 3.5).
"""

from repro.core.cfg import BK_SURROGATE
from repro.isa import get_conventions


def _conventions(cfg):
    return get_conventions(cfg.codec.arch)


def _call_effects(cfg):
    """(uses, defs) register sets for a call surrogate block."""
    conventions = _conventions(cfg)
    regs = cfg.codec.regs
    uses = set(conventions.arg_regs) | {conventions.sp_reg}
    if cfg.codec.arch == "sparc":
        # Callee may clobber %g1-%g7, all %o registers, and the condition
        # codes; register windows preserve %l and %i.
        defs = set(range(1, 8)) | set(range(8, 16)) | {
            regs.number("%icc"), regs.number("%y")
        }
    else:
        # MIPS: $at, $v0/$v1, $a0-$a3, $t0-$t9, $ra, hi/lo are clobberable.
        defs = {1, 2, 3} | set(range(4, 16)) | {24, 25, 31,
                                                regs.number("$hi"),
                                                regs.number("$lo")}
    return uses, defs


def _exit_live(cfg):
    """Registers assumed live when control leaves the routine."""
    conventions = _conventions(cfg)
    regs = cfg.codec.regs
    live = {conventions.sp_reg, conventions.retaddr_reg}
    if cfg.codec.arch == "sparc":
        live |= {24, 30, 31, 8}  # %i0 (retval), %fp, %i7, %o0
    else:
        live |= {2, 29, 30, 31, 16, 17, 18, 19, 20, 21, 22, 23}  # $v0, $sp,
        # $fp, $ra and callee-saved $s registers.
    return frozenset(r for r in live if r < regs.num_total)


# SPARC windowed registers (%o, %l, %i): before a routine's `save`
# executes, these belong to the *caller's* window and must be treated as
# live, or a snippet inserted ahead of the save would clobber caller
# state.  (Spilling below %sp remains safe — it targets the caller's
# scratch area, which is unused by convention.)
_SPARC_WINDOW_REGS = frozenset(range(8, 32))


class LivenessAnalysis:
    """Per-block live-in/live-out, with point queries inside blocks."""

    def __init__(self, cfg, _summary=None):
        self.cfg = cfg
        self.live_in = {}
        self.live_out = {}
        self._block_effects = {}
        if _summary is not None:
            self._restore(_summary)
            return
        self._solve()
        self._pre_window_in = self._solve_pre_window() \
            if cfg.codec.arch == "sparc" else {}

    # ------------------------------------------------------------------
    # Summaries: persistable solution for the ``liveness`` fact
    # ------------------------------------------------------------------
    @classmethod
    def from_summary(cls, cfg, summary):
        """Adopt a cached/fact-store solution instead of solving."""
        return cls(cfg, _summary=summary)

    def to_summary(self):
        """JSON-ready per-block solution, dense by block id."""
        blocks = self.cfg.blocks
        summary = {
            "live_in": [sorted(self.live_in[b.id]) for b in blocks],
            "live_out": [sorted(self.live_out[b.id]) for b in blocks],
        }
        if self._pre_window_in:
            summary["pre_window"] = [
                1 if self._pre_window_in.get(b.id) else 0 for b in blocks
            ]
        return summary

    def _restore(self, summary):
        """Adopt a cached solution; point queries work unchanged."""
        self.live_in = {i: frozenset(regs)
                        for i, regs in enumerate(summary["live_in"])}
        self.live_out = {i: frozenset(regs)
                         for i, regs in enumerate(summary["live_out"])}
        pre_window = summary.get("pre_window")
        self._pre_window_in = {
            i: bool(flag) for i, flag in enumerate(pre_window)
        } if pre_window else {}

    def _solve_pre_window(self):
        """Forward dataflow: can this point execute before any `save`?"""
        cfg = self.cfg
        state = {block.id: False for block in cfg.blocks}
        state[cfg.entry.id] = True
        changed = True
        while changed:
            changed = False
            for block in cfg.blocks:
                incoming = state[block.id] if block is cfg.entry else any(
                    self._pre_window_out(edge.src, state)
                    for edge in block.pred
                )
                if incoming and not state[block.id]:
                    state[block.id] = True
                    changed = True
        return state

    def _pre_window_out(self, block, state):
        if not state.get(block.id, False):
            return False
        return not any(inst.name == "save"
                       for _, inst in block.instructions)

    def _pre_window_at(self, block, index):
        """True when position *index* may run in the caller's window."""
        if not self._pre_window_in.get(block.id, False):
            return False
        for position in range(index):
            if block.instructions[position][1].name == "save":
                return False
        return True

    def _effects(self, block):
        cached = self._block_effects.get(block.id)
        if cached is not None:
            return cached
        if block.kind == BK_SURROGATE:
            uses, defs = _call_effects(self.cfg)
            result = (frozenset(uses), frozenset(defs))
        else:
            uses = set()
            defs = set()
            for _, instruction in block.instructions:
                uses |= instruction.reads() - defs
                defs |= instruction.writes()
            result = (frozenset(uses), frozenset(defs))
        self._block_effects[block.id] = result
        return result

    def _solve(self):
        cfg = self.cfg
        exit_live = _exit_live(cfg)
        live_in = {block.id: frozenset() for block in cfg.blocks}
        live_out = {block.id: frozenset() for block in cfg.blocks}
        live_in[cfg.exit.id] = exit_live

        changed = True
        while changed:
            changed = False
            for block in reversed(cfg.blocks):
                if block is cfg.exit:
                    continue
                out = frozenset()
                for edge in block.succ:
                    out |= live_in[edge.dst.id]
                uses, defs = self._effects(block)
                new_in = uses | (out - defs)
                if out != live_out[block.id] or new_in != live_in[block.id]:
                    live_out[block.id] = out
                    live_in[block.id] = new_in
                    changed = True
        self.live_in = {b.id: live_in[b.id] for b in cfg.blocks}
        self.live_out = {b.id: live_out[b.id] for b in cfg.blocks}

    # ------------------------------------------------------------------
    def live_before(self, block, index):
        """Registers live immediately before instruction *index*."""
        live = set(self.live_out[block.id])
        for position in range(len(block.instructions) - 1, index - 1, -1):
            _, instruction = block.instructions[position]
            live -= instruction.writes()
            live |= instruction.reads()
        if self._pre_window_in and self._pre_window_at(block, index):
            live |= _SPARC_WINDOW_REGS
        return frozenset(live)

    def live_after(self, block, index):
        """Registers live immediately after instruction *index*."""
        if index + 1 < len(block.instructions):
            return self.live_before(block, index + 1)
        live = frozenset(self.live_out[block.id])
        if self._pre_window_in and self._pre_window_at(
            block, len(block.instructions)
        ):
            live |= _SPARC_WINDOW_REGS
        return live

    def live_on_edge(self, edge):
        """Registers live while traversing *edge*."""
        live = frozenset(self.live_in[edge.dst.id])
        if self._pre_window_in and (
            self._pre_window_in.get(edge.dst.id, False)
            or self._pre_window_out(edge.src, self._pre_window_in)
        ):
            live |= _SPARC_WINDOW_REGS
        return live

    def dead_registers(self, live, candidates):
        """Candidates from *candidates* not in *live*, in order."""
        return [reg for reg in candidates if reg not in live]
