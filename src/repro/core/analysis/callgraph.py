"""Interprocedural call graph (paper section 3, footnote 1).

EEL "also supports interprocedural analysis and call graphs".  The call
graph connects routines by their direct calls, tail-call jumps (resolved
literal targets), and — when analyzable — dispatch-table-free indirect
calls.  Tools use it to process callees before callers, to find leaf
routines (candidates for cheap instrumentation), and to compute
reachability from the entry point.

The graph is a pure view over ``callsites`` facts (see
:mod:`repro.core.facts`): building it derives any missing fact lazily,
and a warm fact store (restored from the analysis cache, or kept
current by :meth:`Executable.reanalyze`) makes construction free of CFG
work entirely.
"""


class CallSite:
    """One call site: where it is and what it reaches."""

    def __init__(self, caller, addr, target, kind):
        self.caller = caller  # Routine
        self.addr = addr
        self.target = target  # Routine or None (unresolved indirect)
        self.kind = kind  # "call" | "tailcall" | "indirect"

    def __repr__(self):
        target = self.target.name if self.target else "?"
        return "CallSite(0x%x %s -> %s)" % (self.addr, self.kind, target)


class CallGraph:
    """Routines as nodes; call sites as edges."""

    def __init__(self, executable):
        self.executable = executable
        self.sites = []  # all CallSite records
        self.calls = {}  # routine name -> [CallSite]
        self.callers = {}  # routine name -> set of caller names
        self._build()

    def _build(self):
        from repro.core.facts import rules as _fact_rules

        executable = self.executable
        routines = executable.all_routines()  # triggers read_contents
        store = executable.fact_store()
        for routine in routines:
            payload = _fact_rules.ensure(executable, store, "callsites",
                                         routine)
            sites = [self._site(routine, record) for record in payload]
            self.calls[routine.name] = sites
            self.sites.extend(sites)
        for site in self.sites:
            if site.target is not None:
                self.callers.setdefault(site.target.name, set()).add(
                    site.caller.name)

    def _site(self, routine, record):
        """A CallSite from one ``callsites`` fact record."""
        target = None
        if record["target"] is not None:
            target = self.executable.routine_at(record["target"])
        return CallSite(routine, record["addr"], target, record["kind"])

    # ------------------------------------------------------------------
    def callees(self, routine_name):
        """Distinct routines called from *routine_name*."""
        out = []
        seen = set()
        for site in self.calls.get(routine_name, ()):
            if site.target is not None and site.target.name not in seen:
                seen.add(site.target.name)
                out.append(site.target)
        return out

    def callers_of(self, routine_name):
        return sorted(self.callers.get(routine_name, ()))

    def leaf_routines(self):
        """Routines that make no calls at all."""
        return [self.executable.routine(name) or name
                for name, sites in sorted(self.calls.items())
                if not sites]

    def reachable_from(self, routine_name):
        """Names of routines transitively callable from *routine_name*."""
        seen = set()
        work = [routine_name]
        while work:
            name = work.pop()
            if name in seen:
                continue
            seen.add(name)
            for callee in self.callees(name):
                work.append(callee.name)
        return seen

    def bottom_up_order(self):
        """Routine names, callees before callers (cycles broken by
        discovery order) — the order link-time optimizers process
        routines."""
        order = []
        visited = set()

        def visit(name):
            if name in visited:
                return
            visited.add(name)
            for callee in self.callees(name):
                visit(callee.name)
            order.append(name)

        for name in sorted(self.calls):
            visit(name)
        return order

    def has_indirect_calls(self):
        return any(site.kind == "indirect" for site in self.sites)
