"""Dominator computation (Cooper-Harvey-Kennedy iterative algorithm)."""


def _reverse_postorder(cfg):
    order = []
    seen = set()
    stack = [(cfg.entry, iter(cfg.entry.successors()))]
    seen.add(cfg.entry.id)
    while stack:
        block, successors = stack[-1]
        advanced = False
        for successor in successors:
            if successor.id not in seen:
                seen.add(successor.id)
                stack.append((successor, iter(successor.successors())))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    order.reverse()
    return order


def dominators(cfg):
    """Immediate dominators: {block: idom block}; entry maps to itself."""
    order = _reverse_postorder(cfg)
    index_of = {block.id: index for index, block in enumerate(order)}
    idom = {cfg.entry.id: cfg.entry}

    def intersect(a, b):
        while a.id != b.id:
            while index_of[a.id] > index_of[b.id]:
                a = idom[a.id]
            while index_of[b.id] > index_of[a.id]:
                b = idom[b.id]
        return a

    changed = True
    while changed:
        changed = False
        for block in order:
            if block is cfg.entry:
                continue
            candidates = [p for p in block.predecessors() if p.id in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(block.id) is not new_idom:
                idom[block.id] = new_idom
                changed = True
    return {block: idom[block.id] for block in order if block.id in idom}


def dominates(idom_map, a, b):
    """True if block *a* dominates block *b* under *idom_map*."""
    by_id = {block.id: dom for block, dom in idom_map.items()}
    current = b
    while True:
        if current.id == a.id:
            return True
        parent = by_id.get(current.id)
        if parent is None or parent.id == current.id:
            return False
        current = parent
