"""Indirect-jump resolution: dispatch tables and literal targets.

Backward slicing from the jump's registers (paper section 3.3) drives a
small abstract evaluator.  Outcomes:

* ``table`` — the jump reads a dispatch table: ``load(const_base +
  scaled_index)`` guarded by a bounds check.  The table's entries become
  computed CFG edges, its words are marked as data (even when the table
  sits in the text segment), and layout later rewrites the entries to
  point at edited code.
* ``literal`` — the target is a compile-time constant inside the
  routine; the address-forming instructions are recorded for patching.
* ``tailcall`` — a constant target *outside* the routine: the frame-pop
  tail-call idiom the paper traced its 138 "unanalyzable" SunPro jumps
  to.  Intraprocedurally there is nothing to analyze; the jump exits the
  routine like a call.
* ``unanalyzable`` — the slice failed (value through memory, a call, or
  a parameter); the editor falls back to run-time address translation.
"""

from repro.core.cfg import IndirectJumpInfo
from repro.isa import bits
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

_MAX_TABLE = 4096

# One counter per analysis outcome; "table"/"literal"/"tailcall" are
# resolved statically, "unanalyzable" falls back to run-time address
# translation (the paper's Table 1 uneditable-jump column).
_OUTCOMES = {
    status: _metrics.counter("indirect.%s" % status)
    for status in ("table", "literal", "tailcall", "unanalyzable")
}
_H_TABLE = _metrics.histogram("indirect.table_entries")


def record_indirect_outcome(info):
    """Count one *final* analysis outcome (called after the CFG's
    indirect-target fixpoint converges, so re-analysis during the
    fixpoint does not inflate the counts)."""
    counter = _OUTCOMES.get(info.status)
    if counter is not None:
        counter.inc()
    if info.status == "table":
        _H_TABLE.observe(len(info.targets))


def table_extent(info):
    """(address, byte size) of a resolved dispatch table.

    The extent every consumer must agree on: data claiming in the
    routine layer, the ``dispatch`` fact rule, and the fuzz manifest
    checks all derive it from here.  *info* may be an
    :class:`IndirectJumpInfo` or its summary-dict form.
    """
    if isinstance(info, dict):
        return info["table_addr"], 4 * len(info["targets"])
    return info.table_addr, 4 * len(info.targets)


# -- abstract values ----------------------------------------------------

class _Const:
    def __init__(self, value, sites=()):
        self.value = value & 0xFFFFFFFF
        self.sites = list(sites)


class _Scaled:
    """A scaled index: register *reg* (observed at a program point)
    shifted left by *shift*."""

    def __init__(self, reg, shift, point):
        self.reg = reg
        self.shift = shift
        self.point = point  # (block, index) of the scaling instruction


class _Sum:
    def __init__(self, const, scaled):
        self.const = const
        self.scaled = scaled


class _TableLoad:
    def __init__(self, table, scaled):
        self.table = table
        self.scaled = scaled


class _Unknown:
    def __init__(self, reason):
        self.reason = reason


def analyze_indirect_jump(cfg, block):
    """Analyze the indirect jump terminating *block*."""
    with _span("indirect.resolve", routine=cfg.routine.name):
        return _analyze_indirect_jump(cfg, block)


def _analyze_indirect_jump(cfg, block):
    addr, instruction = block.instructions[-1]
    evaluator = _Evaluator(cfg)
    target = evaluator.jump_target(block, len(block.instructions) - 1,
                                   instruction)

    if isinstance(target, _Const):
        routine = cfg.routine
        status = "literal" if routine.contains(target.value) else "tailcall"
        return IndirectJumpInfo(block, status, literal=target.value,
                                patch_sites=target.sites)

    if isinstance(target, _TableLoad):
        bound = _find_bound(cfg, target.scaled)
        if bound is None or bound > _MAX_TABLE:
            return IndirectJumpInfo(block, "unanalyzable")
        table_addr = target.table.value
        targets = []
        entries = []
        for i in range(bound):
            entry_addr = table_addr + 4 * i
            try:
                word = cfg.executable.word_at(entry_addr)
            except KeyError:
                return IndirectJumpInfo(block, "unanalyzable")
            if not cfg.executable.is_text_address(word):
                return IndirectJumpInfo(block, "unanalyzable")
            targets.append(word)
            entries.append((entry_addr, "word32"))
        return IndirectJumpInfo(block, "table", table_addr=table_addr,
                                targets=targets, patch_sites=entries,
                                index_bound=bound)

    return IndirectJumpInfo(block, "unanalyzable")


class _Evaluator:
    """Abstract evaluation of register values along the backward slice."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.arch = cfg.codec.arch

    # -- entry point -----------------------------------------------------
    def jump_target(self, block, index, instruction):
        if self.arch == "sparc":
            rs1 = instruction.field("rs1")
            base = self.reg_before(block, index, rs1)
            if instruction.has_field("simm13"):
                offset = _Const(instruction.field("simm13") & 0xFFFFFFFF)
            else:
                offset = self.reg_before(block, index, instruction.field("rs2"))
            return self._add(base, offset)
        # MIPS jr.
        return self.reg_before(block, index, instruction.field("rs"))

    # -- register evaluation ------------------------------------------------
    def reg_before(self, block, index, reg, depth=32):
        """Value of *reg* immediately before (block, index)."""
        if reg == 0 and self.arch in ("sparc", "mips"):
            return _Const(0)
        if depth <= 0:
            return _Unknown("depth limit")
        position = index - 1
        while position >= 0:
            addr, instruction = block.instructions[position]
            if instruction.writes_register(reg):
                return self._eval_def(block, position, addr, instruction, reg,
                                      depth)
            position -= 1
        # Continue into predecessors.
        values = []
        for edge in block.pred:
            predecessor = edge.src
            if predecessor.kind in ("surrogate", "entry"):
                return _Unknown("crosses %s" % predecessor.kind)
            values.append(
                self.reg_before(predecessor, len(predecessor.instructions),
                                reg, depth - 1)
            )
        if not values:
            return _Unknown("no predecessor")
        first = values[0]
        if all(isinstance(v, _Const) for v in values) and all(
            v.value == first.value for v in values
        ):
            return first
        if len(values) == 1:
            return first
        return _Unknown("joins differ")

    def _eval_def(self, block, index, addr, instruction, reg, depth):
        name = instruction.name
        point = (block, index)

        if self.arch == "sparc":
            return self._eval_sparc(block, index, addr, instruction, name,
                                    depth, point)
        return self._eval_mips(block, index, addr, instruction, name, depth,
                               point)

    # -- SPARC definitions ---------------------------------------------------
    def _eval_sparc(self, block, index, addr, instruction, name, depth,
                    point):
        field = instruction.field
        has = instruction.has_field

        if name == "sethi":
            return _Const(field("imm22") << 10, [(addr, "hi22")])
        if name in ("or", "add"):
            left = self.reg_before(block, index, field("rs1"), depth - 1)
            if has("simm13"):
                imm = field("simm13")
                if field("rs1") == 0 and name == "or":
                    return _Const(imm & 0xFFFFFFFF, [(addr, "mov13")])
                if isinstance(left, _Const):
                    value = (left.value | imm) if name == "or" \
                        else (left.value + imm)
                    role = "lo10" if name == "or" else "add13"
                    return _Const(value, left.sites + [(addr, role)])
                return _Unknown("%s of non-constant" % name)
            right = self.reg_before(block, index, field("rs2"), depth - 1)
            return self._add(left, right) if name == "add" \
                else self._or(left, right)
        if name == "sll" and has("simm13"):
            return _Scaled(field("rs1"), field("simm13"), point)
        if name == "sub" and has("simm13"):
            left = self.reg_before(block, index, field("rs1"), depth - 1)
            if isinstance(left, _Const):
                return _Const(left.value - field("simm13"))
            return _Unknown("sub of non-constant")
        if instruction.is_load and instruction.mem_width == 4:
            base = self.reg_before(block, index, field("rs1"), depth - 1)
            if has("simm13"):
                offset = _Const(field("simm13") & 0xFFFFFFFF)
            else:
                offset = self.reg_before(block, index, field("rs2"), depth - 1)
            return self._load(self._add(base, offset))
        return _Unknown("opaque def %s" % name)

    # -- MIPS definitions ------------------------------------------------------
    def _eval_mips(self, block, index, addr, instruction, name, depth, point):
        field = instruction.field

        if name == "lui":
            return _Const(field("uimm16") << 16, [(addr, "hi16")])
        if name == "ori":
            left = self.reg_before(block, index, field("rs"), depth - 1)
            if field("rs") == 0:
                return _Const(field("uimm16"), [(addr, "mov16")])
            if isinstance(left, _Const):
                return _Const(left.value | field("uimm16"),
                              left.sites + [(addr, "lo16u")])
            return _Unknown("ori of non-constant")
        if name == "addiu":
            left = self.reg_before(block, index, field("rs"), depth - 1)
            if field("rs") == 0:
                return _Const(field("imm16") & 0xFFFFFFFF, [(addr, "mov16s")])
            if isinstance(left, _Const):
                return _Const(left.value + field("imm16"),
                              left.sites + [(addr, "lo16")])
            return _Unknown("addiu of non-constant")
        if name == "addu":
            left = self.reg_before(block, index, field("rs"), depth - 1)
            right = self.reg_before(block, index, field("rt"), depth - 1)
            return self._add(left, right)
        if name == "sll":
            return _Scaled(field("rt"), field("shamt"), point)
        if name == "lw":
            base = self.reg_before(block, index, field("rs"), depth - 1)
            offset = _Const(field("imm16") & 0xFFFFFFFF)
            return self._load(self._add(base, offset))
        if name in ("or", "addu") or (name == "addu"):
            pass
        return _Unknown("opaque def %s" % name)

    # -- combinators -------------------------------------------------------
    @staticmethod
    def _add(a, b):
        if isinstance(a, _Const) and isinstance(b, _Const):
            return _Const(a.value + b.value, a.sites + b.sites)
        if isinstance(a, _Const) and isinstance(b, _Scaled):
            return _Sum(a, b)
        if isinstance(a, _Scaled) and isinstance(b, _Const):
            return _Sum(b, a)
        if isinstance(a, _Sum) and isinstance(b, _Const):
            return _Sum(_Const(a.const.value + b.value,
                               a.const.sites + b.sites), a.scaled)
        if isinstance(a, _Const) and isinstance(b, _Sum):
            return _Sum(_Const(a.value + b.const.value,
                               a.sites + b.const.sites), b.scaled)
        if isinstance(a, _TableLoad) and isinstance(b, _Const) \
                and b.value == 0:
            return a
        if isinstance(b, _TableLoad) and isinstance(a, _Const) \
                and a.value == 0:
            return b
        return _Unknown("unsupported sum")

    @staticmethod
    def _or(a, b):
        if isinstance(a, _Const) and isinstance(b, _Const):
            return _Const(a.value | b.value, a.sites + b.sites)
        return _Unknown("unsupported or")

    @staticmethod
    def _load(address):
        if isinstance(address, _Sum):
            return _TableLoad(address.const, address.scaled)
        if isinstance(address, _Unknown):
            return address
        return _Unknown("load from non-table address")


def _find_bound(cfg, scaled):
    """Find the bounds check guarding the scaled index register.

    The search starts just before the scaling instruction and walks
    backward through predecessors.  SPARC pattern: ``subcc idx, K, %g0``
    (cmp) with a ``bgu`` terminator; bound is K+1.  MIPS pattern:
    ``sltiu t, idx, K`` followed by ``beq t, $zero``; bound is K.
    """
    index_reg = scaled.reg
    start_block, start_index = scaled.point
    seen = set()
    bound = _bound_in_block(cfg, start_block, index_reg,
                            upto=start_index - 1)
    if bound is not None:
        return bound
    work = [edge.src for edge in start_block.pred]
    for _ in range(16):
        if not work:
            break
        block = work.pop()
        if block.id in seen or block.kind in ("entry", "surrogate"):
            continue
        seen.add(block.id)
        bound = _bound_in_block(cfg, block, index_reg)
        if bound is not None:
            return bound
        for edge in block.pred:
            work.append(edge.src)
    return None


def _bound_in_block(cfg, block, index_reg, upto=None):
    arch = cfg.codec.arch
    instructions = block.instructions
    start = len(instructions) - 1 if upto is None \
        else min(upto, len(instructions) - 1)
    for position in range(start, -1, -1):
        _, instruction = instructions[position]
        if arch == "sparc":
            if (
                instruction.name == "subcc"
                and instruction.has_field("simm13")
                and instruction.field("rd") == 0
                and instruction.field("rs1") == index_reg
            ):
                if _guarded_by(block, "gu"):
                    return instruction.field("simm13") + 1
        else:
            if (
                instruction.name == "sltiu"
                and instruction.field("rs") == index_reg
            ):
                guard_reg = instruction.field("rt")
                if _mips_guarded_by(block, guard_reg):
                    return instruction.field("imm16")
        # A redefinition of the index register between the compare and
        # the jump invalidates the guard.
        if instruction.writes_register(index_reg) and not (
            arch == "sparc" and instruction.name == "sll"
        ):
            return None
    return None


def _guarded_by(block, cond):
    """The compare's block must end with the unsigned guard branch."""
    last = block.last_instruction
    return (last is not None and last.is_branch
            and last.cond in (cond, "leu"))


def _mips_guarded_by(block, guard_reg):
    last = block.last_instruction
    if last is not None and last.is_branch and last.name in ("beq", "beql"):
        return last.field("rs") == guard_reg or last.field("rt") == guard_reg
    return False
