"""Backward slicing on the CFG (paper Figure 4 and section 3.3).

A backward slice from (block, index, register) collects the instructions
that contribute to that register's value.  Instructions are classified
as the paper does:

* **easy** — writes a sliced register and reads nothing (constants);
* **hard** — writes a sliced register and reads registers (slicing
  continues into those);
* **impossible** — the value flows through memory, a call boundary, or
  anything else the slicer cannot follow statically.

The indirect-jump analyzer interprets the sliced instructions to find
dispatch tables and literal targets.
"""


class Slice:
    """Result of a backward slice."""

    def __init__(self):
        self.easy = []  # (block, index)
        self.hard = []
        self.impossible = []
        self.members = set()  # (block id, index)
        self.visited_heads = set()  # (block id, register) to cut cycles

    @property
    def complete(self):
        return not self.impossible

    def instructions(self):
        """All slice members, easy then hard."""
        return list(self.easy) + list(self.hard)


def backward_slice(cfg, block, index, reg, slice_=None, max_depth=64):
    """Slice backward from just before (block, index) for *reg*."""
    if slice_ is None:
        slice_ = Slice()
    _slice_in_block(cfg, block, index - 1, reg, slice_, max_depth)
    return slice_


def _slice_in_block(cfg, block, start_index, reg, slice_, depth):
    if depth <= 0:
        slice_.impossible.append((block, max(start_index, 0)))
        return
    index = start_index
    while index >= 0:
        addr, instruction = block.instructions[index]
        if instruction.writes_register(reg):
            key = (block.id, index)
            if key in slice_.members:
                return
            slice_.members.add(key)
            reads = instruction.reads()
            if instruction.is_memory or instruction.is_call \
                    or instruction.is_system:
                # Value came through memory or a call: cannot slice further
                # in general.  (Dispatch-table loads are special-cased by
                # the indirect-jump analyzer, which still records them.)
                if instruction.is_load:
                    slice_.hard.append((block, index))
                    for read_reg in reads:
                        _continue_before(cfg, block, index, read_reg, slice_,
                                         depth)
                else:
                    slice_.impossible.append((block, index))
                return
            if not reads:
                slice_.easy.append((block, index))
            else:
                slice_.hard.append((block, index))
                for read_reg in reads:
                    _continue_before(cfg, block, index, read_reg, slice_,
                                     depth)
            return
        index -= 1
    # Not defined in this block: continue into predecessors.
    head_key = (block.id, reg)
    if head_key in slice_.visited_heads:
        return
    slice_.visited_heads.add(head_key)
    predecessors = [edge.src for edge in block.pred]
    if not predecessors:
        # Reached the routine entry: the register is a parameter or
        # caller state; the slice cannot determine it.
        slice_.impossible.append((block, 0))
        return
    for predecessor in predecessors:
        if predecessor.kind == "surrogate":
            # The value crosses a call: unanalyzable.
            slice_.impossible.append((predecessor, 0))
            continue
        if predecessor.kind == "entry":
            slice_.impossible.append((predecessor, 0))
            continue
        _slice_in_block(cfg, predecessor, len(predecessor.instructions) - 1,
                        reg, slice_, depth - 1)


def _continue_before(cfg, block, index, reg, slice_, depth):
    _slice_in_block(cfg, block, index - 1, reg, slice_, depth - 1)
