"""Natural-loop detection from back edges."""

from repro.core.analysis.dominators import dominates, dominators


class NaturalLoop:
    """A natural loop: its header block and body (blocks, incl. header)."""

    def __init__(self, header, body):
        self.header = header
        self.body = body  # set of block ids
        self.blocks = []

    def contains(self, block):
        return block.id in self.body

    @property
    def depth_key(self):
        return len(self.body)


def natural_loops(cfg):
    """All natural loops, innermost (smallest) first."""
    idom = dominators(cfg)
    loops = []
    for block in cfg.blocks:
        for edge in block.succ:
            header = edge.dst
            if header in idom and block in idom and dominates(idom, header,
                                                              block):
                loops.append(_collect(header, block))
    loops.sort(key=lambda loop: loop.depth_key)
    # Merge loops sharing a header (multiple back edges).
    merged = {}
    for loop in loops:
        existing = merged.get(loop.header.id)
        if existing is None:
            merged[loop.header.id] = loop
        else:
            existing.body |= loop.body
            existing.blocks = sorted(
                set(existing.blocks) | set(loop.blocks), key=lambda b: b.id
            )
    return sorted(merged.values(), key=lambda loop: loop.depth_key)


def _collect(header, tail):
    body = {header.id}
    blocks = [header]
    work = [tail]
    while work:
        block = work.pop()
        if block.id in body:
            continue
        body.add(block.id)
        blocks.append(block)
        for edge in block.pred:
            work.append(edge.src)
    loop = NaturalLoop(header, body)
    loop.blocks = sorted(blocks, key=lambda b: b.id)
    return loop
