"""Standard CFG analyses: dominators, loops, liveness, slicing, and
indirect-jump (dispatch table) resolution (paper section 3.3)."""
