"""EEL instructions: machine-independent views of machine words.

The class hierarchy mirrors the paper's section 3.4 categories (and the
dispatch in Figure 6).  Instances are flyweights: one EEL instruction
object represents every occurrence of a machine word, which is the
paper's factor-of-four space optimization.  Allocation statistics are
kept so the experiment can be reproduced (benchmarks/E4, E9).
"""

from repro.isa.base import Category

# Global allocation statistics for the flyweight experiment.
_STATS = {"requests": 0, "allocated": 0}


def allocation_stats():
    """(requests, allocated): how often sharing avoided an allocation."""
    return _STATS["requests"], _STATS["allocated"]


def reset_allocation_stats():
    _STATS["requests"] = 0
    _STATS["allocated"] = 0


class Instruction:
    """Base EEL instruction.

    Wraps a decoded machine word and answers machine-independent
    inquiries: which registers it reads/writes, whether it transfers
    control, how wide its memory access is, and so on (paper Figure 4
    shows these inquiries in use).
    """

    __slots__ = ("codec", "inst")

    def __init__(self, codec, decoded):
        self.codec = codec
        self.inst = decoded

    # -- identity ---------------------------------------------------------
    @property
    def word(self):
        return self.inst.word

    @property
    def name(self):
        return self.inst.name

    @property
    def category(self):
        return self.inst.category

    # -- register effects ---------------------------------------------------
    def reads(self):
        """Registers this instruction reads."""
        return self.inst.reads

    def writes(self):
        """Registers this instruction writes."""
        return self.inst.writes

    def reads_register(self, reg):
        return reg in self.inst.reads

    def writes_register(self, reg):
        return reg in self.inst.writes

    # -- classification -------------------------------------------------------
    @property
    def is_valid(self):
        return self.inst.category is not Category.INVALID

    @property
    def is_control(self):
        return self.inst.category.is_control

    @property
    def is_call(self):
        return self.inst.category in (Category.CALL, Category.CALL_INDIRECT)

    @property
    def is_branch(self):
        return self.inst.category is Category.BRANCH

    @property
    def is_jump(self):
        return self.inst.category in (Category.JUMP, Category.JUMP_INDIRECT)

    @property
    def is_indirect(self):
        return self.inst.category in (
            Category.JUMP_INDIRECT,
            Category.CALL_INDIRECT,
        )

    @property
    def is_return(self):
        return self.inst.category is Category.RETURN

    @property
    def is_system(self):
        return self.inst.category is Category.SYSTEM

    @property
    def is_load(self):
        return self.inst.category is Category.LOAD

    @property
    def is_store(self):
        return self.inst.category is Category.STORE

    @property
    def is_memory(self):
        return self.inst.category.is_memory

    @property
    def mem_width(self):
        return self.inst.mem_width

    # -- delayed control flow -------------------------------------------------
    @property
    def is_delayed(self):
        return self.inst.is_delayed

    @property
    def annul_untaken(self):
        return self.inst.annul_untaken

    @property
    def cond(self):
        return self.inst.cond

    @property
    def is_conditional(self):
        """A branch that can fall through (bn/ba are not conditional)."""
        return self.is_branch and self.inst.cond not in ("a", "n")

    # -- targets ------------------------------------------------------------
    def target(self, pc):
        """Static target when executed at *pc*, or None if computed."""
        return self.codec.control_target(self.inst, pc)

    def field(self, name):
        return self.inst.get_field(name)

    def has_field(self, name):
        return self.inst.has_field(name)

    def disassemble(self, pc=None):
        return self.codec.disassemble(self.inst.word, pc)

    def __repr__(self):
        return "<%s %s>" % (type(self).__name__, self.disassemble())


class CallInstruction(Instruction):
    __slots__ = ()


class IndirectCallInstruction(Instruction):
    __slots__ = ()


class JumpInstruction(Instruction):
    __slots__ = ()


class IndirectJumpInstruction(Instruction):
    __slots__ = ()


class BranchInstruction(Instruction):
    __slots__ = ()


class ReturnInstruction(Instruction):
    __slots__ = ()


class SystemCallInstruction(Instruction):
    __slots__ = ()


class MemoryLoadInstruction(Instruction):
    __slots__ = ()


class MemoryStoreInstruction(Instruction):
    __slots__ = ()


class ComputationInstruction(Instruction):
    __slots__ = ()


class InvalidInstruction(Instruction):
    __slots__ = ()


_CLASS_FOR_CATEGORY = {
    Category.CALL: CallInstruction,
    Category.CALL_INDIRECT: IndirectCallInstruction,
    Category.JUMP: JumpInstruction,
    Category.JUMP_INDIRECT: IndirectJumpInstruction,
    Category.BRANCH: BranchInstruction,
    Category.RETURN: ReturnInstruction,
    Category.SYSTEM: SystemCallInstruction,
    Category.LOAD: MemoryLoadInstruction,
    Category.STORE: MemoryStoreInstruction,
    Category.COMPUTE: ComputationInstruction,
    Category.INVALID: InvalidInstruction,
}

# Flyweight caches, one per codec.
_CACHES = {}


def instruction_for(codec, word, share=True):
    """Make (or reuse) the EEL instruction for machine *word*.

    This is the analog of the spawn-generated ``mach_inst_make_instruction``
    in paper Figure 6.  With ``share=False`` every request allocates (the
    baseline for the sharing experiment).
    """
    _STATS["requests"] += 1
    if share:
        cache = _CACHES.setdefault(id(codec), {})
        cached = cache.get(word)
        if cached is not None:
            return cached
    decoded = codec.decode(word)
    instruction = _CLASS_FOR_CATEGORY[decoded.category](codec, decoded)
    _STATS["allocated"] += 1
    if share:
        cache[word] = instruction
    return instruction


def clear_caches():
    _CACHES.clear()
