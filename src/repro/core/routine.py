"""Routines: named extents of the text segment (paper section 3.2)."""


class Routine:
    """A routine in an executable's text segment.

    Holds identity (name, extent, entry points) and provides the
    interface to control-flow analysis and editing: a routine's CFG is
    built on demand and edits against it are turned into an edited
    routine by :meth:`produce_edited_routine`.
    """

    def __init__(self, executable, name, start, end, entries=None,
                 hidden=False):
        self.executable = executable
        self.name = name
        self.start = start
        self.end = end
        self.entries = sorted(set(entries) if entries else {start})
        self.hidden = hidden
        self._cfg = None
        self.edited = None  # EditedRoutine after produce_edited_routine
        # Cached analysis (CFG + liveness summaries) attached by
        # repro.cache; honored only while the identity below matches.
        self.analysis_summary = None

    @property
    def entry(self):
        return self.entries[0]

    @property
    def size(self):
        return self.end - self.start

    def contains(self, addr):
        return self.start <= addr < self.end

    def add_entry(self, addr):
        """Record an additional entry point (from refinement stage 3)."""
        if not self.contains(addr):
            raise ValueError(
                "entry 0x%x outside routine %s" % (addr, self.name)
            )
        if addr not in self.entries:
            self.entries.append(addr)
            self.entries.sort()
            self.delete_control_flow_graph()

    # ------------------------------------------------------------------
    def _valid_summary(self):
        """The attached analysis summary, if it still describes us.

        Refinement may move extents or add entry points after a summary
        was attached (or restored); a stale summary must not be used.
        """
        summary = self.analysis_summary
        if summary is None:
            return None
        if (summary.get("start") != self.start
                or summary.get("end") != self.end
                or list(summary.get("entries", ())) != self.entries):
            return None
        return summary

    def control_flow_graph(self):
        """The routine's CFG, built on first use (or restored from a
        cached analysis summary when one is attached and still valid)."""
        if self._cfg is None:
            from repro.core.analysis.indirect import table_extent
            from repro.core.cfg import CFG

            summary = self._valid_summary()
            if summary is None:
                # Fuzz shrinking: a byte-identical routine from the
                # parent plan donates its summary (guards in
                # Executable._adoption_view), skipping the rebuild.
                summary = self.executable._adoption_view(self)
                if summary is not None:
                    self.analysis_summary = summary
            self._cfg = CFG(self, summary=summary["cfg"]
                            if summary is not None else None)
            if summary is not None:
                self._cfg._live_summary = summary.get("liveness")
            for info in self._cfg.indirect_jumps:
                if info.status == "table":
                    addr, size = table_extent(info)
                    self.executable.claim_data(addr, size)
        return self._cfg

    def delete_control_flow_graph(self):
        """Free the CFG (paper Figure 1 frees them explicitly)."""
        self._cfg = None

    def produce_edited_routine(self):
        """Lay out the edited version of this routine (section 3.3.1).

        Routines containing a control transfer in a delay slot are
        refused (paper §3.1): re-laying the pair out-of-place changes
        the delayed-delayed semantics, so the original code must stay
        in place.  Returns None in that case and the routine keeps
        running from the original text.
        """
        from repro.core.layout import lay_out_routine

        cfg = self.control_flow_graph()
        if cfg.cti_in_slot:
            return None
        self.edited = lay_out_routine(cfg)
        self.executable.register_edited(self)
        return self.edited

    def instructions(self):
        """(addr, Instruction) pairs over the whole extent, linear order."""
        from repro.core.instruction import instruction_for

        codec = self.executable.codec
        out = []
        addr = self.start
        while addr < self.end:
            out.append((addr, instruction_for(codec,
                                              self.executable.word_at(addr))))
            addr += 4
        return out

    def __repr__(self):
        return "Routine(%s [0x%x,0x%x)%s)" % (
            self.name, self.start, self.end,
            " hidden" if self.hidden else "",
        )
