"""Edited-routine layout (paper section 3.3.1).

``lay_out_routine`` turns an edited CFG back into machine code:

* snippets receive registers (scavenged or spilled) and are placed;
* unedited delay slots are re-folded into their control transfer;
* edited branch edges are routed through out-of-line stubs;
* dispatch-table entries are redirected to edited targets (or to stubs
  carrying edge snippets);
* literal-target jumps (including frame-pop tail calls) have their
  address-forming instructions re-pointed;
* unanalyzable indirect jumps fall back to run-time address translation
  through an original→edited table.

``finalize_image`` assembles every edited routine (plus tool-added
routines and data) into the output executable, builds the address map,
patches dispatch tables, and installs trampolines at original entry
points so unedited callers still reach edited code.
"""

from repro.binfmt import layout as binlayout
from repro.binfmt.image import Image, SEC_EXEC, SEC_WRITE, Section, Symbol
from repro.core.cfg import (
    BK_DELAY,
    BK_EXIT,
    BK_NORMAL,
    EK_COMPUTED,
    EK_ESCAPE,
)
from repro.core.regalloc import allocate_snippet
from repro.isa.base import Category, SpanError
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

_C_ROUTINES = _metrics.counter("layout.routines")
_C_STUBS = _metrics.counter("layout.stubs")
_C_REFOLDS = _metrics.counter("layout.delay_refolds")
_C_BRANCH_FIXUPS = _metrics.counter("layout.branch_stub_fixups")
_C_RUNTIME_XLATE = _metrics.counter("layout.runtime_translations")
_C_TABLE_PATCHES = _metrics.counter("layout.table_patches")
_C_TRAMPOLINES = _metrics.counter("layout.trampolines")
_C_LONG_BRANCHES = _metrics.counter("layout.long_branches")
_C_BYTES = _metrics.counter("layout.edited_bytes")

# Long-branch relaxation never needs more passes than there are jump
# items (each pass either converges or promotes at least one more jump
# to its long form, and promotions are monotone), but cap the fixpoint
# anyway so a placement bug cannot hang finalization.
_MAX_RELAX_PASSES = 64


class LayoutError(Exception):
    pass


class Item:
    """One unit of the edited routine's emission stream."""

    __slots__ = ("kind", "word", "label", "target", "orig_addr", "snippet",
                 "role", "orig_target", "long")

    def __init__(self, kind, word=None, label=None, target=None,
                 orig_addr=None, snippet=None, role=None, orig_target=None):
        self.kind = kind
        self.word = word
        self.label = label  # for kind "label"
        self.target = target  # ("label", name) or ("orig", addr)
        self.orig_addr = orig_addr
        self.snippet = snippet
        self.role = role
        self.orig_target = orig_target
        # Set by the finalizer's relaxation pass when a jump/jumpxfer
        # target is out of direct-jump span: emit the multi-word
        # long-branch stub instead (sethi/jmpl on SPARC, lui/ori/jr on
        # MIPS), nop-padded to a fixed size so placement stays stable.
        self.long = False

    def size(self, arch):
        if self.kind == "label":
            return 0
        if self.kind == "snippet":
            return 4 * len(self.snippet.words)
        if self.kind in ("jump", "jumpxfer"):
            if self.long:
                return 12 if arch == "sparc" else 16
            return 4 if arch == "sparc" else 8
        return 4


class EditedRoutine:
    """The laid-out (but not yet address-resolved) edited routine."""

    def __init__(self, routine):
        self.routine = routine
        self.items = []
        self.table_patches = []  # (entry addr in original image, target ref)
        self.base = None
        self.size = 0


def _label_for(addr):
    return "a%x" % addr


def lay_out_routine(cfg):
    return _RoutineLayout(cfg).run()


class _RoutineLayout:
    def __init__(self, cfg):
        self.cfg = cfg
        self.routine = cfg.routine
        self.codec = cfg.codec
        self.arch = cfg.codec.arch
        self.conventions = cfg.routine.executable.conventions
        self.result = EditedRoutine(cfg.routine)
        self.items = self.result.items
        self.stubs = []
        self._stub_counter = 0
        self._liveness = None
        self._alloc_cache = {}
        # Literal-jump patch roles: orig site addr -> (role, literal).
        self.patch_roles = {}
        for info in cfg.indirect_jumps:
            if info.status in ("literal", "tailcall"):
                for site_addr, role in info.patch_sites:
                    self.patch_roles[site_addr] = (role, info.literal)

    # ------------------------------------------------------------------
    @property
    def liveness(self):
        if self._liveness is None:
            self._liveness = self.cfg.live_registers()
        return self._liveness

    def _new_stub_label(self):
        self._stub_counter += 1
        return "%s.stub%d" % (_label_for(self.routine.start),
                              self._stub_counter)

    def _allocate(self, snippet, live):
        key = (id(snippet), frozenset(live))
        cached = self._alloc_cache.get(key)
        if cached is None:
            cached = allocate_snippet(snippet, live, self.conventions)
            self._alloc_cache[key] = cached
        return cached

    # -- emission helpers ------------------------------------------------
    def emit(self, item, into=None):
        (self.items if into is None else into).append(item)

    def emit_word(self, word, orig_addr=None, into=None):
        self.emit(Item("word", word=word, orig_addr=orig_addr), into)

    def emit_label(self, name, orig_addr=None, into=None):
        self.emit(Item("label", label=name, orig_addr=orig_addr), into)

    def emit_snips(self, snippets, live, into=None):
        for snippet in snippets:
            self.emit(Item("snippet", snippet=self._allocate(snippet, live)),
                      into)

    def emit_goto(self, target, next_start=None, into=None):
        """Unconditional transfer to *target* unless it falls through."""
        if target is None:
            return
        kind, value = target
        if kind == "label" and next_start is not None \
                and value == _label_for(next_start):
            return
        if kind == "label":
            self.emit(Item("jump", target=target), into)
        else:
            self.emit(Item("jumpxfer", orig_target=value), into)

    # ------------------------------------------------------------------
    def run(self):
        cfg = self.cfg
        with _span("layout.routine", routine=self.routine.name) as sp:
            normal = sorted(cfg.normal_blocks(), key=lambda b: b.start)
            for index, block in enumerate(normal):
                next_start = normal[index + 1].start \
                    if index + 1 < len(normal) else None
                self._emit_block(block, next_start)
            self.items.extend(self.stubs)
            self.result.size = sum(item.size(self.arch)
                                   for item in self.items)
            sp.set(bytes=self.result.size, stubs=self._stub_counter)
        _C_ROUTINES.inc()
        _C_STUBS.inc(self._stub_counter)
        _C_BYTES.inc(self.result.size)
        _C_TABLE_PATCHES.inc(len(self.result.table_patches))
        return self.result

    def _emit_block(self, block, next_start):
        # The label carries the original address so that the address map
        # points at the start of the block's emission, *including* any
        # snippets placed before its first instruction.
        self.emit_label(_label_for(block.start), orig_addr=block.start)
        count = len(block.instructions)
        for index in range(count):
            addr, instruction = block.instructions[index]
            before = block.before.get(index)
            if before:
                self.emit_snips(before, self.liveness.live_before(block,
                                                                  index))
            is_terminator = (instruction.is_control
                             and instruction.category is not Category.SYSTEM
                             and index == count - 1)
            if is_terminator:
                self._emit_terminator(block, addr, instruction, next_start)
                return
            if index not in block.deleted:
                self._emit_instruction(addr, instruction)
            after = block.after.get(index)
            if after:
                self.emit_snips(after, self.liveness.live_after(block, index))
        # Block without a terminator: glue to its successor.
        edge = block.succ[0] if block.succ else None
        if edge is not None:
            self.emit_snips(edge.snippets,
                            self.liveness.live_on_edge(edge))
            self.emit_goto(self._edge_target(edge), next_start)

    def _emit_instruction(self, addr, instruction, into=None):
        patch = self.patch_roles.get(addr)
        if patch is not None:
            role, literal = patch
            self.emit(Item("patch", word=instruction.word, orig_addr=addr,
                           role=role, orig_target=literal), into)
        else:
            self.emit_word(instruction.word, orig_addr=addr, into=into)

    # ------------------------------------------------------------------
    # Chains: the code along one outgoing edge of a control transfer.
    # ------------------------------------------------------------------
    def _chain(self, edge):
        """Returns (parts, target_ref, clean).

        parts: [("snips", edge, [...])] and [("delay", block)] entries.
        clean: the chain is exactly an unedited delay slot (or nothing).
        """
        parts = []
        clean = True
        if edge.snippets:
            parts.append(("snips", edge, edge.snippets))
            clean = False
        dst = edge.dst
        if dst.kind == BK_DELAY:
            parts.append(("delay", dst))
            if dst.is_edited:
                clean = False
            out = dst.succ[0]
            if out.snippets:
                parts.append(("snips", out, out.snippets))
                clean = False
            return parts, self._edge_target(out), clean
        return parts, self._edge_target(edge), clean and not parts

    def _edge_target(self, edge):
        if edge.kind == EK_ESCAPE or edge.dst.kind == BK_EXIT:
            if edge.escape_target is None:
                return None
            return ("orig", edge.escape_target)
        if edge.dst.kind == BK_NORMAL:
            return ("label", _label_for(edge.dst.start))
        raise LayoutError("edge %r has no layout target" % edge)

    def _emit_parts(self, parts, into=None):
        for part in parts:
            if part[0] == "snips":
                _, edge, snippets = part
                self.emit_snips(snippets, self.liveness.live_on_edge(edge),
                                into)
            else:
                _, delay_block = part
                self._emit_delay_block(delay_block, into)

    def _emit_delay_block(self, block, into=None):
        for index, (addr, instruction) in enumerate(block.instructions):
            before = block.before.get(index)
            if before:
                self.emit_snips(before,
                                self.liveness.live_before(block, index), into)
            if index not in block.deleted:
                self._emit_instruction(addr, instruction, into)
            after = block.after.get(index)
            if after:
                self.emit_snips(after, self.liveness.live_after(block, index),
                                into)

    def _delay_word(self, delay_block):
        return delay_block.instructions[0][1].word

    # ------------------------------------------------------------------
    # Terminators
    # ------------------------------------------------------------------
    def _emit_terminator(self, block, addr, instruction, next_start):
        category = instruction.category
        if category is Category.BRANCH:
            self._emit_branch(block, addr, instruction, next_start)
        elif category in (Category.CALL, Category.CALL_INDIRECT):
            self._emit_call(block, addr, instruction, next_start)
        elif category is Category.RETURN:
            self._emit_simple_exit(block, addr, instruction)
        elif category is Category.JUMP:
            self._emit_direct_jump(block, addr, instruction, next_start)
        elif category is Category.JUMP_INDIRECT:
            self._emit_indirect_jump(block, addr, instruction)
        else:
            raise LayoutError("unexpected terminator %s" % instruction.name)

    def _emit_branch_word(self, word, target, orig_addr, into=None):
        kind, value = target if target else (None, None)
        if kind == "label":
            self.emit(Item("branch", word=word, target=target,
                           orig_addr=orig_addr), into)
        else:
            self.emit(Item("xfer", word=word, orig_target=value,
                           orig_addr=orig_addr), into)

    def _emit_branch(self, block, addr, instruction, next_start):
        taken = block.taken_edge()
        fall = block.fall_edge()
        word = instruction.word

        if taken is None:
            # Branch-never: pure fall-through; emit only the chain.
            if fall is not None:
                parts, target, _ = self._chain(fall)
                self._emit_parts(parts)
                self.emit_goto(target, next_start)
            return

        t_parts, t_target, t_clean = self._chain(taken)
        has_delay_block = taken.dst.kind == BK_DELAY

        if fall is None:
            # Unconditional (ba or ba,a).
            if t_clean and has_delay_block:
                self._emit_branch_word(word, t_target, addr)
                self.emit_word(self._delay_word(taken.dst), orig_addr=addr + 4)
            elif t_clean:
                self._emit_branch_word(word, t_target, addr)
            else:
                self._emit_parts(t_parts)
                self.emit_goto(t_target, next_start)
            return

        f_parts, f_target, f_clean = self._chain(fall)
        annulled = instruction.annul_untaken

        if t_clean and has_delay_block:
            if annulled and not any(p[0] == "delay" for p in f_parts):
                # Refold: b,a target with original delay in the slot.
                _C_REFOLDS.inc()
                self._emit_branch_word(word, t_target, addr)
                self.emit_word(self._delay_word(taken.dst), orig_addr=addr + 4)
                self._emit_parts(f_parts)
                self.emit_goto(f_target, next_start)
                return
            if not annulled and self._refoldable_fall(f_parts):
                # Refold: delay executes on both paths from the slot.
                _C_REFOLDS.inc()
                self._emit_branch_word(word, t_target, addr)
                self.emit_word(self._delay_word(taken.dst), orig_addr=addr + 4)
                self._emit_parts([p for p in f_parts if p[0] != "delay"])
                self.emit_goto(f_target, next_start)
                return

        # General case: route the taken path through a stub.
        _C_BRANCH_FIXUPS.inc()
        stub_label = self._new_stub_label()
        plain = self.codec.clear_annul(word)
        self._emit_branch_word(plain, ("label", stub_label), addr)
        self.emit_word(self.codec.nop_word)
        self._emit_parts(f_parts)
        self.emit_goto(f_target, next_start)
        self.emit_label(stub_label, into=self.stubs)
        self._emit_parts(t_parts, into=self.stubs)
        self.emit_goto(t_target, into=self.stubs)

    def _refoldable_fall(self, f_parts):
        """Fall chain must be [unedited delay] followed only by snips."""
        if not f_parts or f_parts[0][0] != "delay":
            return False
        if f_parts[0][1].is_edited:
            return False
        return all(p[0] == "snips" for p in f_parts[1:])

    def _emit_call(self, block, addr, instruction, next_start):
        target = instruction.target(addr)
        if target is not None:
            self.emit(Item("xfer", word=instruction.word, orig_target=target,
                           orig_addr=addr))
        else:
            self._emit_instruction(addr, instruction)
        delay = block.succ[0].dst
        self._emit_delay_block(delay)
        surrogate = delay.succ[0].dst
        out = surrogate.succ[0] if surrogate.succ else None
        if out is not None:
            self.emit_goto(self._edge_target(out), next_start)

    def _emit_simple_exit(self, block, addr, instruction):
        self._emit_instruction(addr, instruction)
        delay = block.succ[0].dst
        self._emit_delay_block(delay)

    def _emit_direct_jump(self, block, addr, instruction, next_start):
        # jmpl to a literal (SPARC) or j (MIPS): treat like ba with a delay.
        edge = block.succ[0]
        if edge.dst.kind == BK_DELAY:
            parts, target, clean = self._chain(edge)
            if clean:
                kind, value = target if target else (None, None)
                if kind == "label":
                    # Re-synthesize as a plain jump to the label.
                    self.emit(Item("jump", target=target))
                    self.emit_word(self._delay_word(edge.dst))
                else:
                    self.emit(Item("xfer", word=instruction.word,
                                   orig_target=value, orig_addr=addr))
                    self.emit_word(self._delay_word(edge.dst),
                                   orig_addr=addr + 4)
            else:
                self._emit_parts(parts)
                self.emit_goto(target, next_start)
        else:
            target = self._edge_target(edge)
            self.emit_snips(edge.snippets, self.liveness.live_on_edge(edge))
            self.emit_goto(target, next_start)

    # -- indirect jumps -----------------------------------------------------
    def _info_for(self, block):
        for info in self.cfg.indirect_jumps:
            if info.block is block:
                return info
        return None

    def _emit_indirect_jump(self, block, addr, instruction):
        info = self._info_for(block)
        delay_edge = block.succ[0]
        delay = delay_edge.dst if delay_edge.dst.kind == BK_DELAY else None

        if info is not None and info.status == "unanalyzable":
            self._emit_runtime_translation(block, addr, instruction, delay)
            return

        self._emit_instruction(addr, instruction)
        if delay is not None:
            self._emit_delay_block(delay)

        if info is None or info.status != "table":
            return

        # Dispatch table: redirect entries, materializing stubs for edges
        # that carry snippets.
        source = delay if delay is not None else block
        stub_for = {}
        for edge in source.succ:
            if edge.kind == EK_COMPUTED and edge.snippets:
                label = self._new_stub_label()
                stub_for[edge.dst.start] = label
                self.emit_label(label, into=self.stubs)
                self.emit_snips(edge.snippets,
                                self.liveness.live_on_edge(edge),
                                into=self.stubs)
                self.emit_goto(self._edge_target(edge), into=self.stubs)
        for position, target in enumerate(info.targets):
            entry_addr = info.table_addr + 4 * position
            if target in stub_for:
                ref = ("label", stub_for[target])
            elif self.routine.contains(target) and \
                    target in self.cfg.block_at:
                ref = ("label", _label_for(target))
            else:
                ref = ("orig", target)
            self.result.table_patches.append((entry_addr, ref))

    def _emit_runtime_translation(self, block, addr, instruction, delay):
        """Replace an unanalyzable jump with a translation-table lookup."""
        _C_RUNTIME_XLATE.inc()
        executable = self.routine.executable
        table_base = executable.ensure_translation_table()
        text_base = executable.image.sections[".text"].vaddr
        live = self.liveness.live_before(block, len(block.instructions) - 1)
        words = self._translation_words(instruction, table_base, text_base,
                                        live)
        for word in words:
            self.emit_word(word)
        # The original jump's delay instruction still executes after the
        # translated jump (it sits in the new jump's delay slot).
        if delay is not None:
            self._emit_delay_block(delay)
        else:
            self.emit_word(self.codec.nop_word)

    def _translation_words(self, instruction, table_base, text_base, live):
        conventions = self.conventions
        codec = self.codec
        forbidden = set(instruction.reads())
        dead = [r for r in conventions.scavenge_candidates
                if r not in live and r not in forbidden]
        if len(dead) < 2:
            raise LayoutError(
                "no free registers for run-time translation stub"
            )
        reg_a, reg_b = dead[0], dead[1]
        words = []
        if self.arch == "sparc":
            fields = {"rd": reg_a, "rs1": instruction.field("rs1")}
            if instruction.has_field("simm13"):
                fields["simm13"] = instruction.field("simm13")
            else:
                fields["rs2"] = instruction.field("rs2")
            words.append(codec.encode("add", **fields))
            words.extend(conventions.load_const(reg_b,
                                                table_base - text_base))
            words.append(codec.encode("add", rd=reg_b, rs1=reg_a, rs2=reg_b))
            words.append(codec.encode("ld", rd=reg_b, rs1=reg_b, simm13=0))
            words.append(codec.encode("jmpl", rd=0, rs1=reg_b, simm13=0))
        else:
            rs = instruction.field("rs")
            words.extend(conventions.load_const(reg_b,
                                                table_base - text_base))
            words.append(codec.encode("addu", rd=reg_b, rs=rs, rt=reg_b))
            words.append(codec.encode("lw", rt=reg_b, rs=reg_b, imm16=0))
            words.append(codec.encode("jr", rs=reg_b))
        return words


# ----------------------------------------------------------------------
# Whole-image finalization
# ----------------------------------------------------------------------

class FinalizedImage:
    def __init__(self, image, addr_map):
        self.image = image
        self.addr_map = addr_map


def finalize_image(executable):
    return _ImageFinalizer(executable).run()


class _ImageFinalizer:
    def __init__(self, executable):
        self.executable = executable
        self.arch = executable.arch
        self.codec = executable.codec
        self.conventions = executable.conventions
        self.edited = [
            routine for routine in sorted(
                executable._edited_routines.values(),
                key=lambda r: r.start,
            )
        ]
        self.labels = {}  # label name -> address
        self.addr_map = {}  # original addr -> edited addr
        self._label_map = {}  # block-start mappings (take priority)
        self._jump_sites = []  # (item, placed addr) for short jumps

    def run(self):
        executable = self.executable
        with _span("layout.place"):
            # Phase A: assign addresses, relaxing out-of-span jumps to
            # long-branch stubs until placement reaches a fixpoint.
            self._place_all(executable)
        with _span("layout.materialize"):
            # Phase B: materialize words.
            words = []
            for name, base, added_words in executable._added_routines:
                words.extend(added_words)
            pad = (self.edited[0].edited.base
                   - executable._new_text_base) // 4 if self.edited else 0
            while len(words) < pad:
                words.append(self.codec.nop_word)
            for routine in self.edited:
                words.extend(self._materialize(routine.edited))
        with _span("layout.build_image", words=len(words)):
            image = self._build_image(words)
        return FinalizedImage(image, self.addr_map)

    # ------------------------------------------------------------------
    def _place_all(self, executable):
        """Fixpoint placement with long-branch relaxation.

        Each pass assigns addresses from scratch, then re-checks every
        still-short jump at its placed address.  Any whose target falls
        outside the direct-jump span is promoted to its long form
        (which grows the item and shifts later addresses), so placement
        repeats until no promotion happens.  Promotions are monotone —
        an item never shrinks back — so the loop terminates; the final
        pass has verified every remaining short jump in place.
        """
        for _ in range(_MAX_RELAX_PASSES):
            self.labels = {}
            self.addr_map = {}
            self._label_map = {}
            self._jump_sites = []
            cursor = binlayout.align_up(executable._added_cursor, 4)
            for routine in self.edited:
                routine.edited.base = cursor
                cursor = self._place(routine.edited, cursor)
            self.addr_map.update(self._label_map)
            if not self._relax_jumps():
                return
        raise LayoutError("long-branch relaxation did not converge after "
                          "%d passes" % _MAX_RELAX_PASSES)

    def _place(self, edited, cursor):
        for item in edited.items:
            if item.kind == "label":
                self.labels[item.label] = cursor
                if item.orig_addr is not None:
                    # Block-start mapping: points before any snippets and
                    # overrides duplicated delay-word item mappings.
                    self._label_map.setdefault(item.orig_addr, cursor)
            else:
                if item.orig_addr is not None \
                        and item.orig_addr not in self.addr_map:
                    self.addr_map[item.orig_addr] = cursor
                if not item.long and item.kind in ("jump", "jumpxfer"):
                    self._jump_sites.append((item, cursor))
                cursor += item.size(self.arch)
        return cursor

    def _relax_jumps(self):
        """Promote out-of-span short jumps to long form; returns count."""
        grown = 0
        for item, addr in self._jump_sites:
            if item.kind == "jump":
                target = self._resolve_target(item.target)
            else:
                target = self._resolve_orig(item.orig_target)
            if not self._short_jump_fits(addr, target):
                item.long = True
                grown += 1
        if grown:
            _C_LONG_BRANCHES.inc(grown)
        return grown

    def _short_jump_fits(self, addr, target):
        try:
            if self.arch == "sparc":
                self.conventions.direct_jump_annulled(addr, target)
            else:
                self.conventions.direct_jump(addr, target)
        except SpanError:
            return False
        return True

    def _resolve_target(self, target):
        kind, value = target
        if kind == "label":
            addr = self.labels.get(value)
            if addr is None:
                raise LayoutError("undefined layout label %r" % value)
            return addr
        return self._resolve_orig(value)

    def _resolve_orig(self, orig_addr):
        """Edited address of an original address, or itself if unedited."""
        return self.addr_map.get(orig_addr, orig_addr)

    def _materialize(self, edited):
        words = []
        cursor = edited.base
        for item in edited.items:
            if item.kind == "label":
                continue
            size = item.size(self.arch)
            words.extend(self._item_words(item, cursor))
            cursor += size
        return words

    def _item_words(self, item, addr):
        codec = self.codec
        conventions = self.conventions
        if item.kind == "word":
            return [item.word]
        if item.kind == "snippet":
            return item.snippet.run_callback(addr)
        if item.kind == "branch":
            target = self._resolve_target(item.target)
            return [codec.with_control_target(item.word, addr, target)]
        if item.kind == "xfer":
            target = self._resolve_orig(item.orig_target)
            return [codec.with_control_target(item.word, addr, target)]
        if item.kind == "patch":
            target = self._resolve_orig(item.orig_target)
            return [_apply_patch_role(codec, item.word, item.role, target)]
        if item.kind == "jump":
            target = self._resolve_target(item.target)
            return self._jump_words(addr, target, long=item.long)
        if item.kind == "jumpxfer":
            target = self._resolve_orig(item.orig_target)
            return self._jump_words(addr, target, long=item.long)
        raise LayoutError("unknown item kind %r" % item.kind)

    def _jump_words(self, addr, target, long=False):
        conventions = self.conventions
        if long:
            return self._long_jump_words(addr, target)
        # Relaxation verified every remaining short jump in place, so a
        # SpanError here means placement and materialization disagree.
        try:
            if self.arch == "sparc":
                return [conventions.direct_jump_annulled(addr, target)]
            return [conventions.direct_jump(addr, target),
                    self.codec.nop_word]
        except SpanError:
            raise LayoutError("jump span overflow after relaxation: "
                              "0x%x -> 0x%x" % (addr, target))

    def _long_jump_words(self, addr, target):
        """The long-branch stub, nop-padded to the fixed long item size."""
        scratch = getattr(self.conventions, "assembler_temp", 1)
        words = list(self.conventions.long_jump(scratch, target))
        slots = (12 if self.arch == "sparc" else 16) // 4
        if len(words) > slots:
            raise LayoutError("long-branch stub at 0x%x needs %d words "
                              "(max %d)" % (addr, len(words), slots))
        while len(words) < slots:
            words.append(self.codec.nop_word)
        return words

    # ------------------------------------------------------------------
    def _build_image(self, new_text_words):
        executable = self.executable
        source = executable.image
        image = Image(source.arch, kind="exec", entry=source.entry)
        for section in source.sections.values():
            copy = Section(section.name, vaddr=section.vaddr,
                           flags=section.flags,
                           data=bytearray(section.data))
            copy.nobits_size = section.nobits_size
            image.add_section(copy)
        image.symbols = [
            Symbol(s.name, s.value, kind=s.kind, binding=s.binding,
                   size=s.size, section=s.section)
            for s in source.symbols
        ]

        if new_text_words:
            new_text = Section(".text.edited",
                               vaddr=executable._new_text_base,
                               flags=SEC_EXEC)
            for word in new_text_words:
                new_text.append_word(word)
            image.add_section(new_text)

        for name, base, size, initial in executable._data_sections:
            data_section = Section(name, vaddr=base, flags=SEC_WRITE)
            data_section.data = bytearray(initial if initial is not None
                                          else bytes(size))
            if len(data_section.data) < size:
                data_section.data += bytes(size - len(data_section.data))
            image.add_section(data_section)
            image.add_symbol(Symbol(name, base, kind="object",
                                    section=name))

        for name, base, _words in executable._added_routines:
            image.add_symbol(Symbol(name, base, kind="func",
                                    section=".text.edited"))

        self._patch_tables(image)
        self._install_trampolines(image)
        self._fill_translation_table(image)
        self._update_symbols(image)

        old_entry = source.entry
        image.entry = self._resolve_orig(old_entry)
        return image

    def _patch_tables(self, image):
        for routine in self.edited:
            for entry_addr, ref in routine.edited.table_patches:
                section = image.section_at(entry_addr)
                if section is None:
                    raise LayoutError("dispatch table entry at unmapped "
                                      "0x%x" % entry_addr)
                section.set_word(entry_addr, self._resolve_target(ref))

    def _install_trampolines(self, image):
        """Original entries of edited routines jump to the edited code."""
        text = image.sections.get(".text")
        if text is None:
            return
        for routine in self.edited:
            for entry in routine.entries:
                new_addr = self._resolve_orig(entry)
                if new_addr == entry or not text.contains(entry):
                    continue
                _C_TRAMPOLINES.inc()
                try:
                    if self.arch == "sparc":
                        word = self.conventions.direct_jump_annulled(
                            entry, new_addr)
                        text.set_word(entry, word)
                    else:
                        text.set_word(entry, self.conventions.direct_jump(
                            entry, new_addr))
                        if text.contains(entry + 4):
                            text.set_word(entry + 4, self.codec.nop_word)
                except SpanError:
                    self._install_long_trampoline(text, routine, entry,
                                                  new_addr)

    def _install_long_trampoline(self, text, routine, entry, new_addr):
        """Multi-word trampoline when the edited copy is out of direct
        span.  It overwrites the original instructions after *entry* —
        dead code once the routine is edited — so it must fit inside
        both the text section and the routine's own extent."""
        scratch = getattr(self.conventions, "assembler_temp", 1)
        words = list(self.conventions.long_jump(scratch, new_addr))
        limit = entry + 4 * len(words)
        if limit > routine.end or not text.contains(limit - 4):
            raise LayoutError(
                "long-branch trampoline for %s does not fit at 0x%x "
                "(%d words, routine ends at 0x%x)"
                % (routine.name, entry, len(words), routine.end))
        _C_LONG_BRANCHES.inc()
        for index, word in enumerate(words):
            text.set_word(entry + 4 * index, word)

    def _fill_translation_table(self, image):
        executable = self.executable
        if executable._translation_base is None:
            return
        text = executable.image.sections[".text"]
        section = image.get_section("__eel_translation")
        for offset in range(0, text.size, 4):
            orig = text.vaddr + offset
            section.set_word(executable._translation_base + offset,
                             self._resolve_orig(orig))

    def _update_symbols(self, image):
        """Point routine symbols at the edited copies (paper: edited
        programs keep working with standard tools)."""
        edited_names = {routine.name for routine in self.edited}
        for symbol in image.symbols:
            if symbol.kind == "func" and symbol.name in edited_names:
                symbol.value = self._resolve_orig(symbol.value)
                symbol.section = ".text.edited"


def _apply_patch_role(codec, word, role, target):
    """Re-point a literal-address-forming instruction at *target*."""
    from repro.isa import bits

    if role == "hi22":
        return bits.insert(word, 0, 21, target >> 10)
    if role == "lo10":
        return bits.insert(word, 0, 12, target & 0x3FF)
    if role == "add13":
        return bits.insert(word, 0, 12, target & 0x3FF)
    if role == "mov13":
        if not bits.fits_signed(bits.to_s32(target), 13):
            raise LayoutError("literal jump target 0x%x too large for "
                              "mov13 patch" % target)
        return bits.insert(word, 0, 12, target)
    if role == "hi16":
        return bits.insert(word, 0, 15, ((target + 0x8000) >> 16) & 0xFFFF)
    if role == "lo16":
        return bits.insert(word, 0, 15, target & 0xFFFF)
    if role == "lo16u":
        return bits.insert(word, 0, 15, target & 0xFFFF)
    if role in ("mov16", "mov16s"):
        return bits.insert(word, 0, 15, target & 0xFFFF)
    raise LayoutError("unknown patch role %r" % role)
